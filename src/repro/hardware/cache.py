"""Bounded LRU cache for per-config analytical results.

The simulator's deterministic work — lowering an `ArchConfig` to the layer
IR and sweeping the roofline model over every layer — is identical for
every one of the 150 noisy runs of the same config, and reference models
are re-measured in *every* campaign batch.  `AnalyticalCache` memoizes
that work behind the config's `cache_key()` so a repeated measurement
costs a dict lookup instead of an IR rebuild.

The cache is bounded (least-recently-used eviction) so a long campaign
over a large sweep cannot grow memory without limit, and it keeps
hit/miss counters so benchmarks and tests can assert cache behaviour
instead of guessing at it.  ``maxsize=0`` disables caching entirely —
every lookup misses and nothing is stored — which is how the benchmark
harness reproduces the pre-cache baseline.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Optional

__all__ = ["AnalyticalCache", "CacheInfo"]


@dataclass(frozen=True)
class CacheInfo:
    """Point-in-time snapshot of a cache's accounting."""

    hits: int
    misses: int
    size: int
    maxsize: int

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when never queried)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "size": self.size,
            "maxsize": self.maxsize,
            "hit_rate": self.hit_rate,
        }


class AnalyticalCache:
    """Bounded LRU mapping ``cache_key -> float`` with hit/miss counters."""

    def __init__(self, maxsize: int = 4096):
        if maxsize < 0:
            raise ValueError("maxsize must be >= 0")
        self.maxsize = int(maxsize)
        self._data: "OrderedDict[Hashable, float]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def get(self, key: Hashable) -> Optional[float]:
        """The cached value, refreshed to most-recently-used, or None."""
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value: float) -> None:
        """Store ``value``, evicting the least-recently-used entry if full."""
        if self.maxsize == 0:
            return
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry; counters keep accumulating across clears."""
        self._data.clear()

    def info(self) -> CacheInfo:
        return CacheInfo(
            hits=self.hits,
            misses=self.misses,
            size=len(self._data),
            maxsize=self.maxsize,
        )
