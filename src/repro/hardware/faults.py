"""Seeded fault injection for measurement devices.

The QC gate and retry logic in `repro.profiling` exist to survive real
failure modes: a laptop GPU that thermally throttles for a whole batch, a
driver that intermittently errors out, a trace buffer that comes back
full of NaNs, a benchmark process that hangs until the harness kills it.
`FaultyDevice` wraps any device implementing the measure API and injects
exactly those faults from a seeded RNG, so the recovery machinery can be
tested against the conditions it was built for — deterministically.

Fault model:

* **Sustained thermal throttle** — decided per *session* (see
  ``begin_session``), scaling every trace in the session by
  ``throttle_factor``.  This is the failure Fig. 6's reference-model gate
  detects: everything measured in the session, references included, runs
  slow together.
* **Transient errors** — per measurement call, `MeasurementError` with
  probability ``error_prob`` and `MeasurementTimeout` (a hang surfaced by
  the harness deadline) with probability ``timeout_prob``.
* **Trace corruption** — with probability ``corrupt_prob`` a fraction of
  the trace's entries are replaced by NaNs and negative garbage, which
  `MeasurementProtocol.validate_trace` rejects.
* **Straggler sessions** — decided per *device session* (see
  ``begin_fleet_session``), a straggler takes ``straggler_factor`` times
  as long in wall-clock terms to return every batch it is handed.  The
  measured latencies themselves are untouched — a straggler is slow, not
  wrong — so this fault is invisible to the serial campaign path and only
  matters to the fleet dispatcher's deadline/circuit-breaker machinery
  (`repro.profiling.fleet`).

All draws come from the RNG passed to the call (falling back to the
wrapper's own stream), so a campaign that derives one generator per
(batch, attempt) gets bit-reproducible faults — including across a
checkpoint/resume boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

import numpy as np

from ..utils import ensure_rng
from .errors import MeasurementError, MeasurementTimeout

__all__ = ["FaultPlan", "FaultyDevice"]


@dataclass(frozen=True)
class FaultPlan:
    """Probabilities and magnitudes of the injected faults."""

    throttle_prob: float = 0.0  # per-session sustained thermal throttle
    throttle_factor: float = 1.25  # slowdown of a throttled session
    error_prob: float = 0.0  # per-call transient MeasurementError
    timeout_prob: float = 0.0  # per-call hang surfaced as MeasurementTimeout
    corrupt_prob: float = 0.0  # per-call NaN/garbage trace
    corrupt_fraction: float = 0.1  # fraction of runs corrupted when it fires
    straggler_prob: float = 0.0  # per-device-session wall-clock straggler
    straggler_factor: float = 4.0  # wall-clock slowdown of a straggler session

    def __post_init__(self) -> None:
        for field in (
            "throttle_prob",
            "error_prob",
            "timeout_prob",
            "corrupt_prob",
            "straggler_prob",
        ):
            value = getattr(self, field)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{field} must be in [0, 1], got {value}")
        if self.throttle_factor <= 0.0:
            raise ValueError("throttle_factor must be positive")
        if not 0.0 < self.corrupt_fraction <= 1.0:
            raise ValueError("corrupt_fraction must be in (0, 1]")
        if self.straggler_factor < 1.0:
            raise ValueError("straggler_factor must be >= 1")


class FaultyDevice:
    """Wrap a measurement device and inject faults from a seeded RNG.

    Implements the same measure API as `SimulatedDevice` (``measure``,
    ``measure_latency``, ``true_latency``, ``profile``), so it drops into
    any code path that takes a device — in particular `CampaignRunner`,
    which additionally calls ``begin_session`` at each batch attempt so
    sustained throttles align with measurement sessions.
    """

    def __init__(
        self,
        device,
        plan: FaultPlan,
        seed: "int | np.random.Generator | None" = None,
    ):
        self.device = device
        self.plan = plan
        self.rng = ensure_rng(seed)
        self._session_factor = 1.0
        self._straggler_factor = 1.0

    # ------------------------------------------------------------------ #
    # Delegation
    # ------------------------------------------------------------------ #

    @property
    def profile(self):
        return self.device.profile

    def true_latency(self, target) -> float:
        """Ground truth is the wrapped device's — faults are noise, not physics."""
        return self.device.true_latency(target)

    # ------------------------------------------------------------------ #
    # Sessions
    # ------------------------------------------------------------------ #

    def begin_session(
        self, rng: "int | np.random.Generator | None" = None
    ) -> bool:
        """Start a measurement session; returns whether it is throttled.

        A throttled session multiplies *every* trace measured until the
        next ``begin_session`` by ``throttle_factor`` — the sustained,
        correlated slowdown that per-run trimming cannot remove and that
        reference-model QC exists to catch.
        """
        rng = self.rng if rng is None else ensure_rng(rng)
        throttled = bool(rng.random() < self.plan.throttle_prob)
        self._session_factor = self.plan.throttle_factor if throttled else 1.0
        return throttled

    @property
    def session_throttled(self) -> bool:
        return self._session_factor != 1.0

    def begin_fleet_session(
        self, rng: "int | np.random.Generator | None" = None
    ) -> float:
        """Open a long-lived *device* session; returns its wall-clock factor.

        Where ``begin_session`` models the per-batch-attempt thermal state,
        a fleet session is one board/worker in a measurement fleet: the
        straggler draw happens once, when the session is opened, and then
        every batch the session executes takes ``straggler_factor`` times
        its nominal wall-clock.  Measured latency *values* are deliberately
        unaffected — the per-(batch, attempt) measurement streams never see
        this draw — which is what lets a fleet run stay byte-identical to a
        serial one while still starving deadlines.
        """
        rng = self.rng if rng is None else ensure_rng(rng)
        straggling = bool(rng.random() < self.plan.straggler_prob)
        self._straggler_factor = (
            self.plan.straggler_factor if straggling else 1.0
        )
        return self._straggler_factor

    @property
    def session_straggler_factor(self) -> float:
        """Wall-clock multiplier of the current fleet session (1.0 = healthy)."""
        return self._straggler_factor

    @property
    def session_straggling(self) -> bool:
        return self._straggler_factor != 1.0

    # ------------------------------------------------------------------ #
    # Faulty measurement
    # ------------------------------------------------------------------ #

    def measure(
        self,
        target,
        runs: int = 150,
        rng: "int | np.random.Generator | None" = None,
    ) -> np.ndarray:
        """Raw trace with injected faults; may raise instead of returning."""
        rng = self.rng if rng is None else ensure_rng(rng)
        plan = self.plan
        # Draw the per-call fault decisions up front, in a fixed order, so
        # the stream stays aligned regardless of which fault (if any) fires.
        u_error, u_timeout, u_corrupt = rng.random(3)
        if u_error < plan.error_prob:
            raise MeasurementError("injected transient measurement failure")
        if u_timeout < plan.timeout_prob:
            raise MeasurementTimeout("injected hang abandoned at deadline")
        trace = self.device.measure(target, runs=runs, rng=rng) * self._session_factor
        if u_corrupt < plan.corrupt_prob:
            trace = self._corrupt(trace, rng)
        return trace

    def _corrupt(self, trace: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        trace = trace.copy()
        n_bad = max(1, int(np.ceil(self.plan.corrupt_fraction * trace.size)))
        idx = rng.choice(trace.size, size=min(n_bad, trace.size), replace=False)
        # Alternate NaN poisoning with negative garbage readings.
        trace[idx[0::2]] = np.nan
        trace[idx[1::2]] = -1.0
        return trace

    def measure_latency(
        self,
        target,
        runs: int = 150,
        rng: "int | np.random.Generator | None" = None,
        protocol: "MeasurementProtocol | None" = None,
    ) -> float:
        """Protocol-collapsed latency; raises on injected/invalid traces."""
        from ..profiling.protocol import MeasurementProtocol

        if protocol is None:
            protocol = MeasurementProtocol(runs=runs)
        return protocol.measure(self, target, rng=rng)

    def measure_batch(
        self,
        targets,
        runs: int = 150,
        rng: "int | np.random.Generator | None" = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Measure many configs through the fault layer (same contract as
        `SimulatedDevice.measure_batch`); any injected fault propagates."""
        rng = self.rng if rng is None else ensure_rng(rng)
        measured = np.empty(len(targets))
        true = np.empty(len(targets))
        for i, target in enumerate(targets):
            true[i] = self.true_latency(target)
            measured[i] = self.measure_latency(target, runs=runs, rng=rng)
        return measured, true
