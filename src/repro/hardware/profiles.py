"""Analytical device profiles for the paper's four measurement targets.

Numbers are public spec-sheet figures (peak fp32 throughput, DRAM
bandwidth, last-level cache, compute-unit counts) plus calibrated
behavioural constants for the roofline engine and the measurement-noise
model.  They parameterise a simulator, not a cycle-accurate model: what
matters downstream is the *structure* of the latency function (see
DESIGN.md §2), not absolute microseconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = ["DeviceProfile", "DEVICES", "DEVICE_NAMES", "device_by_name"]


@dataclass(frozen=True)
class DeviceProfile:
    """Static description of one simulated device."""

    name: str
    peak_flops: float  # fp32 FLOP/s
    mem_bandwidth: float  # DRAM B/s
    cache_bytes: float  # last-level cache (L2 on GPUs, L3 on CPUs)
    num_compute_units: int  # SMs (GPU) or cores (CPU)
    wave_quantum: int  # FLOPs per thread-block tile; 0 = no wave effects
    launch_overhead_s: float  # per-kernel dispatch cost
    launch_exponent: float  # sub-linear kernel-count scaling (stream pipelining)
    cache_penalty: float  # max slowdown of memory-bound layers under cache pressure
    # Measurement-noise model.
    jitter_cv: float  # per-run multiplicative jitter (lognormal cv)
    outlier_prob: float  # probability of a background-daemon spike per run
    outlier_scale: float  # mean relative height of a spike
    warmup_factor: float  # first-iteration slowdown (cold caches/clocks)
    warmup_iters: int  # iterations over which the warm-up transient decays
    session_sigma: float  # per-session thermal/clock lognormal sigma
    throttle_prob: float  # probability a session is thermally throttled
    throttle_factor: float  # slowdown of a throttled session

    @property
    def is_gpu(self) -> bool:
        return self.wave_quantum > 0


DEVICES: Dict[str, DeviceProfile] = {
    profile.name: profile
    for profile in (
        DeviceProfile(
            name="rtx4090",
            peak_flops=82.6e12,
            mem_bandwidth=1008e9,
            cache_bytes=72e6,
            num_compute_units=128,
            wave_quantum=2_000_000,
            launch_overhead_s=3.0e-6,
            launch_exponent=0.72,
            cache_penalty=0.9,
            jitter_cv=0.004,
            outlier_prob=0.01,
            outlier_scale=0.08,
            warmup_factor=1.6,
            warmup_iters=5,
            session_sigma=0.008,
            throttle_prob=0.02,
            throttle_factor=1.10,
        ),
        DeviceProfile(
            name="rtx3080maxq",
            peak_flops=19.0e12,
            mem_bandwidth=384e9,
            cache_bytes=6e6,
            num_compute_units=48,
            wave_quantum=2_000_000,
            launch_overhead_s=3.5e-6,
            launch_exponent=0.74,
            cache_penalty=1.2,
            jitter_cv=0.008,
            outlier_prob=0.015,
            outlier_scale=0.10,
            warmup_factor=1.7,
            warmup_iters=6,
            session_sigma=0.015,
            throttle_prob=0.08,
            throttle_factor=1.14,
        ),
        DeviceProfile(
            name="threadripper5975wx",
            peak_flops=3.6e12,
            mem_bandwidth=166e9,
            cache_bytes=128e6,
            num_compute_units=32,
            wave_quantum=0,
            launch_overhead_s=2.0e-7,
            launch_exponent=0.9,
            cache_penalty=0.8,
            jitter_cv=0.006,
            outlier_prob=0.02,
            outlier_scale=0.12,
            warmup_factor=1.3,
            warmup_iters=3,
            session_sigma=0.010,
            throttle_prob=0.02,
            throttle_factor=1.06,
        ),
        DeviceProfile(
            name="raspberrypi4",
            peak_flops=24e9,
            mem_bandwidth=3.2e9,
            cache_bytes=1e6,
            num_compute_units=4,
            wave_quantum=0,
            launch_overhead_s=4.0e-6,
            launch_exponent=0.95,
            cache_penalty=1.5,
            jitter_cv=0.020,
            outlier_prob=0.04,
            outlier_scale=0.20,
            warmup_factor=1.4,
            warmup_iters=4,
            session_sigma=0.025,
            throttle_prob=0.10,
            throttle_factor=1.20,
        ),
    )
}

DEVICE_NAMES: Tuple[str, ...] = tuple(DEVICES)


def device_by_name(name: str) -> DeviceProfile:
    """Look up a device profile by name."""
    try:
        return DEVICES[name]
    except KeyError:
        raise KeyError(
            f"unknown device {name!r}; available: {', '.join(DEVICE_NAMES)}"
        ) from None
