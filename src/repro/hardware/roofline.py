"""Per-layer roofline timing with efficiency curves and wave quantization."""

from __future__ import annotations

import math
from typing import Tuple

from ..network.ir import Layer
from .profiles import DeviceProfile

__all__ = ["layer_time", "compute_efficiency"]

# Peak-fraction ceilings per kernel kind: dense GEMM-like kernels come
# closest to peak; depthwise and data-movement kernels are intrinsically
# memory bound and never approach it.
_KIND_EFFICIENCY = {
    "conv": 0.65,
    "linear": 0.55,
    "dwconv": 0.30,
    "pool": 0.10,
    "eltwise": 0.10,
    "concat": 0.10,
}

# A kernel needs roughly this many seconds of peak-rate work before its
# launch/tiling ramp stops dominating; smaller kernels run below peak.
_RAMP_SECONDS = 5e-7


def compute_efficiency(layer: Layer, profile: DeviceProfile) -> float:
    """Achievable fraction of peak FLOP/s for this layer on this device."""
    base = _KIND_EFFICIENCY[layer.kind]
    ramp_flops = profile.peak_flops * _RAMP_SECONDS
    size_factor = layer.flops / (layer.flops + ramp_flops) if layer.flops > 0 else 1.0
    return base * size_factor


def layer_time(layer: Layer, profile: DeviceProfile) -> Tuple[float, bool]:
    """Roofline time for one layer: ``(seconds, memory_bound)``.

    Compute time uses the efficiency curve and, on GPUs, is quantized to
    whole waves of thread blocks across the SMs — latency becomes a step
    function of output size, which is what makes real GPU latency
    non-smooth in architecture features.
    """
    eff = compute_efficiency(layer, profile)
    t_compute = layer.flops / (profile.peak_flops * eff) if layer.flops > 0 else 0.0

    if profile.wave_quantum > 0 and layer.kind in ("conv", "dwconv", "linear"):
        # Tiling is work-based (libraries split channels/reductions to fill
        # the device), so thread blocks scale with FLOPs, not output size.
        blocks = max(1, math.ceil(layer.flops / profile.wave_quantum))
        waves = math.ceil(blocks / profile.num_compute_units)
        occupancy = blocks / (waves * profile.num_compute_units)
        # The last partial wave leaves SMs idle; latency hiding recovers
        # part of the loss — a square-root law between full and lone waves.
        t_compute /= math.sqrt(max(occupancy, 1e-9))

    t_memory = layer.traffic_bytes / profile.mem_bandwidth
    return max(t_compute, t_memory), t_memory >= t_compute
