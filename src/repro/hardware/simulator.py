"""The simulated measurement device standing in for physical hardware.

``true_latency`` is the deterministic analytical latency: per-layer
roofline times, a cache-pressure multiplier on memory-bound layers driven
by the *whole model's* working set, and a sub-linear kernel-launch term.
The last two are global, non-additive contributions — precisely what makes
purely additive lookup-table surrogates fail, as the paper reports.

``measure`` wraps it in the measurement-noise model (per-session
thermal/clock factor with occasional throttled sessions, warm-up
transient, multiplicative jitter, sparse positive outliers);
``measure_latency`` applies a `MeasurementProtocol` — by default the
paper's: discard the fastest and slowest 20% of runs, average the middle
60%.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

import numpy as np

from ..archspace.config import ArchConfig
from ..network.analysis import working_set_bytes
from ..network.builders import build_network
from ..network.ir import Network
from ..profiling.protocol import MeasurementProtocol
from ..utils import ensure_rng
from .profiles import DeviceProfile, device_by_name
from .roofline import layer_time

__all__ = ["SimulatedDevice"]


class SimulatedDevice:
    """Analytical latency model plus a seeded measurement-noise model."""

    def __init__(
        self,
        profile: Union[DeviceProfile, str],
        seed: "int | np.random.Generator | None" = None,
    ):
        if isinstance(profile, str):
            profile = device_by_name(profile)
        self.profile = profile
        self.rng = ensure_rng(seed)

    # ------------------------------------------------------------------ #
    # Deterministic analytical latency
    # ------------------------------------------------------------------ #

    def _as_network(self, target: Union[ArchConfig, Network]) -> Network:
        return target if isinstance(target, Network) else build_network(target)

    def _cache_pressure(self, net: Network) -> float:
        """Slowdown multiplier for memory-bound layers (global term)."""
        working_set = working_set_bytes(net)
        if working_set <= self.profile.cache_bytes:
            return 1.0
        overflow = 1.0 - self.profile.cache_bytes / working_set
        return 1.0 + self.profile.cache_penalty * overflow

    def true_latency(self, target: Union[ArchConfig, Network]) -> float:
        """Noise-free end-to-end latency in seconds."""
        net = self._as_network(target)
        pressure = self._cache_pressure(net)
        total = 0.0
        for layer in net.layers:
            seconds, memory_bound = layer_time(layer, self.profile)
            total += seconds * (pressure if memory_bound else 1.0)
        launch = (
            self.profile.launch_overhead_s
            * len(net.layers) ** self.profile.launch_exponent
        )
        return total + launch

    # ------------------------------------------------------------------ #
    # Noisy measurement
    # ------------------------------------------------------------------ #

    def measure(
        self,
        target: Union[ArchConfig, Network],
        runs: int = 150,
        rng: "int | np.random.Generator | None" = None,
    ) -> np.ndarray:
        """Raw latency trace of ``runs`` consecutive iterations (seconds)."""
        if runs < 1:
            raise ValueError("runs must be >= 1")
        rng = self.rng if rng is None else ensure_rng(rng)
        p = self.profile
        base = self.true_latency(target)

        session = float(np.exp(rng.normal(0.0, p.session_sigma)))
        if rng.random() < p.throttle_prob:
            session *= p.throttle_factor

        trace = base * session * np.exp(rng.normal(0.0, p.jitter_cv, size=runs))

        # Warm-up transient: geometric decay toward steady state.
        idx = np.arange(min(p.warmup_iters, runs))
        trace[: idx.size] *= 1.0 + (p.warmup_factor - 1.0) * 0.5**idx

        spikes = rng.random(runs) < p.outlier_prob
        if spikes.any():
            trace[spikes] *= 1.0 + rng.exponential(p.outlier_scale, size=int(spikes.sum()))
        return trace

    def measure_latency(
        self,
        target: Union[ArchConfig, Network],
        runs: int = 150,
        rng: "int | np.random.Generator | None" = None,
        protocol: Optional[MeasurementProtocol] = None,
    ) -> float:
        """Protocol-collapsed latency (default: the paper's trim-20% mean).

        ``protocol`` overrides the whole measurement recipe; when given, its
        ``runs`` takes precedence over the ``runs`` argument.
        """
        if protocol is None:
            protocol = MeasurementProtocol(runs=runs)
        return protocol.measure(self, target, rng=rng)

    def measure_batch(
        self,
        targets: List[Union[ArchConfig, Network]],
        runs: int = 150,
        rng: "int | np.random.Generator | None" = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Measure many configs from one seeded stream.

        Returns ``(measured, true)`` latency arrays; deterministic given the
        rng state and the order of ``targets``.
        """
        rng = self.rng if rng is None else ensure_rng(rng)
        measured = np.empty(len(targets))
        true = np.empty(len(targets))
        for i, target in enumerate(targets):
            net = self._as_network(target)
            true[i] = self.true_latency(net)
            measured[i] = self.measure_latency(net, runs=runs, rng=rng)
        return measured, true
