"""The simulated measurement device standing in for physical hardware.

``true_latency`` is the deterministic analytical latency: per-layer
roofline times, a cache-pressure multiplier on memory-bound layers driven
by the *whole model's* working set, and a sub-linear kernel-launch term.
The last two are global, non-additive contributions — precisely what makes
purely additive lookup-table surrogates fail, as the paper reports.

``measure`` wraps it in the measurement-noise model (per-session
thermal/clock factor with occasional throttled sessions, warm-up
transient, multiplicative jitter, sparse positive outliers);
``measure_latency`` applies a `MeasurementProtocol` — by default the
paper's: discard the fastest and slowest 20% of runs, average the middle
60%.

Two structural properties make the measurement hot path cheap:

* The analytical latency of an `ArchConfig` is memoized in a bounded LRU
  (`AnalyticalCache`, keyed by `ArchConfig.cache_key()`), so the 150 noisy
  runs of one config — and the reference models re-measured every campaign
  batch — pay for the IR lowering and roofline sweep exactly once.
* The noise model is generated block-wise: `_trace_block` draws each
  config's randomness in the canonical order (session, throttle, jitter,
  outlier positions, outlier heights) and then applies the deterministic
  scaling to the whole ``(n_configs, runs)`` block in a handful of numpy
  operations.  The per-config draw order is preserved, so block results
  are bit-identical to measuring the configs one at a time from the same
  seeded generator — a regression test locks this in.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

import numpy as np

from ..archspace.config import ArchConfig
from ..network.analysis import working_set_bytes
from ..network.builders import build_network
from ..network.ir import Network
from ..profiling.protocol import MeasurementProtocol
from ..utils import ensure_rng
from .cache import AnalyticalCache, CacheInfo
from .profiles import DeviceProfile, device_by_name
from .roofline import layer_time

__all__ = ["SimulatedDevice"]


class SimulatedDevice:
    """Analytical latency model plus a seeded measurement-noise model."""

    def __init__(
        self,
        profile: Union[DeviceProfile, str],
        seed: "int | np.random.Generator | None" = None,
        cache_size: int = 4096,
    ):
        if isinstance(profile, str):
            profile = device_by_name(profile)
        self.profile = profile
        self.rng = ensure_rng(seed)
        self.analytical_cache = AnalyticalCache(cache_size)
        self._cache_profile = profile

    # ------------------------------------------------------------------ #
    # Deterministic analytical latency
    # ------------------------------------------------------------------ #

    def _as_network(self, target: Union[ArchConfig, Network]) -> Network:
        return target if isinstance(target, Network) else build_network(target)

    def _cache_pressure(self, net: Network) -> float:
        """Slowdown multiplier for memory-bound layers (global term)."""
        working_set = working_set_bytes(net)
        if working_set <= self.profile.cache_bytes:
            return 1.0
        overflow = 1.0 - self.profile.cache_bytes / working_set
        return 1.0 + self.profile.cache_penalty * overflow

    def _analytical_latency(self, net: Network) -> float:
        """The full IR sweep: per-layer roofline plus the global terms."""
        pressure = self._cache_pressure(net)
        total = 0.0
        for layer in net.layers:
            seconds, memory_bound = layer_time(layer, self.profile)
            total += seconds * (pressure if memory_bound else 1.0)
        launch = (
            self.profile.launch_overhead_s
            * len(net.layers) ** self.profile.launch_exponent
        )
        return total + launch

    def true_latency(self, target: Union[ArchConfig, Network]) -> float:
        """Noise-free end-to-end latency in seconds.

        `ArchConfig` targets are memoized behind `ArchConfig.cache_key()`;
        a pre-built `Network` bypasses the cache (it has no canonical key
        and callers who lowered it themselves own its lifetime).
        """
        if not isinstance(target, ArchConfig):
            return self._analytical_latency(target)
        if self.profile != self._cache_profile:
            # The profile was swapped out underneath us: every cached
            # latency belongs to the old device, so drop them all.
            self.analytical_cache.clear()
            self._cache_profile = self.profile
        key = target.cache_key()
        value = self.analytical_cache.get(key)
        if value is None:
            value = self._analytical_latency(build_network(target))
            self.analytical_cache.put(key, value)
        return value

    def cache_info(self) -> CacheInfo:
        """Hit/miss accounting of the analytical-latency cache."""
        return self.analytical_cache.info()

    # ------------------------------------------------------------------ #
    # Noisy measurement
    # ------------------------------------------------------------------ #

    def _trace_block(
        self, bases: np.ndarray, runs: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Noise-model traces for a block of configs: ``(n, runs)`` seconds.

        Stochastic draws happen per config in the canonical order (session
        factor, throttle coin, jitter, outlier positions, outlier heights)
        so the stream consumed for config ``i`` is exactly what a lone
        ``measure`` call would consume; the deterministic arithmetic —
        session scaling, warm-up transient, outlier application — is then
        applied to the whole block at once.
        """
        p = self.profile
        n = int(bases.shape[0])
        session = np.empty(n)
        jitter = np.empty((n, runs))
        spike_mask = np.zeros((n, runs), dtype=bool)
        spike_boost = np.empty((n, runs))
        for i in range(n):
            factor = float(np.exp(rng.normal(0.0, p.session_sigma)))
            if rng.random() < p.throttle_prob:
                factor *= p.throttle_factor
            session[i] = factor
            jitter[i] = rng.normal(0.0, p.jitter_cv, size=runs)
            spikes = rng.random(runs) < p.outlier_prob
            if spikes.any():
                spike_mask[i] = spikes
                spike_boost[i, spikes] = 1.0 + rng.exponential(
                    p.outlier_scale, size=int(spikes.sum())
                )
        traces = (bases * session)[:, None] * np.exp(jitter)

        # Warm-up transient: geometric decay toward steady state.
        idx = np.arange(min(p.warmup_iters, runs))
        traces[:, : idx.size] *= 1.0 + (p.warmup_factor - 1.0) * 0.5**idx

        if spike_mask.any():
            traces[spike_mask] *= spike_boost[spike_mask]
        return traces

    def measure(
        self,
        target: Union[ArchConfig, Network],
        runs: int = 150,
        rng: "int | np.random.Generator | None" = None,
    ) -> np.ndarray:
        """Raw latency trace of ``runs`` consecutive iterations (seconds)."""
        if runs < 1:
            raise ValueError("runs must be >= 1")
        rng = self.rng if rng is None else ensure_rng(rng)
        base = self.true_latency(target)
        return self._trace_block(np.array([base]), runs, rng)[0]

    def measure_latency(
        self,
        target: Union[ArchConfig, Network],
        runs: int = 150,
        rng: "int | np.random.Generator | None" = None,
        protocol: Optional[MeasurementProtocol] = None,
    ) -> float:
        """Protocol-collapsed latency (default: the paper's trim-20% mean).

        ``protocol`` overrides the whole measurement recipe; when given, its
        ``runs`` takes precedence over the ``runs`` argument.
        """
        if protocol is None:
            protocol = MeasurementProtocol(runs=runs)
        return protocol.measure(self, target, rng=rng)

    def measure_batch(
        self,
        targets: List[Union[ArchConfig, Network]],
        runs: int = 150,
        rng: "int | np.random.Generator | None" = None,
        protocol: Optional[MeasurementProtocol] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Measure many configs from one seeded stream.

        Returns ``(measured, true)`` latency arrays; deterministic given
        the rng state and the order of ``targets``, and bit-identical to
        calling ``measure_latency`` per config on the same stream.  The
        analytical latency of each target is resolved exactly once (via
        the cache for `ArchConfig`, directly for a pre-built `Network`)
        and threaded through to both the noise model and the returned
        ground truth — no target is lowered twice.
        """
        rng = self.rng if rng is None else ensure_rng(rng)
        if protocol is None:
            protocol = MeasurementProtocol(runs=runs)
        bases = np.array([self.true_latency(t) for t in targets], dtype=float)
        traces = self._trace_block(bases, protocol.runs, rng)
        measured = np.array([protocol.trimmed_mean(trace) for trace in traces])
        return measured, bases
