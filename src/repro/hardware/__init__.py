"""Simulated measurement devices: profiles, roofline engine, noise model,
measurement exceptions, and seeded fault injection."""

from .cache import AnalyticalCache, CacheInfo
from .errors import MeasurementError, MeasurementTimeout
from .profiles import DEVICE_NAMES, DEVICES, DeviceProfile, device_by_name
from .roofline import compute_efficiency, layer_time
from .simulator import SimulatedDevice
from .faults import FaultPlan, FaultyDevice

__all__ = [
    "AnalyticalCache",
    "CacheInfo",
    "DeviceProfile",
    "DEVICES",
    "DEVICE_NAMES",
    "device_by_name",
    "layer_time",
    "compute_efficiency",
    "SimulatedDevice",
    "MeasurementError",
    "MeasurementTimeout",
    "FaultPlan",
    "FaultyDevice",
]
