"""Exception types raised by the measurement layer.

Real measurement campaigns fail in two qualitatively different ways: the
device reports an error (driver hiccup, lost connection, corrupted trace)
or it simply stops responding and the harness gives up after a deadline.
Both are *transient* from the campaign's point of view — the supervisor in
`repro.profiling` catches them and retries the measurement — but they are
distinct types so callers can tell a fast failure from a burned timeout.
"""

from __future__ import annotations

__all__ = ["MeasurementError", "MeasurementTimeout"]


class MeasurementError(RuntimeError):
    """A latency measurement failed or produced an unusable trace."""


class MeasurementTimeout(MeasurementError):
    """A measurement hung and was abandoned after its deadline."""
