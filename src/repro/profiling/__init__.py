"""Fault-tolerant measurement campaigns: the paper's dataset-generation
protocol (150-run trimmed mean), reference-model QC with the 3% drift
gate (Fig. 6), a checkpointed batch runner that resumes a killed sweep
without re-measuring anything, and the async device-fleet dispatcher
(deadlines, circuit breakers, quorum degradation) layered on top."""

from .campaign import CampaignError, CampaignResult, CampaignRunner
from .clock import AsyncSystemClock, Clock, FakeClock, SystemClock, VirtualClock
from .fleet import CircuitBreaker, DeviceSession, FleetRunner
from .paired import PairedMeasurementSet, measure_paired
from .protocol import MeasurementProtocol
from .reference import QCResult, ReferenceSet
from .report import (
    AttemptRecord,
    BatchRecord,
    CampaignReport,
    FleetHealth,
    SessionHealth,
)
from .storage import MANIFEST_VERSION, CampaignStore

__all__ = [
    "MeasurementProtocol",
    "ReferenceSet",
    "QCResult",
    "AttemptRecord",
    "BatchRecord",
    "CampaignReport",
    "CampaignStore",
    "MANIFEST_VERSION",
    "CampaignRunner",
    "CampaignResult",
    "CampaignError",
    "FleetRunner",
    "DeviceSession",
    "CircuitBreaker",
    "FleetHealth",
    "SessionHealth",
    "Clock",
    "SystemClock",
    "FakeClock",
    "AsyncSystemClock",
    "VirtualClock",
    "PairedMeasurementSet",
    "measure_paired",
]
