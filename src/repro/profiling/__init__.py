"""Fault-tolerant measurement campaigns: the paper's dataset-generation
protocol (150-run trimmed mean), reference-model QC with the 3% drift
gate (Fig. 6), and a checkpointed batch runner that resumes a killed
sweep without re-measuring anything."""

from .campaign import CampaignError, CampaignResult, CampaignRunner
from .protocol import MeasurementProtocol
from .reference import QCResult, ReferenceSet
from .report import AttemptRecord, BatchRecord, CampaignReport
from .storage import MANIFEST_VERSION, CampaignStore

__all__ = [
    "MeasurementProtocol",
    "ReferenceSet",
    "QCResult",
    "AttemptRecord",
    "BatchRecord",
    "CampaignReport",
    "CampaignStore",
    "MANIFEST_VERSION",
    "CampaignRunner",
    "CampaignResult",
    "CampaignError",
]
