"""Reference-model quality control: the paper's Fig. 6 drift gate.

The dataset-generation protocol re-measures a small set of *reference
models* inside every batch.  Their latencies were enrolled once under
known-good conditions; if a batch's re-measurement drifts from the
enrolled baseline by more than a threshold (paper: 3%), something
systematic happened to the device during that batch — thermal throttling,
a background process, a clock change — and the whole batch is re-executed.
`ReferenceSet` holds the reference configs and baselines and renders the
verdict; the retry policy lives in `CampaignRunner`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..archspace.config import ArchConfig
from ..archspace.sampling import RandomSampler
from ..archspace.spaces import SpaceSpec

__all__ = ["QCResult", "ReferenceSet"]


@dataclass(frozen=True)
class QCResult:
    """Verdict of one reference re-measurement against the baselines."""

    passed: bool
    drifts: Tuple[float, ...]  # per-reference |measured/baseline - 1|
    threshold: float

    @property
    def max_drift(self) -> float:
        return max(self.drifts) if self.drifts else 0.0

    def to_dict(self) -> dict:
        return {
            "passed": self.passed,
            "drifts": list(self.drifts),
            "max_drift": self.max_drift,
            "threshold": self.threshold,
        }


class ReferenceSet:
    """k reference configs plus (once enrolled) their baseline latencies."""

    def __init__(
        self,
        configs: Sequence[ArchConfig],
        baselines: Optional[Sequence[float]] = None,
    ):
        if not configs:
            raise ValueError("a ReferenceSet needs at least one config")
        self.configs: List[ArchConfig] = list(configs)
        self.baselines: Optional[List[float]] = None
        if baselines is not None:
            self._set_baselines(baselines)

    @classmethod
    def from_space(
        cls,
        spec: SpaceSpec,
        k: int = 3,
        rng: "int | np.random.Generator | None" = None,
    ) -> "ReferenceSet":
        """Sample k reference configs uniformly from an architecture space."""
        if k < 1:
            raise ValueError("k must be >= 1")
        return cls(RandomSampler(spec, rng=rng).sample_batch(k))

    def __len__(self) -> int:
        return len(self.configs)

    @property
    def enrolled(self) -> bool:
        return self.baselines is not None

    def _set_baselines(self, baselines: Sequence[float]) -> None:
        baselines = [float(b) for b in baselines]
        if len(baselines) != len(self.configs):
            raise ValueError(
                f"got {len(baselines)} baselines for {len(self.configs)} configs"
            )
        if any(not np.isfinite(b) or b <= 0 for b in baselines):
            raise ValueError("baselines must be finite and positive")
        self.baselines = baselines

    def enroll(self, measure: Callable[[ArchConfig], float]) -> List[float]:
        """Measure every reference once and freeze the result as baseline."""
        self._set_baselines([measure(config) for config in self.configs])
        return list(self.baselines)

    def check(self, measured: Sequence[float], threshold: float) -> QCResult:
        """Compare a re-measurement against the enrolled baselines."""
        if not self.enrolled:
            raise RuntimeError("ReferenceSet.check before enroll")
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        if len(measured) != len(self.baselines):
            raise ValueError(
                f"got {len(measured)} measurements for {len(self.baselines)} baselines"
            )
        drifts = tuple(
            abs(float(m) / b - 1.0) for m, b in zip(measured, self.baselines)
        )
        return QCResult(
            passed=all(d <= threshold for d in drifts),
            drifts=drifts,
            threshold=float(threshold),
        )

    # ------------------------------------------------------------------ #
    # Persistence (campaign manifests)
    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict:
        return {
            "configs": [c.to_dict() for c in self.configs],
            "baselines": None if self.baselines is None else list(self.baselines),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ReferenceSet":
        return cls(
            configs=[ArchConfig.from_dict(c) for c in d["configs"]],
            baselines=d.get("baselines"),
        )
