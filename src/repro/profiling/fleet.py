"""Fault-tolerant device-fleet measurement: the async campaign dispatcher.

`FleetRunner` farms the batches of a `CampaignRunner` campaign out to N
simulated device *sessions* — think N flaky boards racked up for a HW-NAS
data-collection run.  Each session opens its own long-lived device handle
(a deep copy of the campaign device) and, when the device implements the
fleet fault model (`FaultyDevice.begin_fleet_session`), draws a seeded
per-session *straggler factor*: a straggler takes ``straggler_factor``
times the nominal wall-clock to return every batch it is handed, without
ever changing the measured bytes.

On top of that fault model sits the machinery real fleets need:

* **Deadline enforcement** — a dispatch whose simulated duration exceeds
  ``deadline_s`` is killed at the deadline, its results discarded, and the
  batch re-queued with seeded exponential backoff; a healthy session picks
  it up later and produces the *same bytes* it would have produced
  anywhere, because batch content depends only on ``(seed, batch,
  attempt)``.
* **Per-session circuit breakers** — ``breaker_threshold`` consecutive
  failures open a session's breaker; after ``breaker_cooldown_s`` it goes
  half-open and admits one probe dispatch; a session whose breaker opens
  ``breaker_max_openings`` times is permanently retired.
* **Quorum degradation** — the campaign never aborts while at least one
  session survives.  If survivors drop below the quorum
  (``ceil(quorum_fraction * sessions)``), batches completed from then on
  are flagged ``degraded`` in their manifest records and the
  `CampaignReport` carries a `FleetHealth` ledger with
  ``qc_passed=False``.  Zero survivors with work outstanding raises
  `CampaignError` whose message *is* the health ledger.

Determinism is inherited, not re-proven: `FleetRunner` subclasses
`CampaignRunner`, shares its fingerprint/manifest/shard layout (so a
killed fleet campaign can be resumed by a serial runner and vice versa),
and executes batches with the very same `_execute_batch`.  Scheduling
runs on a `VirtualClock` by default — a deterministic discrete-event
clock — so the health ledger, the dispatch order, and the simulated
makespan are reproducible too, not just the shard bytes.
"""

from __future__ import annotations

import asyncio
import copy
import heapq
import itertools
import math
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from ..data.dataset import LatencyDataset
from .campaign import CampaignError, CampaignResult, CampaignRunner, _execute_batch
from .clock import VirtualClock
from .report import FleetHealth, SessionHealth

__all__ = ["CircuitBreaker", "DeviceSession", "FleetRunner"]

_SESSION_SLOT = 0x5E55  # namespace for per-session straggler streams
_REDISPATCH_SLOT = 0x12ED  # namespace for re-dispatch backoff jitter streams

# Circuit-breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"
RETIRED = "retired"


class CircuitBreaker:
    """Classic three-state breaker plus a terminal ``retired`` state.

    ``threshold`` consecutive failures trip it open; after ``cooldown_s``
    it half-opens and admits one probe; a probe failure re-opens it.  Once
    it has opened ``max_openings`` times the session is retired for good —
    a board that keeps timing out is not coming back mid-campaign.
    """

    def __init__(
        self, threshold: int = 2, cooldown_s: float = 60.0, max_openings: int = 2
    ):
        if threshold < 1:
            raise ValueError("breaker threshold must be >= 1")
        if cooldown_s < 0:
            raise ValueError("breaker cooldown must be >= 0")
        if max_openings < 1:
            raise ValueError("breaker max_openings must be >= 1")
        self.threshold = int(threshold)
        self.cooldown_s = float(cooldown_s)
        self.max_openings = int(max_openings)
        self.consecutive_failures = 0
        self.openings = 0
        self._state = CLOSED
        self._opened_at = 0.0

    def state(self, now: float) -> str:
        """Current state, promoting ``open`` to ``half_open`` after cooldown."""
        if self._state == OPEN and now - self._opened_at >= self.cooldown_s:
            self._state = HALF_OPEN
        return self._state

    def cooldown_remaining(self, now: float) -> float:
        return max(0.0, self._opened_at + self.cooldown_s - now)

    def record_success(self) -> None:
        self.consecutive_failures = 0
        if self._state != RETIRED:
            self._state = CLOSED

    def record_failure(self, now: float) -> str:
        """Register one failed dispatch; returns the resulting state."""
        self.consecutive_failures += 1
        tripped = (
            self._state == HALF_OPEN  # failed probe: straight back open
            or self.consecutive_failures >= self.threshold
        )
        if tripped and self._state != RETIRED:
            self.openings += 1
            self._state = RETIRED if self.openings >= self.max_openings else OPEN
            self._opened_at = now
        return self._state


@dataclass
class DeviceSession:
    """One long-lived device handle in the fleet, with its breaker and ledger."""

    id: int
    device: object
    straggler_factor: float
    breaker: CircuitBreaker
    health: SessionHealth = field(init=False)

    def __post_init__(self) -> None:
        self.health = SessionHealth(
            session=self.id, straggler_factor=self.straggler_factor
        )

    def snapshot(self, now: float) -> SessionHealth:
        """The ledger line with breaker state folded in."""
        self.health.breaker_state = self.breaker.state(now)
        self.health.consecutive_failures = self.breaker.consecutive_failures
        self.health.openings = self.breaker.openings
        return self.health


class FleetRunner(CampaignRunner):
    """Run a campaign across N device sessions under an async dispatcher.

    Accepts every `CampaignRunner` argument (``workers``/``mp_context``
    are ignored — the fleet *is* the parallelism) plus the fleet knobs
    documented in the module docstring.  ``nominal_batch_s`` is the
    simulated healthy-session wall-clock of one batch; ``contention``
    adds ``contention * (concurrent dispatches - 1)`` of relative
    slowdown, modelling shared-host interference.  The default clock is a
    `VirtualClock`, which makes the whole schedule deterministic and
    free; pass `AsyncSystemClock` to pace a fleet in real time.
    """

    def __init__(
        self,
        device,
        configs,
        campaign_dir,
        references,
        *,
        sessions: int = 4,
        deadline_s: float = 30.0,
        nominal_batch_s: float = 1.0,
        contention: float = 0.0,
        breaker_threshold: int = 2,
        breaker_cooldown_s: float = 60.0,
        breaker_max_openings: int = 2,
        redispatch_backoff_s: float = 1.0,
        redispatch_backoff_factor: float = 2.0,
        quorum_fraction: float = 0.5,
        fleet_clock=None,
        **kwargs,
    ):
        super().__init__(device, configs, campaign_dir, references, **kwargs)
        if sessions < 1:
            raise ValueError("a fleet needs at least one session")
        if deadline_s <= 0 or nominal_batch_s <= 0:
            raise ValueError("deadline_s and nominal_batch_s must be positive")
        if contention < 0:
            raise ValueError("contention must be >= 0")
        if not 0.0 < quorum_fraction <= 1.0:
            raise ValueError("quorum_fraction must be in (0, 1]")
        self.sessions = int(sessions)
        self.deadline_s = float(deadline_s)
        self.nominal_batch_s = float(nominal_batch_s)
        self.contention = float(contention)
        self.breaker_threshold = int(breaker_threshold)
        self.breaker_cooldown_s = float(breaker_cooldown_s)
        self.breaker_max_openings = int(breaker_max_openings)
        self.redispatch_backoff_s = float(redispatch_backoff_s)
        self.redispatch_backoff_factor = float(redispatch_backoff_factor)
        self.quorum_fraction = float(quorum_fraction)
        self.quorum = max(1, math.ceil(self.quorum_fraction * self.sessions))
        self.fleet_clock = VirtualClock() if fleet_clock is None else fleet_clock
        # Idle sessions poll for re-queued work at this (virtual) cadence.
        self._poll_s = min(1.0, self.deadline_s / 10.0)
        self.health: Optional[FleetHealth] = None  # ledger of the last run()

    # ------------------------------------------------------------------ #
    # Session lifecycle
    # ------------------------------------------------------------------ #

    def _open_session(self, session_id: int) -> DeviceSession:
        """Open one long-lived device session with a seeded straggler draw.

        The draw comes from ``default_rng([seed, _SESSION_SLOT, id])`` — a
        stream disjoint from every measurement stream — so which sessions
        straggle is reproducible, while the measured bytes stay identical
        to a serial run's.
        """
        device = copy.deepcopy(self.device)
        factor = 1.0
        if hasattr(device, "begin_fleet_session"):
            rng = np.random.default_rng([self.seed, _SESSION_SLOT, session_id])
            factor = float(device.begin_fleet_session(rng))
        return DeviceSession(
            id=session_id,
            device=device,
            straggler_factor=factor,
            breaker=CircuitBreaker(
                threshold=self.breaker_threshold,
                cooldown_s=self.breaker_cooldown_s,
                max_openings=self.breaker_max_openings,
            ),
        )

    def _surviving(self) -> int:
        now = self.fleet_clock.now()
        return sum(
            1 for s in self._sessions if s.breaker.state(now) != RETIRED
        )

    def _ledger(self) -> FleetHealth:
        now = self.fleet_clock.now()
        return FleetHealth(
            n_sessions=self.sessions,
            quorum=self.quorum,
            sessions=[s.snapshot(now) for s in self._sessions],
            redispatches=self._redispatches,
            degraded_batches=sorted(self._degraded_batches),
            makespan_s=round(now - self._t0, 6),
        )

    # ------------------------------------------------------------------ #
    # The dispatcher
    # ------------------------------------------------------------------ #

    def run(self, max_batches: Optional[int] = None) -> CampaignResult:
        """Run (or resume) the campaign across the fleet.

        Completes as long as one session survives; raises `CampaignError`
        carrying the full health ledger (``exc.health``) once every
        session has been retired with batches still outstanding.  Every
        batch committed before that point is durably on disk either way —
        a subsequent `FleetRunner` *or* `CampaignRunner` resume picks up
        exactly where the fleet fell over.
        """
        started = time.monotonic()
        manifest = self._load_or_init_manifest()
        pending = self._pending_batches(manifest, max_batches)

        self._sessions: List[DeviceSession] = [
            self._open_session(i) for i in range(self.sessions)
        ]
        self._redispatches = 0
        self._degraded_batches: Set[int] = set()
        self._busy = 0
        self._t0 = self.fleet_clock.now()
        self._manifest = manifest
        self._remaining_after_dispatch: Set[int] = set()

        if pending:
            asyncio.run(self._dispatch(pending))

        self.health = self._ledger()
        report = self._report(manifest)
        report.fleet = self.health
        report.wall_clock_s = time.monotonic() - started
        report.save(self.store.report_path)

        if self._remaining_after_dispatch:
            message = (
                f"fleet campaign stalled with "
                f"{len(self._remaining_after_dispatch)} batch(es) outstanding "
                f"and no surviving sessions\n{self.health.describe()}"
            )
            error = CampaignError(message)
            error.health = self.health
            raise error

        dataset_samples = []
        for index in range(self.n_batches):
            if self.store.has_shard(index):
                dataset_samples.extend(self.store.read_shard(index).samples)
        return CampaignResult(
            dataset=LatencyDataset(dataset_samples), report=report
        )

    async def _dispatch(self, pending: Sequence[int]) -> None:
        self._remaining: Set[int] = set(pending)
        self._queue: List[Tuple[float, int, int, int]] = []
        self._qseq = itertools.count()
        now = self.fleet_clock.now()
        for index in pending:
            heapq.heappush(self._queue, (now, next(self._qseq), index, 0))
        # Register every session with the clock *before* the first worker
        # runs: otherwise the earliest worker's first sleep would satisfy
        # "all participants parked" and virtual time would advance before
        # the rest of the fleet had even started.
        for _ in self._sessions:
            self.fleet_clock.add_participant()
        workers = [
            asyncio.ensure_future(self._session_worker(session))
            for session in self._sessions
        ]
        await asyncio.gather(*workers)
        self._remaining_after_dispatch = set(self._remaining)

    def _pop_ready(self, now: float) -> Optional[Tuple[int, int]]:
        """The earliest queued ``(batch, prior_dispatches)`` due by ``now``."""
        if self._queue and self._queue[0][0] <= now:
            _, _, index, n_dispatch = heapq.heappop(self._queue)
            return index, n_dispatch
        return None

    async def _session_worker(self, session: DeviceSession) -> None:
        """One session's life: take work, respect the breaker, retire.

        The caller (`_dispatch`) has already registered this worker as a
        clock participant; the worker only deregisters itself on exit.
        """
        clock = self.fleet_clock
        try:
            while self._remaining:
                now = clock.now()
                state = session.breaker.state(now)
                if state == RETIRED:
                    return
                if state == OPEN:
                    await clock.sleep(
                        max(session.breaker.cooldown_remaining(now), self._poll_s)
                    )
                    continue
                item = self._pop_ready(now)
                if item is None:
                    if not self._remaining:
                        return
                    if self._queue:
                        # Work exists but its backoff has not elapsed.
                        delay = max(self._queue[0][0] - now, 0.0)
                        await clock.sleep(max(delay, 1e-9))
                    else:
                        # Everything is in flight elsewhere; poll in case a
                        # deadline kill re-queues a batch.
                        await clock.sleep(self._poll_s)
                    continue
                await self._dispatch_one(session, *item)
        finally:
            clock.remove_participant()

    async def _dispatch_one(
        self, session: DeviceSession, index: int, n_dispatch: int
    ) -> None:
        clock = self.fleet_clock
        health = session.health
        health.dispatches += 1
        contending = self._busy
        self._busy += 1
        try:
            duration = (
                self.nominal_batch_s
                * session.straggler_factor
                * (1.0 + self.contention * contending)
            )
            if duration > self.deadline_s:
                # The harness kills the dispatch at the deadline: nothing
                # is measured (the batch's RNG streams are untouched), the
                # batch goes back in the queue with backoff, the session
                # takes a breaker strike.
                await clock.sleep(self.deadline_s)
                health.timeouts += 1
                health.busy_s += self.deadline_s
                session.breaker.record_failure(clock.now())
                self._requeue(index, n_dispatch)
                return
            # The batch body is the exact function the serial path runs;
            # its QC backoffs are folded into simulated time rather than
            # slept for real.
            qc_sleeps: List[float] = []
            samples, record = _execute_batch(
                self._task(index), sleep=qc_sleeps.append
            )
            total = duration + sum(qc_sleeps)
            await clock.sleep(total)
            health.completions += 1
            health.busy_s += total
            session.breaker.record_success()
            record.session = session.id
            record.dispatches = n_dispatch + 1
            if self._surviving() < self.quorum:
                record.degraded = True
                self._degraded_batches.add(index)
            self._commit_batch(index, samples, record, self._manifest)
            self._remaining.discard(index)
        finally:
            self._busy -= 1

    def _requeue(self, index: int, n_dispatch: int) -> None:
        """Back a timed-out batch off and return it to the queue.

        The backoff jitter is seeded per ``(batch, dispatch)`` — the same
        discipline as the QC-retry jitter — so the re-dispatch schedule,
        and therefore the whole health ledger, replays identically.
        """
        self._redispatches += 1
        n = n_dispatch + 1
        backoff = (
            self.redispatch_backoff_s
            * self.redispatch_backoff_factor**n_dispatch
        )
        u = np.random.default_rng(
            [self.seed, _REDISPATCH_SLOT, index + 1, n]
        ).random()
        backoff *= 1.0 + self.backoff_jitter * (2.0 * u - 1.0)
        heapq.heappush(
            self._queue,
            (self.fleet_clock.now() + backoff, next(self._qseq), index, n),
        )
