"""Supervised, fault-tolerant measurement campaigns.

`CampaignRunner` turns "call ``measure_latency`` in a loop" into the
paper's dataset-generation protocol:

* the sweep runs in batches, each batch bracketed by a measurement
  *session* (``device.begin_session`` when the device has one);
* every batch re-measures the enrolled reference models and is re-executed
  with exponential backoff when their latency drifts past the threshold
  (paper: 3%, Fig. 6) — up to a bounded retry budget, after which the
  batch is kept but flagged ``qc_passed=False``, never silently dropped;
* per-measurement transient faults (`MeasurementError`, including
  timeouts and garbage traces) are retried in place;
* each completed batch is written as an atomic shard plus a manifest
  update, so a killed campaign resumes from the last completed batch and
  re-measures nothing.

Determinism is the load-bearing property: every stochastic draw of batch
``b``, attempt ``a`` comes from ``default_rng([seed, b + 1, a])`` — a
stream independent of campaign history — so an interrupted-and-resumed
campaign produces byte-identical shards to an uninterrupted one.  The same
independence makes batches embarrassingly parallel: ``workers=N`` farms
whole batches out to a spawn-safe process pool (each worker gets a
picklable `_BatchTask` and runs the *same* `_execute_batch` function the
sequential path uses), and the shards come back byte-identical to a
sequential run because no sample ever depends on cross-batch state.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..archspace.config import ArchConfig
from ..data.dataset import LatencyDataset, LatencySample
from ..hardware.errors import MeasurementError
from .clock import Clock, SystemClock
from .protocol import MeasurementProtocol
from .reference import ReferenceSet
from .report import AttemptRecord, BatchRecord, CampaignReport
from .storage import MANIFEST_VERSION, CampaignStore

__all__ = ["CampaignError", "CampaignResult", "CampaignRunner"]

_ENROLL_SLOT = 0  # batch-rng slot reserved for baseline enrollment
_JITTER_SLOT = 0x6A17  # namespace for backoff-jitter streams (≠ any batch slot)


class CampaignError(RuntimeError):
    """A campaign cannot proceed (bad resume state, exhausted retries)."""


def _attempt_rng(seed: int, slot: int, attempt: int) -> np.random.Generator:
    """The RNG stream for one (batch, attempt) — independent of history."""
    return np.random.default_rng([seed, slot, attempt])


# ---------------------------------------------------------------------- #
# Batch execution (shared by the sequential path and pool workers)
# ---------------------------------------------------------------------- #


@dataclass
class _BatchTask:
    """Everything one batch needs, picklable so a pool worker can run it.

    The device travels *by value* into the worker; that is safe because
    every stochastic draw flows through the per-(batch, attempt) RNG, so a
    copy measures the same bytes the parent's device would have.
    """

    device: object
    configs: List[ArchConfig]
    references: ReferenceSet
    protocol: MeasurementProtocol
    seed: int
    index: int
    drift_threshold: float
    max_qc_retries: int
    max_transient_retries: int
    backoff_s: float
    backoff_factor: float
    backoff_jitter: float
    device_name: str


def _measure_one(
    task: _BatchTask, config: ArchConfig, rng: np.random.Generator
) -> Tuple[float, int]:
    """One protocol latency with in-place transient retries.

    Returns ``(latency_s, retries_used)``; raises `CampaignError` once the
    transient budget is exhausted.
    """
    last_error: Optional[MeasurementError] = None
    for attempt in range(task.max_transient_retries + 1):
        try:
            return task.protocol.measure(task.device, config, rng=rng), attempt
        except MeasurementError as exc:
            last_error = exc
    raise CampaignError(
        f"measurement failed {task.max_transient_retries + 1} times in a row: "
        f"{last_error}"
    ) from last_error


def _make_sample(
    task: _BatchTask, config: ArchConfig, latency: float, *, is_reference: bool
) -> LatencySample:
    true_latency = None
    if hasattr(task.device, "true_latency"):
        true_latency = float(task.device.true_latency(config))
    return LatencySample(
        config=config,
        latency_s=float(latency),
        device=task.device_name,
        true_latency_s=true_latency,
        is_reference=is_reference,
    )


def _run_attempt(
    task: _BatchTask, attempt: int
) -> Tuple[List[LatencySample], List[float], AttemptRecord]:
    """Execute one attempt of one batch: configs, then references."""
    started = time.monotonic()
    rng = _attempt_rng(task.seed, task.index + 1, attempt)
    if hasattr(task.device, "begin_session"):
        task.device.begin_session(rng)
    transient_retries = 0
    samples: List[LatencySample] = []
    for config in task.configs:
        latency, retries = _measure_one(task, config, rng)
        transient_retries += retries
        samples.append(_make_sample(task, config, latency, is_reference=False))
    ref_measured: List[float] = []
    for config in task.references.configs:
        latency, retries = _measure_one(task, config, rng)
        transient_retries += retries
        ref_measured.append(latency)
    qc = task.references.check(ref_measured, task.drift_threshold)
    samples.extend(
        _make_sample(task, c, m, is_reference=True)
        for c, m in zip(task.references.configs, ref_measured)
    )
    record = AttemptRecord(
        attempt=attempt,
        qc_passed=qc.passed,
        drifts=list(qc.drifts),
        max_drift=qc.max_drift,
        transient_retries=transient_retries,
        backoff_s=0.0,
        wall_clock_s=time.monotonic() - started,
    )
    return samples, ref_measured, record


def _backoff_with_jitter(task: _BatchTask, attempt: int) -> float:
    """The post-QC-failure sleep for ``attempt``: exponential, jittered.

    The jitter multiplier is drawn from a dedicated per-(batch, attempt)
    stream — *not* the measurement stream, which must stay byte-aligned
    with jitterless runs — so the whole backoff schedule is reproducible
    from the campaign seed alone, and desynchronises retries across a
    fleet of concurrently failing batches the way production jitter is
    meant to.
    """
    backoff = task.backoff_s * task.backoff_factor**attempt
    if backoff > 0 and task.backoff_jitter > 0:
        u = np.random.default_rng(
            [task.seed, _JITTER_SLOT, task.index + 1, attempt]
        ).random()
        backoff *= 1.0 + task.backoff_jitter * (2.0 * u - 1.0)
    return backoff


def _execute_batch(
    task: _BatchTask, sleep: Callable[[float], None] = time.sleep
) -> Tuple[List[LatencySample], BatchRecord]:
    """Run a batch to QC verdict, re-executing with backoff on drift."""
    attempts: List[AttemptRecord] = []
    samples: List[LatencySample] = []
    for attempt in range(task.max_qc_retries + 1):
        samples, _, record = _run_attempt(task, attempt)
        if not record.qc_passed and attempt < task.max_qc_retries:
            backoff = _backoff_with_jitter(task, attempt)
            if backoff > 0:
                sleep(backoff)
            record = AttemptRecord(**{**record.to_dict(), "backoff_s": backoff})
        attempts.append(record)
        if record.qc_passed:
            break
    qc_passed = attempts[-1].qc_passed
    if not qc_passed:
        # Retry budget exhausted: keep the data, flag it, never drop it.
        samples = [
            LatencySample(**{**s.__dict__, "qc_passed": False}) for s in samples
        ]
    record = BatchRecord(
        index=task.index,
        n_configs=len(task.configs),
        attempts=attempts,
        qc_passed=qc_passed,
    )
    return samples, record


@dataclass
class CampaignResult:
    """What a finished (or resumed-to-finished) campaign hands back."""

    dataset: LatencyDataset  # every sample, references included
    report: CampaignReport

    @property
    def measurements(self) -> LatencyDataset:
        """The sweep's samples with QC references filtered out."""
        return LatencyDataset([s for s in self.dataset if not s.is_reference])


class CampaignRunner:
    """Run a sweep of configs through the QC'd, checkpointed pipeline."""

    def __init__(
        self,
        device,
        configs: Sequence[ArchConfig],
        campaign_dir,
        references: ReferenceSet,
        *,
        protocol: Optional[MeasurementProtocol] = None,
        batch_size: int = 25,
        seed: int = 0,
        drift_threshold: float = 0.03,
        max_qc_retries: int = 2,
        max_transient_retries: int = 3,
        backoff_s: float = 0.25,
        backoff_factor: float = 2.0,
        backoff_jitter: float = 0.1,
        sleep: Optional[Callable[[float], None]] = None,
        clock: Optional[Clock] = None,
        device_name: Optional[str] = None,
        workers: int = 1,
        mp_context: Optional[str] = None,
    ):
        if not configs:
            raise ValueError("a campaign needs at least one config")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if max_qc_retries < 0 or max_transient_retries < 0:
            raise ValueError("retry budgets must be >= 0")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if not 0.0 <= backoff_jitter < 1.0:
            raise ValueError("backoff_jitter must be in [0, 1)")
        self.device = device
        self.configs = list(configs)
        self.store = CampaignStore(campaign_dir)
        self.references = references
        self.protocol = protocol or MeasurementProtocol()
        self.batch_size = batch_size
        self.seed = int(seed)
        self.drift_threshold = float(drift_threshold)
        self.max_qc_retries = int(max_qc_retries)
        self.max_transient_retries = int(max_transient_retries)
        self.backoff_s = float(backoff_s)
        self.backoff_factor = float(backoff_factor)
        self.backoff_jitter = float(backoff_jitter)
        # Backoff sleeps go through an injectable clock so tests (and the
        # fleet's virtual-time dispatcher) never block on real time.  An
        # explicit ``sleep=`` callable still wins, for callers that predate
        # the clock.
        self.clock: Clock = SystemClock() if clock is None else clock
        self.sleep = self.clock.sleep if sleep is None else sleep
        self.workers = int(workers)
        # Pool start method: "spawn" is the portable, always-safe default;
        # "fork" starts workers in milliseconds on POSIX (they inherit the
        # already-imported interpreter) and is worth requesting explicitly
        # for short campaigns from single-threaded parents.  Shard bytes
        # are identical either way, so neither this nor `workers` enters
        # the fingerprint.
        self.mp_context = "spawn" if mp_context is None else str(mp_context)
        if device_name is None:
            device_name = getattr(getattr(device, "profile", None), "name", None)
        if device_name is None:
            raise ValueError(
                "device has no .profile.name; pass device_name= explicitly"
            )
        self.device_name = device_name

    # ------------------------------------------------------------------ #
    # Identity
    # ------------------------------------------------------------------ #

    @property
    def n_batches(self) -> int:
        return (len(self.configs) + self.batch_size - 1) // self.batch_size

    def _batch_configs(self, index: int) -> List[ArchConfig]:
        lo = index * self.batch_size
        return self.configs[lo : lo + self.batch_size]

    def fingerprint(self) -> str:
        """Hash of everything that determines the campaign's shard bytes.

        Stored in the manifest; a resume against a directory whose
        fingerprint differs (different configs, seed, protocol, device,
        batching, or references) is refused rather than silently mixed.
        """
        payload = {
            "configs": [c.to_dict() for c in self.configs],
            "references": [c.to_dict() for c in self.references.configs],
            "protocol": self.protocol.to_dict(),
            "batch_size": self.batch_size,
            "seed": self.seed,
            "drift_threshold": self.drift_threshold,
            "max_qc_retries": self.max_qc_retries,
            "max_transient_retries": self.max_transient_retries,
            "device": self.device_name,
        }
        digest = hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode()
        )
        return digest.hexdigest()

    # ------------------------------------------------------------------ #
    # Measurement primitives
    # ------------------------------------------------------------------ #

    def _task(self, batch_index: int) -> _BatchTask:
        """The picklable work order for one batch."""
        return _BatchTask(
            device=self.device,
            configs=self._batch_configs(batch_index),
            references=self.references,
            protocol=self.protocol,
            seed=self.seed,
            index=batch_index,
            drift_threshold=self.drift_threshold,
            max_qc_retries=self.max_qc_retries,
            max_transient_retries=self.max_transient_retries,
            backoff_s=self.backoff_s,
            backoff_factor=self.backoff_factor,
            backoff_jitter=self.backoff_jitter,
            device_name=self.device_name,
        )

    def _run_batch(self, batch_index: int) -> "tuple[List[LatencySample], BatchRecord]":
        """Run a batch in-process (the sequential path)."""
        return _execute_batch(self._task(batch_index), sleep=self.sleep)

    # ------------------------------------------------------------------ #
    # Enrollment
    # ------------------------------------------------------------------ #

    def _enroll_references(self) -> None:
        rng = _attempt_rng(self.seed, _ENROLL_SLOT, 0)
        if hasattr(self.device, "begin_session"):
            self.device.begin_session(rng)
        task = self._task(0)
        self.references.enroll(
            lambda config: _measure_one(task, config, rng)[0]
        )

    # ------------------------------------------------------------------ #
    # Manifest plumbing
    # ------------------------------------------------------------------ #

    def _fresh_manifest(self) -> dict:
        return {
            "manifest_version": MANIFEST_VERSION,
            "fingerprint": self.fingerprint(),
            "device": self.device_name,
            "seed": self.seed,
            "n_configs": len(self.configs),
            "batch_size": self.batch_size,
            "n_batches": self.n_batches,
            "protocol": self.protocol.to_dict(),
            "drift_threshold": self.drift_threshold,
            "max_qc_retries": self.max_qc_retries,
            "references": self.references.to_dict(),
            "batches": {},  # str(batch_index) -> BatchRecord dict
        }

    def _load_or_init_manifest(self) -> dict:
        manifest = self.store.load_manifest()
        if manifest is None:
            self.store.ensure_layout()
            manifest = self._fresh_manifest()
            if not self.references.enrolled:
                self._enroll_references()
            manifest["references"] = self.references.to_dict()
            self.store.save_manifest(manifest)
            return manifest
        if manifest.get("fingerprint") != self.fingerprint():
            raise CampaignError(
                f"campaign directory {self.store.root} belongs to a different "
                "campaign (fingerprint mismatch); refusing to mix shards"
            )
        stored = ReferenceSet.from_dict(manifest["references"])
        if not stored.enrolled:
            # Crash between mkdir and enrollment: enroll now.
            self._enroll_references()
            manifest["references"] = self.references.to_dict()
            self.store.save_manifest(manifest)
        else:
            self.references.baselines = stored.baselines
        return manifest

    # ------------------------------------------------------------------ #
    # The sweep
    # ------------------------------------------------------------------ #

    def run(self, max_batches: Optional[int] = None) -> CampaignResult:
        """Run (or resume) the campaign.

        ``max_batches`` bounds how many *pending* batches this call
        executes before returning — the hook tests use to interrupt a
        campaign mid-sweep; production callers leave it None.  The result
        always reflects every batch completed so far, by this process or a
        previous one.

        With ``workers > 1`` the pending batches are farmed out to a
        spawn-safe process pool.  Each batch's RNG streams depend only on
        ``(seed, batch, attempt)``, so the shards a parallel run writes
        are byte-identical to a sequential run's — only the completion
        order (and therefore the manifest's commit order) differs, and
        shards commit atomically as they finish, so a killed parallel
        campaign resumes exactly like a sequential one.
        """
        started = time.monotonic()
        manifest = self._load_or_init_manifest()
        pending = self._pending_batches(manifest, max_batches)

        if self.workers > 1 and len(pending) > 1:
            self._run_parallel(pending, manifest)
        else:
            for index in pending:
                samples, record = self._run_batch(index)
                self._commit_batch(index, samples, record, manifest)

        report = self._report(manifest)
        report.wall_clock_s = time.monotonic() - started
        report.save(self.store.report_path)
        dataset = LatencyDataset()
        for index in range(self.n_batches):
            if self.store.has_shard(index):
                dataset.extend(self.store.read_shard(index).samples)
        return CampaignResult(dataset=dataset, report=report)

    def _pending_batches(
        self, manifest: dict, max_batches: Optional[int] = None
    ) -> List[int]:
        """Batches not yet durably committed, marking inherited ones."""
        pending: List[int] = []
        for index in range(self.n_batches):
            recorded = manifest["batches"].get(str(index))
            if recorded is not None and self.store.has_shard(index):
                # Completed by an earlier process (or earlier call): skip.
                if not recorded.get("resumed"):
                    recorded["resumed"] = True
                continue
            if max_batches is not None and len(pending) >= max_batches:
                break
            pending.append(index)
        return pending

    def _commit_batch(
        self,
        index: int,
        samples: List[LatencySample],
        record: BatchRecord,
        manifest: dict,
    ) -> None:
        """Durably persist one finished batch: shard first, then manifest.

        The manifest's batch map is re-sorted by index on every commit so
        its on-disk ordering is deterministic regardless of the order a
        parallel run's batches happen to complete in.
        """
        record.shard = self.store.write_shard(index, LatencyDataset(samples))
        manifest["batches"][str(index)] = record.to_dict()
        manifest["batches"] = dict(
            sorted(manifest["batches"].items(), key=lambda kv: int(kv[0]))
        )
        self.store.save_manifest(manifest)

    def _record_degradation(self, manifest: dict, kind: str, **details) -> None:
        """Durably note that the campaign survived an executor failure.

        The entry rides in the manifest (and therefore in every report
        built from it, including after a resume) so "the pool died and we
        limped home serially" is visible in the provenance, not just in a
        log nobody kept.
        """
        entry = {"kind": kind, **details}
        manifest.setdefault("degradations", []).append(entry)
        self.store.save_manifest(manifest)

    def _run_parallel(self, pending: List[int], manifest: dict) -> None:
        """Execute ``pending`` batches on a process pool, committing each
        as it completes.  Falls back to the sequential path — recording the
        degradation — when no pool can be created on this platform, or when
        the pool breaks mid-campaign (a worker segfaults, is OOM-killed, or
        otherwise dies); batches already committed by the pool are never
        re-measured, only the still-pending ones rerun serially."""
        try:
            pool = ProcessPoolExecutor(
                max_workers=min(self.workers, len(pending)),
                mp_context=multiprocessing.get_context(self.mp_context),
            )
        except (ImportError, NotImplementedError, OSError, ValueError) as exc:
            # ValueError: the requested start method does not exist on
            # this platform (e.g. "fork" on Windows) — run sequentially.
            self._record_degradation(
                manifest,
                "pool_unavailable",
                error=f"{type(exc).__name__}: {exc}",
                pending=list(pending),
            )
            self._run_serial(pending, manifest)
            return
        try:
            with pool:
                futures = {
                    pool.submit(_execute_batch, self._task(index)): index
                    for index in pending
                }
                for future in as_completed(futures):
                    index = futures[future]
                    samples, record = future.result()
                    self._commit_batch(index, samples, record, manifest)
        except BrokenProcessPool as exc:
            still_pending = [
                index
                for index in pending
                if str(index) not in manifest["batches"]
                or not self.store.has_shard(index)
            ]
            self._record_degradation(
                manifest,
                "broken_process_pool",
                error=f"{type(exc).__name__}: {exc}",
                completed_before_failure=len(pending) - len(still_pending),
                pending=still_pending,
            )
            self._run_serial(still_pending, manifest)

    def _run_serial(self, pending: List[int], manifest: dict) -> None:
        for index in pending:
            if self.store.has_shard(index) and str(index) in manifest["batches"]:
                continue
            samples, record = self._run_batch(index)
            self._commit_batch(index, samples, record, manifest)

    @property
    def complete(self) -> bool:
        manifest = self.store.load_manifest()
        if manifest is None:
            return False
        return all(
            str(i) in manifest["batches"] and self.store.has_shard(i)
            for i in range(self.n_batches)
        )

    def _report(self, manifest: dict) -> CampaignReport:
        batches = [
            BatchRecord.from_dict(manifest["batches"][key])
            for key in sorted(manifest["batches"], key=int)
        ]
        return CampaignReport(
            device=self.device_name,
            seed=self.seed,
            n_configs=len(self.configs),
            batch_size=self.batch_size,
            protocol=self.protocol.to_dict(),
            drift_threshold=self.drift_threshold,
            max_qc_retries=self.max_qc_retries,
            batches=batches,
            degradations=[dict(x) for x in manifest.get("degradations", [])],
        )
