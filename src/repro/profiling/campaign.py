"""Supervised, fault-tolerant measurement campaigns.

`CampaignRunner` turns "call ``measure_latency`` in a loop" into the
paper's dataset-generation protocol:

* the sweep runs in batches, each batch bracketed by a measurement
  *session* (``device.begin_session`` when the device has one);
* every batch re-measures the enrolled reference models and is re-executed
  with exponential backoff when their latency drifts past the threshold
  (paper: 3%, Fig. 6) — up to a bounded retry budget, after which the
  batch is kept but flagged ``qc_passed=False``, never silently dropped;
* per-measurement transient faults (`MeasurementError`, including
  timeouts and garbage traces) are retried in place;
* each completed batch is written as an atomic shard plus a manifest
  update, so a killed campaign resumes from the last completed batch and
  re-measures nothing.

Determinism is the load-bearing property: every stochastic draw of batch
``b``, attempt ``a`` comes from ``default_rng([seed, b + 1, a])`` — a
stream independent of campaign history — so an interrupted-and-resumed
campaign produces byte-identical shards to an uninterrupted one.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Union

import numpy as np

from ..archspace.config import ArchConfig
from ..data.dataset import LatencyDataset, LatencySample
from ..hardware.errors import MeasurementError
from .protocol import MeasurementProtocol
from .reference import ReferenceSet
from .report import AttemptRecord, BatchRecord, CampaignReport
from .storage import MANIFEST_VERSION, CampaignStore

__all__ = ["CampaignError", "CampaignResult", "CampaignRunner"]

_ENROLL_SLOT = 0  # batch-rng slot reserved for baseline enrollment


class CampaignError(RuntimeError):
    """A campaign cannot proceed (bad resume state, exhausted retries)."""


def _attempt_rng(seed: int, slot: int, attempt: int) -> np.random.Generator:
    """The RNG stream for one (batch, attempt) — independent of history."""
    return np.random.default_rng([seed, slot, attempt])


@dataclass
class CampaignResult:
    """What a finished (or resumed-to-finished) campaign hands back."""

    dataset: LatencyDataset  # every sample, references included
    report: CampaignReport

    @property
    def measurements(self) -> LatencyDataset:
        """The sweep's samples with QC references filtered out."""
        return LatencyDataset([s for s in self.dataset if not s.is_reference])


class CampaignRunner:
    """Run a sweep of configs through the QC'd, checkpointed pipeline."""

    def __init__(
        self,
        device,
        configs: Sequence[ArchConfig],
        campaign_dir,
        references: ReferenceSet,
        *,
        protocol: Optional[MeasurementProtocol] = None,
        batch_size: int = 25,
        seed: int = 0,
        drift_threshold: float = 0.03,
        max_qc_retries: int = 2,
        max_transient_retries: int = 3,
        backoff_s: float = 0.25,
        backoff_factor: float = 2.0,
        sleep: Callable[[float], None] = time.sleep,
        device_name: Optional[str] = None,
    ):
        if not configs:
            raise ValueError("a campaign needs at least one config")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if max_qc_retries < 0 or max_transient_retries < 0:
            raise ValueError("retry budgets must be >= 0")
        self.device = device
        self.configs = list(configs)
        self.store = CampaignStore(campaign_dir)
        self.references = references
        self.protocol = protocol or MeasurementProtocol()
        self.batch_size = batch_size
        self.seed = int(seed)
        self.drift_threshold = float(drift_threshold)
        self.max_qc_retries = int(max_qc_retries)
        self.max_transient_retries = int(max_transient_retries)
        self.backoff_s = float(backoff_s)
        self.backoff_factor = float(backoff_factor)
        self.sleep = sleep
        if device_name is None:
            device_name = getattr(getattr(device, "profile", None), "name", None)
        if device_name is None:
            raise ValueError(
                "device has no .profile.name; pass device_name= explicitly"
            )
        self.device_name = device_name

    # ------------------------------------------------------------------ #
    # Identity
    # ------------------------------------------------------------------ #

    @property
    def n_batches(self) -> int:
        return (len(self.configs) + self.batch_size - 1) // self.batch_size

    def _batch_configs(self, index: int) -> List[ArchConfig]:
        lo = index * self.batch_size
        return self.configs[lo : lo + self.batch_size]

    def fingerprint(self) -> str:
        """Hash of everything that determines the campaign's shard bytes.

        Stored in the manifest; a resume against a directory whose
        fingerprint differs (different configs, seed, protocol, device,
        batching, or references) is refused rather than silently mixed.
        """
        payload = {
            "configs": [c.to_dict() for c in self.configs],
            "references": [c.to_dict() for c in self.references.configs],
            "protocol": self.protocol.to_dict(),
            "batch_size": self.batch_size,
            "seed": self.seed,
            "drift_threshold": self.drift_threshold,
            "max_qc_retries": self.max_qc_retries,
            "max_transient_retries": self.max_transient_retries,
            "device": self.device_name,
        }
        digest = hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode()
        )
        return digest.hexdigest()

    # ------------------------------------------------------------------ #
    # Measurement primitives
    # ------------------------------------------------------------------ #

    def _measure_one(
        self, config: ArchConfig, rng: np.random.Generator
    ) -> "tuple[float, int]":
        """One protocol latency with in-place transient retries.

        Returns ``(latency_s, retries_used)``; raises `CampaignError` once
        the transient budget is exhausted.
        """
        last_error: Optional[MeasurementError] = None
        for attempt in range(self.max_transient_retries + 1):
            try:
                return self.protocol.measure(self.device, config, rng=rng), attempt
            except MeasurementError as exc:
                last_error = exc
        raise CampaignError(
            f"measurement failed {self.max_transient_retries + 1} times in a row: "
            f"{last_error}"
        ) from last_error

    def _run_attempt(
        self, batch_index: int, attempt: int
    ) -> "tuple[List[LatencySample], List[float], AttemptRecord]":
        """Execute one attempt of one batch: configs, then references."""
        started = time.monotonic()
        rng = _attempt_rng(self.seed, batch_index + 1, attempt)
        if hasattr(self.device, "begin_session"):
            self.device.begin_session(rng)
        transient_retries = 0
        samples: List[LatencySample] = []
        for config in self._batch_configs(batch_index):
            latency, retries = self._measure_one(config, rng)
            transient_retries += retries
            samples.append(self._sample(config, latency, is_reference=False))
        ref_measured: List[float] = []
        for config in self.references.configs:
            latency, retries = self._measure_one(config, rng)
            transient_retries += retries
            ref_measured.append(latency)
        qc = self.references.check(ref_measured, self.drift_threshold)
        samples.extend(
            self._sample(c, m, is_reference=True)
            for c, m in zip(self.references.configs, ref_measured)
        )
        record = AttemptRecord(
            attempt=attempt,
            qc_passed=qc.passed,
            drifts=list(qc.drifts),
            max_drift=qc.max_drift,
            transient_retries=transient_retries,
            backoff_s=0.0,
            wall_clock_s=time.monotonic() - started,
        )
        return samples, ref_measured, record

    def _sample(
        self, config: ArchConfig, latency: float, *, is_reference: bool
    ) -> LatencySample:
        true_latency = None
        if hasattr(self.device, "true_latency"):
            true_latency = float(self.device.true_latency(config))
        return LatencySample(
            config=config,
            latency_s=float(latency),
            device=self.device_name,
            true_latency_s=true_latency,
            is_reference=is_reference,
        )

    def _run_batch(self, batch_index: int) -> "tuple[List[LatencySample], BatchRecord]":
        """Run a batch to QC verdict, re-executing with backoff on drift."""
        attempts: List[AttemptRecord] = []
        samples: List[LatencySample] = []
        for attempt in range(self.max_qc_retries + 1):
            samples, _, record = self._run_attempt(batch_index, attempt)
            if not record.qc_passed and attempt < self.max_qc_retries:
                backoff = self.backoff_s * self.backoff_factor**attempt
                if backoff > 0:
                    self.sleep(backoff)
                record = AttemptRecord(**{**record.to_dict(), "backoff_s": backoff})
            attempts.append(record)
            if record.qc_passed:
                break
        qc_passed = attempts[-1].qc_passed
        if not qc_passed:
            # Retry budget exhausted: keep the data, flag it, never drop it.
            samples = [
                LatencySample(**{**s.__dict__, "qc_passed": False}) for s in samples
            ]
        record = BatchRecord(
            index=batch_index,
            n_configs=len(self._batch_configs(batch_index)),
            attempts=attempts,
            qc_passed=qc_passed,
        )
        return samples, record

    # ------------------------------------------------------------------ #
    # Enrollment
    # ------------------------------------------------------------------ #

    def _enroll_references(self) -> None:
        rng = _attempt_rng(self.seed, _ENROLL_SLOT, 0)
        if hasattr(self.device, "begin_session"):
            self.device.begin_session(rng)
        self.references.enroll(
            lambda config: self._measure_one(config, rng)[0]
        )

    # ------------------------------------------------------------------ #
    # Manifest plumbing
    # ------------------------------------------------------------------ #

    def _fresh_manifest(self) -> dict:
        return {
            "manifest_version": MANIFEST_VERSION,
            "fingerprint": self.fingerprint(),
            "device": self.device_name,
            "seed": self.seed,
            "n_configs": len(self.configs),
            "batch_size": self.batch_size,
            "n_batches": self.n_batches,
            "protocol": self.protocol.to_dict(),
            "drift_threshold": self.drift_threshold,
            "max_qc_retries": self.max_qc_retries,
            "references": self.references.to_dict(),
            "batches": {},  # str(batch_index) -> BatchRecord dict
        }

    def _load_or_init_manifest(self) -> dict:
        manifest = self.store.load_manifest()
        if manifest is None:
            self.store.ensure_layout()
            manifest = self._fresh_manifest()
            if not self.references.enrolled:
                self._enroll_references()
            manifest["references"] = self.references.to_dict()
            self.store.save_manifest(manifest)
            return manifest
        if manifest.get("fingerprint") != self.fingerprint():
            raise CampaignError(
                f"campaign directory {self.store.root} belongs to a different "
                "campaign (fingerprint mismatch); refusing to mix shards"
            )
        stored = ReferenceSet.from_dict(manifest["references"])
        if not stored.enrolled:
            # Crash between mkdir and enrollment: enroll now.
            self._enroll_references()
            manifest["references"] = self.references.to_dict()
            self.store.save_manifest(manifest)
        else:
            self.references.baselines = stored.baselines
        return manifest

    # ------------------------------------------------------------------ #
    # The sweep
    # ------------------------------------------------------------------ #

    def run(self, max_batches: Optional[int] = None) -> CampaignResult:
        """Run (or resume) the campaign.

        ``max_batches`` bounds how many *pending* batches this call
        executes before returning — the hook tests use to interrupt a
        campaign mid-sweep; production callers leave it None.  The result
        always reflects every batch completed so far, by this process or a
        previous one.
        """
        started = time.monotonic()
        manifest = self._load_or_init_manifest()
        executed = 0
        for index in range(self.n_batches):
            key = str(index)
            recorded = manifest["batches"].get(key)
            if recorded is not None and self.store.has_shard(index):
                # Completed by an earlier process (or earlier call): skip.
                if not recorded.get("resumed"):
                    recorded["resumed"] = True
                continue
            if max_batches is not None and executed >= max_batches:
                break
            samples, record = self._run_batch(index)
            record.shard = self.store.write_shard(index, LatencyDataset(samples))
            manifest["batches"][key] = record.to_dict()
            self.store.save_manifest(manifest)
            executed += 1

        report = self._report(manifest)
        report.wall_clock_s = time.monotonic() - started
        report.save(self.store.report_path)
        dataset = LatencyDataset()
        for index in range(self.n_batches):
            if self.store.has_shard(index):
                dataset.extend(self.store.read_shard(index).samples)
        return CampaignResult(dataset=dataset, report=report)

    @property
    def complete(self) -> bool:
        manifest = self.store.load_manifest()
        if manifest is None:
            return False
        return all(
            str(i) in manifest["batches"] and self.store.has_shard(i)
            for i in range(self.n_batches)
        )

    def _report(self, manifest: dict) -> CampaignReport:
        batches = [
            BatchRecord.from_dict(manifest["batches"][key])
            for key in sorted(manifest["batches"], key=int)
        ]
        return CampaignReport(
            device=self.device_name,
            seed=self.seed,
            n_configs=len(self.configs),
            batch_size=self.batch_size,
            protocol=self.protocol.to_dict(),
            drift_threshold=self.drift_threshold,
            max_qc_retries=self.max_qc_retries,
            batches=batches,
        )
