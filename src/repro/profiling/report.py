"""Campaign bookkeeping: per-attempt / per-batch records and the report.

Everything the QC machinery decides — drifts, verdicts, retries, transient
failures, wall-clock — is recorded here, JSON-serialisable, and persisted
in the campaign manifest after every batch.  A `CampaignReport` is just
the rendered view of that manifest, so a resumed campaign reports the full
history, not only the batches the final process happened to run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Union

from ..utils import atomic_write_text

__all__ = [
    "AttemptRecord",
    "BatchRecord",
    "CampaignReport",
    "FleetHealth",
    "SessionHealth",
]


@dataclass(frozen=True)
class AttemptRecord:
    """One execution of one batch (the QC gate may demand several)."""

    attempt: int  # 0 = first execution, >0 = QC-triggered re-execution
    qc_passed: bool
    drifts: List[float]  # per-reference relative drift vs baseline
    max_drift: float
    transient_retries: int  # per-measurement error/timeout/garbage retries
    backoff_s: float  # sleep imposed *after* this attempt failed QC
    wall_clock_s: float

    def to_dict(self) -> dict:
        return {
            "attempt": self.attempt,
            "qc_passed": self.qc_passed,
            "drifts": list(self.drifts),
            "max_drift": self.max_drift,
            "transient_retries": self.transient_retries,
            "backoff_s": self.backoff_s,
            "wall_clock_s": self.wall_clock_s,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "AttemptRecord":
        return cls(
            attempt=int(d["attempt"]),
            qc_passed=bool(d["qc_passed"]),
            drifts=[float(x) for x in d["drifts"]],
            max_drift=float(d["max_drift"]),
            transient_retries=int(d["transient_retries"]),
            backoff_s=float(d.get("backoff_s", 0.0)),
            wall_clock_s=float(d["wall_clock_s"]),
        )


@dataclass
class BatchRecord:
    """Final state of one batch of the sweep."""

    index: int
    n_configs: int
    shard: Optional[str] = None  # shard filename relative to the campaign dir
    attempts: List[AttemptRecord] = field(default_factory=list)
    qc_passed: bool = True
    resumed: bool = False  # completed by an earlier process, skipped here

    # Fleet-only provenance: which device session finally completed the
    # batch and how many dispatches (including timed-out ones) it took.
    # None/1 on the serial and process-pool paths; written to JSON only
    # when a fleet actually produced them, so serial manifests are
    # byte-stable across this addition.
    session: Optional[int] = None
    dispatches: int = 1
    degraded: bool = False  # completed while the fleet was below quorum

    @property
    def n_attempts(self) -> int:
        return len(self.attempts)

    @property
    def qc_retries(self) -> int:
        """QC-triggered re-executions (attempts beyond the first)."""
        return max(0, self.n_attempts - 1)

    @property
    def transient_retries(self) -> int:
        return sum(a.transient_retries for a in self.attempts)

    @property
    def max_drift(self) -> float:
        return max((a.max_drift for a in self.attempts), default=0.0)

    @property
    def wall_clock_s(self) -> float:
        return sum(a.wall_clock_s for a in self.attempts)

    def to_dict(self) -> dict:
        d = {
            "index": self.index,
            "n_configs": self.n_configs,
            "shard": self.shard,
            "attempts": [a.to_dict() for a in self.attempts],
            "qc_passed": self.qc_passed,
            "resumed": self.resumed,
        }
        if self.session is not None:
            d["session"] = self.session
            d["dispatches"] = self.dispatches
        if self.degraded:
            d["degraded"] = True
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "BatchRecord":
        return cls(
            index=int(d["index"]),
            n_configs=int(d["n_configs"]),
            shard=d.get("shard"),
            attempts=[AttemptRecord.from_dict(a) for a in d.get("attempts", [])],
            qc_passed=bool(d.get("qc_passed", True)),
            resumed=bool(d.get("resumed", False)),
            session=d.get("session"),
            dispatches=int(d.get("dispatches", 1)),
            degraded=bool(d.get("degraded", False)),
        )


@dataclass
class SessionHealth:
    """The per-session line of a fleet campaign's health ledger."""

    session: int
    straggler_factor: float = 1.0  # wall-clock multiplier drawn at open
    breaker_state: str = "closed"  # closed | open | half_open | retired
    dispatches: int = 0  # batches handed to this session
    completions: int = 0  # batches it finished inside the deadline
    timeouts: int = 0  # dispatches killed at the deadline
    consecutive_failures: int = 0
    openings: int = 0  # times the circuit breaker tripped open
    busy_s: float = 0.0  # simulated seconds spent executing

    @property
    def retired(self) -> bool:
        return self.breaker_state == "retired"

    @property
    def straggler(self) -> bool:
        return self.straggler_factor != 1.0

    def to_dict(self) -> dict:
        return {
            "session": self.session,
            "straggler_factor": self.straggler_factor,
            "breaker_state": self.breaker_state,
            "dispatches": self.dispatches,
            "completions": self.completions,
            "timeouts": self.timeouts,
            "consecutive_failures": self.consecutive_failures,
            "openings": self.openings,
            "busy_s": self.busy_s,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "SessionHealth":
        return cls(
            session=int(d["session"]),
            straggler_factor=float(d.get("straggler_factor", 1.0)),
            breaker_state=str(d.get("breaker_state", "closed")),
            dispatches=int(d.get("dispatches", 0)),
            completions=int(d.get("completions", 0)),
            timeouts=int(d.get("timeouts", 0)),
            consecutive_failures=int(d.get("consecutive_failures", 0)),
            openings=int(d.get("openings", 0)),
            busy_s=float(d.get("busy_s", 0.0)),
        )


@dataclass
class FleetHealth:
    """What the fleet dispatcher did: sessions, quorum, degradation.

    ``qc_passed`` is the fleet-level verdict the issue tracker asks for:
    a campaign that had to finish below quorum completes — the data is
    all there, byte-identical to a serial run — but it is *flagged*, not
    silently blessed.
    """

    n_sessions: int
    quorum: int  # minimum live sessions for an unflagged campaign
    sessions: List[SessionHealth] = field(default_factory=list)
    redispatches: int = 0  # timed-out dispatches sent back to the queue
    degraded_batches: List[int] = field(default_factory=list)
    makespan_s: float = 0.0  # simulated fleet wall-clock (virtual time)

    @property
    def surviving(self) -> int:
        return sum(1 for s in self.sessions if not s.retired)

    @property
    def retired(self) -> List[int]:
        return [s.session for s in self.sessions if s.retired]

    @property
    def degraded(self) -> bool:
        return self.surviving < self.quorum

    @property
    def qc_passed(self) -> bool:
        return not self.degraded

    def to_dict(self) -> dict:
        return {
            "n_sessions": self.n_sessions,
            "quorum": self.quorum,
            "sessions": [s.to_dict() for s in self.sessions],
            "redispatches": self.redispatches,
            "degraded_batches": list(self.degraded_batches),
            "makespan_s": self.makespan_s,
            "surviving": self.surviving,
            "degraded": self.degraded,
            "qc_passed": self.qc_passed,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "FleetHealth":
        return cls(
            n_sessions=int(d["n_sessions"]),
            quorum=int(d["quorum"]),
            sessions=[SessionHealth.from_dict(s) for s in d.get("sessions", [])],
            redispatches=int(d.get("redispatches", 0)),
            degraded_batches=[int(i) for i in d.get("degraded_batches", [])],
            makespan_s=float(d.get("makespan_s", 0.0)),
        )

    def describe(self) -> str:
        """One line per session — the ledger `CampaignError` messages carry."""
        lines = [
            f"fleet health: {self.surviving}/{self.n_sessions} sessions "
            f"alive (quorum {self.quorum})"
        ]
        for s in self.sessions:
            tag = " straggler" if s.straggler else ""
            lines.append(
                f"  session {s.session}: {s.breaker_state}{tag} — "
                f"{s.completions}/{s.dispatches} completed, "
                f"{s.timeouts} timeouts, {s.openings} breaker openings"
            )
        return "\n".join(lines)


@dataclass
class CampaignReport:
    """Everything a campaign did, ready for JSON."""

    device: str
    seed: int
    n_configs: int
    batch_size: int
    protocol: dict
    drift_threshold: float
    max_qc_retries: int
    batches: List[BatchRecord] = field(default_factory=list)
    wall_clock_s: float = 0.0
    # Executor degradations survived mid-campaign (e.g. a process pool
    # whose workers died and whose pending batches fell back to serial).
    degradations: List[dict] = field(default_factory=list)
    fleet: Optional[FleetHealth] = None  # set by FleetRunner campaigns

    # ----------------------------- digests ----------------------------- #

    @property
    def n_batches(self) -> int:
        return len(self.batches)

    @property
    def total_qc_retries(self) -> int:
        return sum(b.qc_retries for b in self.batches)

    @property
    def total_transient_retries(self) -> int:
        return sum(b.transient_retries for b in self.batches)

    @property
    def n_qc_failed_batches(self) -> int:
        return sum(1 for b in self.batches if not b.qc_passed)

    @property
    def max_drift(self) -> float:
        return max((b.max_drift for b in self.batches), default=0.0)

    @property
    def all_qc_passed(self) -> bool:
        return all(b.qc_passed for b in self.batches)

    # --------------------------- persistence --------------------------- #

    def to_dict(self) -> dict:
        d = {
            "device": self.device,
            "seed": self.seed,
            "n_configs": self.n_configs,
            "batch_size": self.batch_size,
            "protocol": dict(self.protocol),
            "drift_threshold": self.drift_threshold,
            "max_qc_retries": self.max_qc_retries,
            "batches": [b.to_dict() for b in self.batches],
            "wall_clock_s": self.wall_clock_s,
            "summary": {
                "n_batches": self.n_batches,
                "total_qc_retries": self.total_qc_retries,
                "total_transient_retries": self.total_transient_retries,
                "n_qc_failed_batches": self.n_qc_failed_batches,
                "max_drift": self.max_drift,
                "all_qc_passed": self.all_qc_passed,
            },
        }
        # Written only when present, so pre-fleet reports round-trip
        # byte-for-byte.
        if self.degradations:
            d["degradations"] = [dict(x) for x in self.degradations]
        if self.fleet is not None:
            d["fleet"] = self.fleet.to_dict()
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "CampaignReport":
        return cls(
            device=str(d["device"]),
            seed=int(d["seed"]),
            n_configs=int(d["n_configs"]),
            batch_size=int(d["batch_size"]),
            protocol=dict(d["protocol"]),
            drift_threshold=float(d["drift_threshold"]),
            max_qc_retries=int(d["max_qc_retries"]),
            batches=[BatchRecord.from_dict(b) for b in d.get("batches", [])],
            wall_clock_s=float(d.get("wall_clock_s", 0.0)),
            degradations=[dict(x) for x in d.get("degradations", [])],
            fleet=(
                FleetHealth.from_dict(d["fleet"]) if d.get("fleet") else None
            ),
        )

    def save(self, path: Union[str, Path]) -> None:
        atomic_write_text(path, json.dumps(self.to_dict(), indent=2))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "CampaignReport":
        return cls.from_dict(json.loads(Path(path).read_text()))
