"""Campaign bookkeeping: per-attempt / per-batch records and the report.

Everything the QC machinery decides — drifts, verdicts, retries, transient
failures, wall-clock — is recorded here, JSON-serialisable, and persisted
in the campaign manifest after every batch.  A `CampaignReport` is just
the rendered view of that manifest, so a resumed campaign reports the full
history, not only the batches the final process happened to run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Union

from ..utils import atomic_write_text

__all__ = ["AttemptRecord", "BatchRecord", "CampaignReport"]


@dataclass(frozen=True)
class AttemptRecord:
    """One execution of one batch (the QC gate may demand several)."""

    attempt: int  # 0 = first execution, >0 = QC-triggered re-execution
    qc_passed: bool
    drifts: List[float]  # per-reference relative drift vs baseline
    max_drift: float
    transient_retries: int  # per-measurement error/timeout/garbage retries
    backoff_s: float  # sleep imposed *after* this attempt failed QC
    wall_clock_s: float

    def to_dict(self) -> dict:
        return {
            "attempt": self.attempt,
            "qc_passed": self.qc_passed,
            "drifts": list(self.drifts),
            "max_drift": self.max_drift,
            "transient_retries": self.transient_retries,
            "backoff_s": self.backoff_s,
            "wall_clock_s": self.wall_clock_s,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "AttemptRecord":
        return cls(
            attempt=int(d["attempt"]),
            qc_passed=bool(d["qc_passed"]),
            drifts=[float(x) for x in d["drifts"]],
            max_drift=float(d["max_drift"]),
            transient_retries=int(d["transient_retries"]),
            backoff_s=float(d.get("backoff_s", 0.0)),
            wall_clock_s=float(d["wall_clock_s"]),
        )


@dataclass
class BatchRecord:
    """Final state of one batch of the sweep."""

    index: int
    n_configs: int
    shard: Optional[str] = None  # shard filename relative to the campaign dir
    attempts: List[AttemptRecord] = field(default_factory=list)
    qc_passed: bool = True
    resumed: bool = False  # completed by an earlier process, skipped here

    @property
    def n_attempts(self) -> int:
        return len(self.attempts)

    @property
    def qc_retries(self) -> int:
        """QC-triggered re-executions (attempts beyond the first)."""
        return max(0, self.n_attempts - 1)

    @property
    def transient_retries(self) -> int:
        return sum(a.transient_retries for a in self.attempts)

    @property
    def max_drift(self) -> float:
        return max((a.max_drift for a in self.attempts), default=0.0)

    @property
    def wall_clock_s(self) -> float:
        return sum(a.wall_clock_s for a in self.attempts)

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "n_configs": self.n_configs,
            "shard": self.shard,
            "attempts": [a.to_dict() for a in self.attempts],
            "qc_passed": self.qc_passed,
            "resumed": self.resumed,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "BatchRecord":
        return cls(
            index=int(d["index"]),
            n_configs=int(d["n_configs"]),
            shard=d.get("shard"),
            attempts=[AttemptRecord.from_dict(a) for a in d.get("attempts", [])],
            qc_passed=bool(d.get("qc_passed", True)),
            resumed=bool(d.get("resumed", False)),
        )


@dataclass
class CampaignReport:
    """Everything a campaign did, ready for JSON."""

    device: str
    seed: int
    n_configs: int
    batch_size: int
    protocol: dict
    drift_threshold: float
    max_qc_retries: int
    batches: List[BatchRecord] = field(default_factory=list)
    wall_clock_s: float = 0.0

    # ----------------------------- digests ----------------------------- #

    @property
    def n_batches(self) -> int:
        return len(self.batches)

    @property
    def total_qc_retries(self) -> int:
        return sum(b.qc_retries for b in self.batches)

    @property
    def total_transient_retries(self) -> int:
        return sum(b.transient_retries for b in self.batches)

    @property
    def n_qc_failed_batches(self) -> int:
        return sum(1 for b in self.batches if not b.qc_passed)

    @property
    def max_drift(self) -> float:
        return max((b.max_drift for b in self.batches), default=0.0)

    @property
    def all_qc_passed(self) -> bool:
        return all(b.qc_passed for b in self.batches)

    # --------------------------- persistence --------------------------- #

    def to_dict(self) -> dict:
        return {
            "device": self.device,
            "seed": self.seed,
            "n_configs": self.n_configs,
            "batch_size": self.batch_size,
            "protocol": dict(self.protocol),
            "drift_threshold": self.drift_threshold,
            "max_qc_retries": self.max_qc_retries,
            "batches": [b.to_dict() for b in self.batches],
            "wall_clock_s": self.wall_clock_s,
            "summary": {
                "n_batches": self.n_batches,
                "total_qc_retries": self.total_qc_retries,
                "total_transient_retries": self.total_transient_retries,
                "n_qc_failed_batches": self.n_qc_failed_batches,
                "max_drift": self.max_drift,
                "all_qc_passed": self.all_qc_passed,
            },
        }

    @classmethod
    def from_dict(cls, d: dict) -> "CampaignReport":
        return cls(
            device=str(d["device"]),
            seed=int(d["seed"]),
            n_configs=int(d["n_configs"]),
            batch_size=int(d["batch_size"]),
            protocol=dict(d["protocol"]),
            drift_threshold=float(d["drift_threshold"]),
            max_qc_retries=int(d["max_qc_retries"]),
            batches=[BatchRecord.from_dict(b) for b in d.get("batches", [])],
            wall_clock_s=float(d.get("wall_clock_s", 0.0)),
        )

    def save(self, path: Union[str, Path]) -> None:
        atomic_write_text(path, json.dumps(self.to_dict(), indent=2))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "CampaignReport":
        return cls.from_dict(json.loads(Path(path).read_text()))
