"""The paper's measurement protocol as a first-class, configurable object.

Section IV of the paper fixes one protocol for every latency number it
reports: run each architecture 150 times, discard the fastest and slowest
20% of runs, and average the middle 60%.  `MeasurementProtocol` lifts
those constants out of `SimulatedDevice.measure_latency` (which now
delegates here) so campaigns can tighten or relax the protocol — fewer
runs for cheap screening sweeps, a warm-up discard for devices whose
transient the trim cannot absorb — without forking the measurement code.

The protocol also owns trace *validation*: a trace containing NaNs,
infinities, or non-positive latencies is not a measurement, it is a fault,
and surfaces as `MeasurementError` so the campaign retry logic can treat
it like any other transient failure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..hardware.errors import MeasurementError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..archspace.config import ArchConfig

__all__ = ["MeasurementProtocol"]


@dataclass(frozen=True)
class MeasurementProtocol:
    """How one latency number is produced from repeated runs.

    ``runs``
        Consecutive timed iterations per measurement (paper: 150).
    ``trim_fraction``
        Fraction of runs discarded from *each* tail after sorting
        (paper: 0.2, keeping the middle 60%; 0.5 keeps the median for odd
        run counts).  When the trim would leave nothing
        (``runs - 2 * floor(trim_fraction * runs) < 1``) the full trace is
        averaged instead.
    ``warmup_discard``
        Leading iterations dropped before any statistics, for hardware
        whose cold-start transient is too large for the trim to absorb.
        The default 0 matches the paper, whose trim already swallows the
        warm-up on its devices.
    """

    runs: int = 150
    trim_fraction: float = 0.2
    warmup_discard: int = 0

    def __post_init__(self) -> None:
        if self.runs < 1:
            raise ValueError("runs must be >= 1")
        if not 0.0 <= self.trim_fraction <= 0.5:
            raise ValueError("trim_fraction must be in [0, 0.5]")
        if not 0 <= self.warmup_discard < self.runs:
            raise ValueError("warmup_discard must be in [0, runs)")

    # ------------------------------------------------------------------ #
    # Trace statistics
    # ------------------------------------------------------------------ #

    def validate_trace(self, trace: np.ndarray) -> np.ndarray:
        """Return ``trace`` as a float array, or raise `MeasurementError`.

        A healthy trace is one-dimensional, finite, and strictly positive;
        anything else (NaN poisoning, negative garbage, an empty buffer) is
        a fault, not a datum.
        """
        trace = np.asarray(trace, dtype=float)
        if trace.ndim != 1 or trace.size == 0:
            raise MeasurementError(
                f"expected a non-empty 1-d latency trace, got shape {trace.shape}"
            )
        if not np.isfinite(trace).all():
            bad = int(np.count_nonzero(~np.isfinite(trace)))
            raise MeasurementError(
                f"latency trace contains {bad} non-finite value(s)"
            )
        if (trace <= 0).any():
            bad = int(np.count_nonzero(trace <= 0))
            raise MeasurementError(
                f"latency trace contains {bad} non-positive value(s)"
            )
        return trace

    def trimmed_mean(self, trace: np.ndarray) -> float:
        """Collapse a raw trace to one latency under this protocol."""
        trace = self.validate_trace(trace)
        if self.warmup_discard and trace.size > self.warmup_discard:
            trace = trace[self.warmup_discard :]
        ordered = np.sort(trace)
        n = ordered.size
        cut = int(np.floor(self.trim_fraction * n))
        kept = ordered[cut : n - cut] if n - 2 * cut >= 1 else ordered
        return float(kept.mean())

    def measure(
        self,
        device,
        target: "ArchConfig",
        rng: "int | np.random.Generator | None" = None,
    ) -> float:
        """One protocol-governed latency of ``target`` on ``device``.

        ``device`` is anything with the raw-trace API
        (``measure(target, runs, rng) -> ndarray``): a `SimulatedDevice`,
        a `FaultyDevice` wrapper, or eventually a real-hardware driver.
        """
        trace = device.measure(target, runs=self.runs, rng=rng)
        return self.trimmed_mean(trace)

    # ------------------------------------------------------------------ #
    # Persistence (campaign manifests)
    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict:
        return {
            "runs": self.runs,
            "trim_fraction": self.trim_fraction,
            "warmup_discard": self.warmup_discard,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "MeasurementProtocol":
        return cls(
            runs=int(d["runs"]),
            trim_fraction=float(d["trim_fraction"]),
            warmup_discard=int(d.get("warmup_discard", 0)),
        )
