"""Injectable clocks: real time for production, virtual time for tests.

Two families live here:

* The synchronous `Clock` protocol (``monotonic()`` + ``sleep()``) used by
  `CampaignRunner` for QC-retry backoff.  `SystemClock` is the production
  implementation; `FakeClock` advances a virtual now() instead of
  sleeping and records every requested sleep, so retry/backoff tests run
  in microseconds and can assert the exact schedule.

* The asynchronous clocks used by the fleet dispatcher
  (`repro.profiling.fleet`).  `AsyncSystemClock` delegates to
  ``asyncio.sleep``.  `VirtualClock` is a deterministic discrete-event
  clock: coroutines register as *participants*, and whenever every
  participant is parked in ``sleep()`` the clock wakes exactly one — the
  earliest ``(wake_time, arrival_order)`` — and advances virtual time to
  it.  Scheduling therefore depends only on the durations the dispatcher
  computes (which are seeded), never on host load, so an entire fleet
  campaign with stragglers, deadlines, and circuit-breaker cooldowns
  replays identically on every machine.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
import time
from typing import List, Protocol, Tuple, runtime_checkable

__all__ = [
    "AsyncSystemClock",
    "Clock",
    "FakeClock",
    "SystemClock",
    "VirtualClock",
]


@runtime_checkable
class Clock(Protocol):
    """What the synchronous retry machinery needs from a clock."""

    def monotonic(self) -> float: ...  # pragma: no cover - protocol

    def sleep(self, seconds: float) -> None: ...  # pragma: no cover


class SystemClock:
    """The real wall clock."""

    @staticmethod
    def monotonic() -> float:
        return time.monotonic()

    @staticmethod
    def sleep(seconds: float) -> None:
        time.sleep(seconds)


class FakeClock:
    """A virtual synchronous clock: sleeps advance time instead of passing it."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self.sleeps: List[float] = []  # every duration requested, in order

    def monotonic(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        self.sleeps.append(float(seconds))
        self._now += max(0.0, float(seconds))


class AsyncSystemClock:
    """Real time for a fleet dispatched against actual hardware."""

    @staticmethod
    def now() -> float:
        return time.monotonic()

    @staticmethod
    async def sleep(seconds: float) -> None:
        await asyncio.sleep(max(0.0, seconds))

    # Participant bookkeeping is a virtual-clock concept; real time flows
    # whether or not anyone is watching.
    def add_participant(self) -> None:
        pass

    def remove_participant(self) -> None:
        pass


class VirtualClock:
    """Deterministic discrete-event time for asyncio coroutines.

    Every coroutine that may block on this clock must bracket its life
    with ``add_participant()`` / ``remove_participant()``.  ``sleep``
    parks the caller; once *all* registered participants are parked (or
    deregistered), the earliest sleeper is woken and ``now()`` jumps to
    its wake time.  Ties break on arrival order, so the interleaving is a
    pure function of the requested durations.

    The non-obvious invariant: a participant doing synchronous work
    between awaits blocks every advance (it is active, not sleeping),
    which is exactly the semantics of a single-threaded event loop — the
    virtual clock never runs ahead of computation it should have waited
    for.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._heap: List[Tuple[float, int, asyncio.Future]] = []
        self._seq = itertools.count()
        self._participants = 0
        self._sleeping = 0

    def now(self) -> float:
        return self._now

    def add_participant(self) -> None:
        self._participants += 1

    def remove_participant(self) -> None:
        if self._participants <= 0:
            raise RuntimeError("remove_participant without add_participant")
        self._participants -= 1
        self._maybe_advance()

    async def sleep(self, seconds: float) -> None:
        future = asyncio.get_running_loop().create_future()
        wake = self._now + max(0.0, float(seconds))
        heapq.heappush(self._heap, (wake, next(self._seq), future))
        self._sleeping += 1
        self._maybe_advance()
        await future

    def _maybe_advance(self) -> None:
        """Wake the earliest sleeper iff every participant is parked.

        Exactly one sleeper wakes per advance: its future resolves, the
        event loop runs it until its next await, and only then (when all
        participants are parked again) does time move on.
        """
        if not self._heap:
            return
        if self._participants == 0 or self._sleeping < self._participants:
            return
        wake, _, future = heapq.heappop(self._heap)
        self._now = max(self._now, wake)
        self._sleeping -= 1
        if not future.cancelled():
            future.set_result(None)
