"""On-disk layout of a measurement campaign: shards + manifest.

A campaign directory looks like::

    campaign_dir/
      manifest.json            # config fingerprint, baselines, batch records
      report.json              # final CampaignReport (rewritten every run)
      shards/
        batch-0000.json        # completed batches, LatencyDataset schema
        batch-0001.json
        ...

Every write is atomic (temp file + `os.replace` via
`repro.utils.atomic_write_text`), and the manifest is only updated *after*
its batch's shard is durably in place.  A campaign killed at any point
therefore leaves a directory from which `CampaignRunner` resumes without
re-measuring a single completed batch, and without ever reading a
half-written file.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Union

from ..data.dataset import DatasetError, LatencyDataset
from ..utils import atomic_write_text

__all__ = ["CampaignStore", "MANIFEST_VERSION"]

MANIFEST_VERSION = 1


class CampaignStore:
    """Paths and atomic IO for one campaign directory."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.shard_dir = self.root / "shards"
        self.manifest_path = self.root / "manifest.json"
        self.report_path = self.root / "report.json"

    def ensure_layout(self) -> None:
        self.shard_dir.mkdir(parents=True, exist_ok=True)

    # ----------------------------- manifest ---------------------------- #

    def load_manifest(self) -> Optional[dict]:
        """The manifest dict, or None for a fresh campaign directory."""
        if not self.manifest_path.exists():
            return None
        try:
            manifest = json.loads(self.manifest_path.read_text())
        except json.JSONDecodeError as exc:
            raise DatasetError(
                f"campaign manifest {self.manifest_path} is not valid JSON: {exc}"
            ) from exc
        version = manifest.get("manifest_version")
        if version != MANIFEST_VERSION:
            raise DatasetError(
                f"campaign manifest {self.manifest_path} has unsupported "
                f"manifest_version {version!r} (expected {MANIFEST_VERSION})"
            )
        return manifest

    def save_manifest(self, manifest: dict) -> None:
        atomic_write_text(self.manifest_path, json.dumps(manifest, indent=2))

    # ------------------------------ shards ----------------------------- #

    def shard_name(self, index: int) -> str:
        return f"shards/batch-{index:04d}.json"

    def shard_path(self, index: int) -> Path:
        return self.root / self.shard_name(index)

    def has_shard(self, index: int) -> bool:
        return self.shard_path(index).exists()

    def write_shard(self, index: int, dataset: LatencyDataset) -> str:
        """Persist one completed batch; returns the manifest-relative name."""
        self.ensure_layout()
        dataset.save(self.shard_path(index))
        return self.shard_name(index)

    def read_shard(self, index: int) -> LatencyDataset:
        return LatencyDataset.load(self.shard_path(index))
