"""Paired-sample campaigns: the same configs measured on two devices.

Cross-device transfer (``repro.transfer``) learns its monotone latency
map from *pairs*: one architecture, one latency on the proxy device, one
on the target.  `measure_paired` produces exactly that — the identical
config list measured on both devices — in two flavours:

* **direct** (default): one `measure_batch` per device on seed-derived
  streams.  Fast, in-memory, deterministic; what the budget-sweep
  experiments use.
* **campaign** (``workdir=`` given): one checkpointed, QC'd
  `CampaignRunner` per device under ``workdir/proxy`` and
  ``workdir/target``.  Slower, but inherits the full fault-tolerance
  story — drift gates, retries, byte-identical resume after a kill.

Either way the result is a `PairedMeasurementSet`: aligned latency
arrays, ``prefix(n)`` views for nested budget sweeps (budget 25 is
literally the first 25 pairs of budget 100 — how a real lab would grow a
paired sample), versioned JSON persistence, and `LatencyDataset` views
for anything downstream that speaks datasets.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..archspace.config import ArchConfig
from ..archspace.spaces import SpaceSpec
from ..data.dataset import LatencyDataset, LatencySample
from ..utils import atomic_write_text
from .protocol import MeasurementProtocol
from .reference import ReferenceSet

__all__ = ["PairedMeasurementSet", "measure_paired", "PAIRED_FORMAT_VERSION"]

PAIRED_FORMAT_VERSION = 1
_KIND = "paired_measurements"

# Seed slots separating the paired streams from everything else.
_SLOT_PAIRED = 0x9A17
_SLOT_PROXY = 0
_SLOT_TARGET = 1
_SLOT_REFERENCES = 2


@dataclass(frozen=True)
class PairedMeasurementSet:
    """Aligned (proxy, target) latencies for one shared config list."""

    configs: Tuple[ArchConfig, ...]
    proxy_device: str
    target_device: str
    proxy_latencies: np.ndarray
    target_latencies: np.ndarray
    # Noise-free analytical ground truth, when the devices expose it
    # (simulators do; real hardware would leave these None).
    proxy_true: Optional[np.ndarray] = None
    target_true: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        n = len(self.configs)
        for name in ("proxy_latencies", "target_latencies"):
            arr = np.asarray(getattr(self, name), dtype=float).reshape(-1)
            object.__setattr__(self, name, arr)
            if arr.size != n:
                raise ValueError(
                    f"{name} has {arr.size} values for {n} configs"
                )
        for name in ("proxy_true", "target_true"):
            val = getattr(self, name)
            if val is not None:
                arr = np.asarray(val, dtype=float).reshape(-1)
                object.__setattr__(self, name, arr)
                if arr.size != n:
                    raise ValueError(
                        f"{name} has {arr.size} values for {n} configs"
                    )
        object.__setattr__(self, "configs", tuple(self.configs))

    def __len__(self) -> int:
        return len(self.configs)

    def prefix(self, n: int) -> "PairedMeasurementSet":
        """The first ``n`` pairs — nested budget views for sweeps."""
        if not 0 < n <= len(self):
            raise ValueError(
                f"prefix size must be in [1, {len(self)}], got {n}"
            )
        return PairedMeasurementSet(
            configs=self.configs[:n],
            proxy_device=self.proxy_device,
            target_device=self.target_device,
            proxy_latencies=self.proxy_latencies[:n],
            target_latencies=self.target_latencies[:n],
            proxy_true=None if self.proxy_true is None else self.proxy_true[:n],
            target_true=(
                None if self.target_true is None else self.target_true[:n]
            ),
        )

    def datasets(self) -> Tuple[LatencyDataset, LatencyDataset]:
        """``(proxy, target)`` `LatencyDataset` views of the pairs."""

        def build(device: str, measured, true) -> LatencyDataset:
            return LatencyDataset(
                [
                    LatencySample(
                        config=c,
                        latency_s=float(m),
                        device=device,
                        true_latency_s=(
                            None if true is None else float(true[i])
                        ),
                    )
                    for i, (c, m) in enumerate(zip(self.configs, measured))
                ]
            )

        return (
            build(self.proxy_device, self.proxy_latencies, self.proxy_true),
            build(self.target_device, self.target_latencies, self.target_true),
        )

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict:
        return {
            "format_version": PAIRED_FORMAT_VERSION,
            "kind": _KIND,
            "proxy_device": self.proxy_device,
            "target_device": self.target_device,
            "configs": [c.to_dict() for c in self.configs],
            "proxy_latencies": self.proxy_latencies.tolist(),
            "target_latencies": self.target_latencies.tolist(),
            "proxy_true": (
                None if self.proxy_true is None else self.proxy_true.tolist()
            ),
            "target_true": (
                None if self.target_true is None else self.target_true.tolist()
            ),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "PairedMeasurementSet":
        version = d.get("format_version")
        if version != PAIRED_FORMAT_VERSION:
            raise ValueError(
                f"paired payload has format_version {version!r} "
                f"(expected {PAIRED_FORMAT_VERSION})"
            )
        if d.get("kind") != _KIND:
            raise ValueError(
                f"payload holds kind {d.get('kind')!r}, expected {_KIND!r}"
            )
        return cls(
            configs=tuple(ArchConfig.from_dict(c) for c in d["configs"]),
            proxy_device=str(d["proxy_device"]),
            target_device=str(d["target_device"]),
            proxy_latencies=np.asarray(d["proxy_latencies"], dtype=float),
            target_latencies=np.asarray(d["target_latencies"], dtype=float),
            proxy_true=(
                None
                if d.get("proxy_true") is None
                else np.asarray(d["proxy_true"], dtype=float)
            ),
            target_true=(
                None
                if d.get("target_true") is None
                else np.asarray(d["target_true"], dtype=float)
            ),
        )

    def save(self, path: Union[str, Path]) -> None:
        atomic_write_text(path, json.dumps(self.to_dict()))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "PairedMeasurementSet":
        path = Path(path)
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            raise ValueError(f"paired file {path} does not exist") from None
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"paired file {path} is not valid JSON: {exc}"
            ) from exc
        try:
            return cls.from_dict(payload)
        except ValueError as exc:
            raise ValueError(f"paired file {path}: {exc}") from None


def _as_device(device, seed: int):
    if isinstance(device, str):
        # Imported here: `hardware.simulator` itself imports this
        # package's `protocol` module, so a top-level import would cycle.
        from ..hardware.simulator import SimulatedDevice

        return SimulatedDevice(device, seed=seed)
    return device


def _device_name(device) -> str:
    name = getattr(getattr(device, "profile", None), "name", None)
    if name is None:
        raise ValueError("device has no .profile.name; pass a registry name")
    return name


def measure_paired(
    configs: Sequence[ArchConfig],
    proxy_device,
    target_device,
    *,
    protocol: Optional[MeasurementProtocol] = None,
    seed: int = 0,
    workdir: Optional[Union[str, Path]] = None,
    spec: Optional[SpaceSpec] = None,
    n_references: int = 2,
    batch_size: int = 25,
) -> PairedMeasurementSet:
    """Measure ``configs`` on both devices; see the module docstring.

    Devices are registry names or instances.  Without ``workdir`` the
    measurement is direct (`measure_batch` per device on seed-derived
    streams); with it, each side runs a full checkpointed `CampaignRunner`
    under ``workdir/proxy`` / ``workdir/target`` (``spec`` is then
    required, for the QC reference models).  Both modes are deterministic
    in ``(configs, seed)``; the campaign mode additionally resumes a
    killed run byte-identically.
    """
    configs = list(configs)
    if not configs:
        raise ValueError("paired measurement needs at least one config")
    proxy = _as_device(proxy_device, seed)
    target = _as_device(target_device, seed)
    protocol = protocol or MeasurementProtocol()

    if workdir is None:
        proxy_lat, proxy_true = proxy.measure_batch(
            configs,
            rng=np.random.default_rng([seed, _SLOT_PAIRED, _SLOT_PROXY]),
            protocol=protocol,
        )
        target_lat, target_true = target.measure_batch(
            configs,
            rng=np.random.default_rng([seed, _SLOT_PAIRED, _SLOT_TARGET]),
            protocol=protocol,
        )
        return PairedMeasurementSet(
            configs=tuple(configs),
            proxy_device=_device_name(proxy),
            target_device=_device_name(target),
            proxy_latencies=proxy_lat,
            target_latencies=target_lat,
            proxy_true=proxy_true,
            target_true=target_true,
        )

    if spec is None:
        raise ValueError(
            "campaign-mode paired measurement (workdir=...) needs spec= "
            "for the QC reference models"
        )
    from .campaign import CampaignRunner

    workdir = Path(workdir)
    references = ReferenceSet.from_space(
        spec,
        k=n_references,
        rng=np.random.default_rng([seed, _SLOT_PAIRED, _SLOT_REFERENCES]),
    )
    sides = {}
    for slot, (label, device) in enumerate(
        (("proxy", proxy), ("target", target))
    ):
        campaign_seed = int(
            np.random.default_rng([seed, _SLOT_PAIRED, 10 + slot]).integers(
                2**31 - 1
            )
        )
        result = CampaignRunner(
            device,
            configs,
            workdir / label,
            references,
            protocol=protocol,
            batch_size=batch_size,
            seed=campaign_seed,
            sleep=lambda s: None,
        ).run()
        sides[label] = result.measurements
    proxy_ds: LatencyDataset = sides["proxy"]
    target_ds: LatencyDataset = sides["target"]

    def _true_or_none(ds: LatencyDataset) -> Optional[np.ndarray]:
        values: List[Optional[float]] = [s.true_latency_s for s in ds]
        if any(v is None for v in values):
            return None
        return np.array(values, dtype=float)

    return PairedMeasurementSet(
        configs=tuple(configs),
        proxy_device=_device_name(proxy),
        target_device=_device_name(target),
        proxy_latencies=proxy_ds.latencies,
        target_latencies=target_ds.latencies,
        proxy_true=_true_or_none(proxy_ds),
        target_true=_true_or_none(target_ds),
    )
