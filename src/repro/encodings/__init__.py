"""Encoding registry: look up encodings by name, HAT/OFA-style."""

from typing import TYPE_CHECKING, Dict, Tuple, Type, Union

from .encoders import (
    Encoding,
    FCCEncoding,
    FCEncoding,
    FeatureEncoding,
    OneHotEncoding,
    StatisticalEncoding,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..archspace.spaces import SpaceSpec

__all__ = [
    "Encoding",
    "OneHotEncoding",
    "FeatureEncoding",
    "StatisticalEncoding",
    "FCEncoding",
    "FCCEncoding",
    "ENCODINGS",
    "get_encoding",
    "list_encodings",
    "encoder_for",
    "clear_encoder_cache",
]

ENCODINGS: Dict[str, Type[Encoding]] = {
    cls.name: cls
    for cls in (
        OneHotEncoding,
        FeatureEncoding,
        StatisticalEncoding,
        FCEncoding,
        FCCEncoding,
    )
}


def get_encoding(name: str) -> Encoding:
    """Instantiate an encoding by registry name."""
    try:
        return ENCODINGS[name]()
    except KeyError:
        raise KeyError(
            f"unknown encoding {name!r}; available: {', '.join(ENCODINGS)}"
        ) from None


def list_encodings() -> Tuple[str, ...]:
    """Names of all registered encodings."""
    return tuple(ENCODINGS)


# (encoding name, spec) -> shared encoder instance.  Encoders are
# stateless, so one instance per pair can serve every caller; what the
# cache actually buys is that per-spec derived state (the `_BlockTable`
# lookup tables) stays warm instead of being rebuilt per call.
_ENCODER_CACHE: Dict[Tuple[str, "SpaceSpec"], Encoding] = {}


def encoder_for(encoding: Union[str, Encoding], spec: "SpaceSpec") -> Encoding:
    """Get-or-create the shared encoder for ``(encoding, spec)``.

    Accepts a registry name (cached per ``(name, spec)``) or an existing
    `Encoding` instance (returned as-is, so callers holding a custom
    encoder keep it).  The serve path and the experiment CLIs funnel
    through here so repeated encode calls against the same space reuse
    one encoder instead of constructing one per request.
    """
    if isinstance(encoding, Encoding):
        return encoding
    key = (encoding, spec)
    try:
        return _ENCODER_CACHE[key]
    except KeyError:
        _ENCODER_CACHE[key] = get_encoding(encoding)
        return _ENCODER_CACHE[key]


def clear_encoder_cache() -> None:
    """Drop every cached encoder instance (mainly for tests)."""
    _ENCODER_CACHE.clear()
