"""Encoding registry: look up encodings by name, HAT/OFA-style."""

from typing import Dict, Tuple, Type

from .encoders import (
    Encoding,
    FCCEncoding,
    FCEncoding,
    FeatureEncoding,
    OneHotEncoding,
    StatisticalEncoding,
)

__all__ = [
    "Encoding",
    "OneHotEncoding",
    "FeatureEncoding",
    "StatisticalEncoding",
    "FCEncoding",
    "FCCEncoding",
    "ENCODINGS",
    "get_encoding",
    "list_encodings",
]

ENCODINGS: Dict[str, Type[Encoding]] = {
    cls.name: cls
    for cls in (
        OneHotEncoding,
        FeatureEncoding,
        StatisticalEncoding,
        FCEncoding,
        FCCEncoding,
    )
}


def get_encoding(name: str) -> Encoding:
    """Instantiate an encoding by registry name."""
    try:
        return ENCODINGS[name]()
    except KeyError:
        raise KeyError(
            f"unknown encoding {name!r}; available: {', '.join(ENCODINGS)}"
        ) from None


def list_encodings() -> Tuple[str, ...]:
    """Names of all registered encodings."""
    return tuple(ENCODINGS)
