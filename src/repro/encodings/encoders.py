"""Architecture encodings: the paper's FCC/FC plus the SoTA baselines.

Every encoding maps an `ArchConfig` to a fixed-length float vector whose
length depends only on the `SpaceSpec`:

* **onehot** — per-unit depth one-hot plus a one-hot over the joint
  (kernel, expand) choice for every block slot (zeros where absent).
  Injective but very long.
* **feature** — per-unit normalised depth plus normalised (kernel, expand)
  numerics per block slot.
* **statistical** — HAT-style summary: per unit ``[depth, mean_k, std_k,
  mean_e, std_e]``.  Collapses the joint (kernel, expand) distribution to
  marginal moments, so configurations with very different latencies can
  collide.
* **fc** (paper) — per-unit *marginal* counts of each kernel value and
  each expand value.
* **fcc** (paper) — per-unit counts of each *joint* (kernel, expand)
  combination; keeps exactly the information a block-additive latency
  function needs.

Families without an expansion dimension (DenseNet) are handled by treating
``expand_ratio=None`` as a single dummy choice.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..archspace.config import ArchConfig
from ..archspace.spaces import SpaceSpec

__all__ = [
    "Encoding",
    "OneHotEncoding",
    "FeatureEncoding",
    "StatisticalEncoding",
    "FCEncoding",
    "FCCEncoding",
]


def _expand_choices(spec: SpaceSpec) -> Tuple[Optional[float], ...]:
    return spec.expand_choices if spec.expand_choices is not None else (None,)


class Encoding:
    """Base class: subclasses implement `length` and `encode`."""

    name: str = "base"

    def length(self, spec: SpaceSpec) -> int:
        raise NotImplementedError

    def encode(self, config: ArchConfig, spec: SpaceSpec) -> np.ndarray:
        raise NotImplementedError

    def encode_batch(self, configs: Sequence[ArchConfig], spec: SpaceSpec) -> np.ndarray:
        """Stack per-config vectors into an ``(n, length)`` matrix."""
        out = np.zeros((len(configs), self.length(spec)))
        for i, config in enumerate(configs):
            out[i] = self.encode(config, spec)
        return out

    def _check(self, config: ArchConfig, spec: SpaceSpec) -> None:
        if not spec.contains(config):
            raise ValueError(
                f"config (family={config.family!r}) is not a member of the "
                f"{spec.family!r} space"
            )


class OneHotEncoding(Encoding):
    name = "onehot"

    def length(self, spec: SpaceSpec) -> int:
        n_joint = len(spec.kernel_choices) * len(_expand_choices(spec))
        return spec.num_units * (len(spec.depth_choices) + spec.max_depth * n_joint)

    def encode(self, config: ArchConfig, spec: SpaceSpec) -> np.ndarray:
        self._check(config, spec)
        expands = _expand_choices(spec)
        n_joint = len(spec.kernel_choices) * len(expands)
        unit_len = len(spec.depth_choices) + spec.max_depth * n_joint
        vec = np.zeros(self.length(spec))
        for u, blocks in enumerate(config.units):
            base = u * unit_len
            vec[base + spec.depth_choices.index(len(blocks))] = 1.0
            for b, block in enumerate(blocks):
                joint = spec.kernel_choices.index(block.kernel_size) * len(
                    expands
                ) + expands.index(block.expand_ratio)
                vec[base + len(spec.depth_choices) + b * n_joint + joint] = 1.0
        return vec


class FeatureEncoding(Encoding):
    name = "feature"

    def length(self, spec: SpaceSpec) -> int:
        return spec.num_units * (1 + 2 * spec.max_depth)

    def encode(self, config: ArchConfig, spec: SpaceSpec) -> np.ndarray:
        self._check(config, spec)
        k_max = max(spec.kernel_choices)
        e_max = max(spec.expand_choices) if spec.expand_choices else 1.0
        unit_len = 1 + 2 * spec.max_depth
        vec = np.zeros(self.length(spec))
        for u, blocks in enumerate(config.units):
            base = u * unit_len
            vec[base] = len(blocks) / spec.max_depth
            for b, block in enumerate(blocks):
                vec[base + 1 + 2 * b] = block.kernel_size / k_max
                if block.expand_ratio is not None:
                    vec[base + 2 + 2 * b] = block.expand_ratio / e_max
        return vec


class StatisticalEncoding(Encoding):
    name = "statistical"

    def length(self, spec: SpaceSpec) -> int:
        return spec.num_units * 5

    def encode(self, config: ArchConfig, spec: SpaceSpec) -> np.ndarray:
        self._check(config, spec)
        vec = np.zeros(self.length(spec))
        for u, blocks in enumerate(config.units):
            kernels = np.array([b.kernel_size for b in blocks], dtype=float)
            base = u * 5
            vec[base] = len(blocks)
            vec[base + 1] = kernels.mean()
            vec[base + 2] = kernels.std()
            if spec.expand_choices is not None:
                expands = np.array([b.expand_ratio for b in blocks], dtype=float)
                vec[base + 3] = expands.mean()
                vec[base + 4] = expands.std()
        return vec


class FCEncoding(Encoding):
    """Feature-Count: per-unit marginal counts per feature value."""

    name = "fc"

    def length(self, spec: SpaceSpec) -> int:
        n_expand = len(spec.expand_choices) if spec.expand_choices else 0
        return spec.num_units * (len(spec.kernel_choices) + n_expand)

    def encode(self, config: ArchConfig, spec: SpaceSpec) -> np.ndarray:
        self._check(config, spec)
        n_kernel = len(spec.kernel_choices)
        n_expand = len(spec.expand_choices) if spec.expand_choices else 0
        unit_len = n_kernel + n_expand
        vec = np.zeros(self.length(spec))
        for u, blocks in enumerate(config.units):
            base = u * unit_len
            for block in blocks:
                vec[base + spec.kernel_choices.index(block.kernel_size)] += 1.0
                if n_expand:
                    vec[base + n_kernel + spec.expand_choices.index(block.expand_ratio)] += 1.0
        return vec


class FCCEncoding(Encoding):
    """Feature-Combination-Count: per-unit counts per joint (kernel, expand)."""

    name = "fcc"

    def length(self, spec: SpaceSpec) -> int:
        return spec.num_units * len(spec.kernel_choices) * len(_expand_choices(spec))

    def encode(self, config: ArchConfig, spec: SpaceSpec) -> np.ndarray:
        self._check(config, spec)
        expands = _expand_choices(spec)
        n_joint = len(spec.kernel_choices) * len(expands)
        vec = np.zeros(self.length(spec))
        for u, blocks in enumerate(config.units):
            base = u * n_joint
            for block in blocks:
                joint = spec.kernel_choices.index(block.kernel_size) * len(
                    expands
                ) + expands.index(block.expand_ratio)
                vec[base + joint] += 1.0
        return vec
