"""Architecture encodings: the paper's FCC/FC plus the SoTA baselines.

Every encoding maps an `ArchConfig` to a fixed-length float vector whose
length depends only on the `SpaceSpec`:

* **onehot** — per-unit depth one-hot plus a one-hot over the joint
  (kernel, expand) choice for every block slot (zeros where absent).
  Injective but very long.
* **feature** — per-unit normalised depth plus normalised (kernel, expand)
  numerics per block slot.
* **statistical** — HAT-style summary: per unit ``[depth, mean_k, std_k,
  mean_e, std_e]``.  Collapses the joint (kernel, expand) distribution to
  marginal moments, so configurations with very different latencies can
  collide.
* **fc** (paper) — per-unit *marginal* counts of each kernel value and
  each expand value.
* **fcc** (paper) — per-unit counts of each *joint* (kernel, expand)
  combination; keeps exactly the information a block-additive latency
  function needs.

Families without an expansion dimension (DenseNet) are handled by treating
``expand_ratio=None`` as a single dummy choice.

``encode_batch`` is the hot path of predictor training inside the ESM
loop, so every encoder vectorizes it: one flattening pass gathers every
block of the batch into index arrays (`_BlockTable`), and the encoding is
then materialised with a handful of fancy-indexing / ``np.add.at``
operations on the preallocated ``(n, length)`` matrix instead of n
separate `encode` calls.  The per-config loop survives as
`Encoding._encode_batch_loop`, the reference implementation the
equivalence tests compare against.
"""

from __future__ import annotations

from itertools import repeat
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..archspace.config import ArchConfig
from ..archspace.spaces import SpaceSpec

__all__ = [
    "Encoding",
    "OneHotEncoding",
    "FeatureEncoding",
    "StatisticalEncoding",
    "FCEncoding",
    "FCCEncoding",
]


def _expand_choices(spec: SpaceSpec) -> Tuple[Optional[float], ...]:
    return spec.expand_choices if spec.expand_choices is not None else (None,)


def _reject(config: ArchConfig, spec: SpaceSpec) -> None:
    raise ValueError(
        f"config (family={config.family!r}) is not a member of the "
        f"{spec.family!r} space"
    )


class _BlockTable:
    """Every block of a batch, flattened into parallel index arrays.

    One Python pass over the configs produces integer arrays (``cfg``,
    ``unit``, ``pos``, ``kidx``, ``eidx``) of length total-blocks plus the
    per-config depth matrix; all five encoders then vectorize over these
    with numpy scatter operations.  Space membership is validated inline
    during the same pass (an out-of-space choice simply misses the lookup
    tables), so the batch never needs a second `spec.contains` sweep.
    """

    def __init__(self, configs: Sequence[ArchConfig], spec: SpaceSpec):
        n_expand = len(_expand_choices(spec))
        joint_lut = {
            (k, e): ki * n_expand + ei
            for ki, k in enumerate(spec.kernel_choices)
            for ei, e in enumerate(_expand_choices(spec))
        }
        depth_ok = set(spec.depth_choices)
        family, num_units = spec.family, spec.num_units
        uniform = spec.uniform_kernel
        cfg: List[int] = []
        unit: List[int] = []
        pos: List[int] = []
        joint: List[int] = []
        depths: List[List[int]] = []
        for i, config in enumerate(configs):
            units = config.units
            if config.family != family or len(units) != num_units:
                _reject(config, spec)
            row: List[int] = []
            for u, blocks in enumerate(units):
                d = len(blocks)
                if d not in depth_ok:
                    _reject(config, spec)
                if uniform and len({b.kernel_size for b in blocks}) != 1:
                    _reject(config, spec)
                row.append(d)
                cfg.extend(repeat(i, d))
                unit.extend(repeat(u, d))
                pos.extend(range(d))
                try:
                    for block in blocks:
                        joint.append(joint_lut[block.kernel_size, block.expand_ratio])
                except KeyError:
                    _reject(config, spec)
            depths.append(row)
        self.n_expand = n_expand
        self.cfg = np.asarray(cfg, dtype=np.intp)
        self.unit = np.asarray(unit, dtype=np.intp)
        self.pos = np.asarray(pos, dtype=np.intp)
        self.joint = np.asarray(joint, dtype=np.intp)
        self.kidx = self.joint // n_expand
        self.eidx = self.joint - self.kidx * n_expand
        self.depths = np.asarray(depths, dtype=np.intp).reshape(
            len(configs), num_units
        )

    def kernel_values(self, spec: SpaceSpec) -> np.ndarray:
        return np.asarray(spec.kernel_choices, dtype=float)[self.kidx]

    def expand_values(self, spec: SpaceSpec) -> np.ndarray:
        """Per-block expand ratios; only valid when the space has them."""
        return np.asarray(spec.expand_choices, dtype=float)[self.eidx]


class Encoding:
    """Base class: subclasses implement `length`, `encode`, `encode_batch`."""

    name: str = "base"

    def length(self, spec: SpaceSpec) -> int:
        raise NotImplementedError

    def encode(self, config: ArchConfig, spec: SpaceSpec) -> np.ndarray:
        raise NotImplementedError

    def encode_batch(self, configs: Sequence[ArchConfig], spec: SpaceSpec) -> np.ndarray:
        """``(n, length)`` feature matrix; subclasses vectorize this."""
        return self._encode_batch_loop(configs, spec)

    def _encode_batch_loop(
        self, configs: Sequence[ArchConfig], spec: SpaceSpec
    ) -> np.ndarray:
        """Reference implementation: stack per-config `encode` vectors."""
        out = np.zeros((len(configs), self.length(spec)))
        for i, config in enumerate(configs):
            out[i] = self.encode(config, spec)
        return out

    def _batch_table(
        self, configs: Sequence[ArchConfig], spec: SpaceSpec
    ) -> _BlockTable:
        """Flatten the batch once, validating membership along the way."""
        return _BlockTable(configs, spec)

    def _check(self, config: ArchConfig, spec: SpaceSpec) -> None:
        if not spec.contains(config):
            raise ValueError(
                f"config (family={config.family!r}) is not a member of the "
                f"{spec.family!r} space"
            )


class OneHotEncoding(Encoding):
    name = "onehot"

    def length(self, spec: SpaceSpec) -> int:
        n_joint = len(spec.kernel_choices) * len(_expand_choices(spec))
        return spec.num_units * (len(spec.depth_choices) + spec.max_depth * n_joint)

    def encode(self, config: ArchConfig, spec: SpaceSpec) -> np.ndarray:
        self._check(config, spec)
        expands = _expand_choices(spec)
        n_joint = len(spec.kernel_choices) * len(expands)
        unit_len = len(spec.depth_choices) + spec.max_depth * n_joint
        vec = np.zeros(self.length(spec))
        for u, blocks in enumerate(config.units):
            base = u * unit_len
            vec[base + spec.depth_choices.index(len(blocks))] = 1.0
            for b, block in enumerate(blocks):
                joint = spec.kernel_choices.index(block.kernel_size) * len(
                    expands
                ) + expands.index(block.expand_ratio)
                vec[base + len(spec.depth_choices) + b * n_joint + joint] = 1.0
        return vec

    def encode_batch(self, configs: Sequence[ArchConfig], spec: SpaceSpec) -> np.ndarray:
        table = self._batch_table(configs, spec)
        n_expand = len(_expand_choices(spec))
        n_joint = len(spec.kernel_choices) * n_expand
        n_depth = len(spec.depth_choices)
        unit_len = n_depth + spec.max_depth * n_joint
        out = np.zeros((len(configs), self.length(spec)))
        if not configs:
            return out
        depth_lut = {d: i for i, d in enumerate(spec.depth_choices)}
        depth_idx = np.vectorize(depth_lut.__getitem__, otypes=[np.intp])(
            table.depths
        )
        unit_base = np.arange(spec.num_units, dtype=np.intp) * unit_len
        rows = np.arange(len(configs), dtype=np.intp)[:, None]
        out[rows, unit_base[None, :] + depth_idx] = 1.0
        cols = table.unit * unit_len + n_depth + table.pos * n_joint + table.joint
        out[table.cfg, cols] = 1.0
        return out


class FeatureEncoding(Encoding):
    name = "feature"

    def length(self, spec: SpaceSpec) -> int:
        return spec.num_units * (1 + 2 * spec.max_depth)

    def encode(self, config: ArchConfig, spec: SpaceSpec) -> np.ndarray:
        self._check(config, spec)
        k_max = max(spec.kernel_choices)
        e_max = max(spec.expand_choices) if spec.expand_choices else 1.0
        unit_len = 1 + 2 * spec.max_depth
        vec = np.zeros(self.length(spec))
        for u, blocks in enumerate(config.units):
            base = u * unit_len
            vec[base] = len(blocks) / spec.max_depth
            for b, block in enumerate(blocks):
                vec[base + 1 + 2 * b] = block.kernel_size / k_max
                if block.expand_ratio is not None:
                    vec[base + 2 + 2 * b] = block.expand_ratio / e_max
        return vec

    def encode_batch(self, configs: Sequence[ArchConfig], spec: SpaceSpec) -> np.ndarray:
        table = self._batch_table(configs, spec)
        k_max = max(spec.kernel_choices)
        unit_len = 1 + 2 * spec.max_depth
        out = np.zeros((len(configs), self.length(spec)))
        if not configs:
            return out
        unit_base = np.arange(spec.num_units, dtype=np.intp) * unit_len
        rows = np.arange(len(configs), dtype=np.intp)[:, None]
        out[rows, unit_base[None, :]] = table.depths / spec.max_depth
        block_base = table.unit * unit_len + 1 + 2 * table.pos
        out[table.cfg, block_base] = table.kernel_values(spec) / k_max
        if spec.expand_choices is not None:
            e_max = max(spec.expand_choices)
            out[table.cfg, block_base + 1] = table.expand_values(spec) / e_max
        return out


class StatisticalEncoding(Encoding):
    name = "statistical"

    def length(self, spec: SpaceSpec) -> int:
        return spec.num_units * 5

    def encode(self, config: ArchConfig, spec: SpaceSpec) -> np.ndarray:
        self._check(config, spec)
        vec = np.zeros(self.length(spec))
        for u, blocks in enumerate(config.units):
            kernels = np.array([b.kernel_size for b in blocks], dtype=float)
            base = u * 5
            vec[base] = len(blocks)
            vec[base + 1] = kernels.mean()
            vec[base + 2] = kernels.std()
            if spec.expand_choices is not None:
                expands = np.array([b.expand_ratio for b in blocks], dtype=float)
                vec[base + 3] = expands.mean()
                vec[base + 4] = expands.std()
        return vec

    @staticmethod
    def _moments(
        values: np.ndarray, table: _BlockTable, depths: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-(config, unit) mean and population std of block values."""
        sums = np.zeros(depths.shape)
        np.add.at(sums, (table.cfg, table.unit), values)
        means = sums / depths
        sq = np.zeros(depths.shape)
        np.add.at(sq, (table.cfg, table.unit), (values - means[table.cfg, table.unit]) ** 2)
        return means, np.sqrt(sq / depths)

    def encode_batch(self, configs: Sequence[ArchConfig], spec: SpaceSpec) -> np.ndarray:
        table = self._batch_table(configs, spec)
        out = np.zeros((len(configs), self.length(spec)))
        if not configs:
            return out
        depths = table.depths.astype(float)
        out[:, 0::5] = depths
        mean_k, std_k = self._moments(table.kernel_values(spec), table, depths)
        out[:, 1::5] = mean_k
        out[:, 2::5] = std_k
        if spec.expand_choices is not None:
            mean_e, std_e = self._moments(table.expand_values(spec), table, depths)
            out[:, 3::5] = mean_e
            out[:, 4::5] = std_e
        return out


class FCEncoding(Encoding):
    """Feature-Count: per-unit marginal counts per feature value."""

    name = "fc"

    def length(self, spec: SpaceSpec) -> int:
        n_expand = len(spec.expand_choices) if spec.expand_choices else 0
        return spec.num_units * (len(spec.kernel_choices) + n_expand)

    def encode(self, config: ArchConfig, spec: SpaceSpec) -> np.ndarray:
        self._check(config, spec)
        n_kernel = len(spec.kernel_choices)
        n_expand = len(spec.expand_choices) if spec.expand_choices else 0
        unit_len = n_kernel + n_expand
        vec = np.zeros(self.length(spec))
        for u, blocks in enumerate(config.units):
            base = u * unit_len
            for block in blocks:
                vec[base + spec.kernel_choices.index(block.kernel_size)] += 1.0
                if n_expand:
                    vec[base + n_kernel + spec.expand_choices.index(block.expand_ratio)] += 1.0
        return vec

    def encode_batch(self, configs: Sequence[ArchConfig], spec: SpaceSpec) -> np.ndarray:
        table = self._batch_table(configs, spec)
        n_kernel = len(spec.kernel_choices)
        n_expand = len(spec.expand_choices) if spec.expand_choices else 0
        unit_len = n_kernel + n_expand
        out = np.zeros((len(configs), self.length(spec)))
        np.add.at(out, (table.cfg, table.unit * unit_len + table.kidx), 1.0)
        if n_expand:
            np.add.at(
                out, (table.cfg, table.unit * unit_len + n_kernel + table.eidx), 1.0
            )
        return out


class FCCEncoding(Encoding):
    """Feature-Combination-Count: per-unit counts per joint (kernel, expand)."""

    name = "fcc"

    def length(self, spec: SpaceSpec) -> int:
        return spec.num_units * len(spec.kernel_choices) * len(_expand_choices(spec))

    def encode(self, config: ArchConfig, spec: SpaceSpec) -> np.ndarray:
        self._check(config, spec)
        expands = _expand_choices(spec)
        n_joint = len(spec.kernel_choices) * len(expands)
        vec = np.zeros(self.length(spec))
        for u, blocks in enumerate(config.units):
            base = u * n_joint
            for block in blocks:
                joint = spec.kernel_choices.index(block.kernel_size) * len(
                    expands
                ) + expands.index(block.expand_ratio)
                vec[base + joint] += 1.0
        return vec

    def encode_batch(self, configs: Sequence[ArchConfig], spec: SpaceSpec) -> np.ndarray:
        table = self._batch_table(configs, spec)
        n_expand = len(_expand_choices(spec))
        n_joint = len(spec.kernel_choices) * n_expand
        out = np.zeros((len(configs), self.length(spec)))
        np.add.at(out, (table.cfg, table.unit * n_joint + table.joint), 1.0)
        return out
