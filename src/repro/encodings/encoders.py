"""Architecture encodings: the paper's FCC/FC plus the SoTA baselines.

Every encoding maps an `ArchConfig` to a fixed-length float vector whose
length depends only on the `SpaceSpec`:

* **onehot** — per-unit depth one-hot plus a one-hot over the joint
  (kernel, expand) choice for every block slot (zeros where absent).
  Injective but very long.
* **feature** — per-unit normalised depth plus normalised (kernel, expand)
  numerics per block slot.
* **statistical** — HAT-style summary: per unit ``[depth, mean_k, std_k,
  mean_e, std_e]``.  Collapses the joint (kernel, expand) distribution to
  marginal moments, so configurations with very different latencies can
  collide.
* **fc** (paper) — per-unit *marginal* counts of each kernel value and
  each expand value.
* **fcc** (paper) — per-unit counts of each *joint* (kernel, expand)
  combination; keeps exactly the information a block-additive latency
  function needs.

Families without an expansion dimension (DenseNet) are handled by treating
``expand_ratio=None`` as a single dummy choice.

``encode_batch`` is the hot path of predictor training inside the ESM
loop, so every encoder vectorizes it: one flattening pass gathers every
block of the batch into index arrays (`_BlockTable`), and the encoding is
then materialised with a handful of fancy-indexing / ``np.add.at``
operations on the preallocated ``(n, length)`` matrix instead of n
separate `encode` calls.  The per-config loop survives as
`Encoding._encode_batch_loop`, the reference implementation the
equivalence tests compare against.
"""

from __future__ import annotations

from functools import lru_cache
from itertools import repeat
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..archspace.config import ArchConfig
from ..archspace.spaces import SpaceSpec

__all__ = [
    "Encoding",
    "OneHotEncoding",
    "FeatureEncoding",
    "StatisticalEncoding",
    "FCEncoding",
    "FCCEncoding",
]


def _expand_choices(spec: SpaceSpec) -> Tuple[Optional[float], ...]:
    return spec.expand_choices if spec.expand_choices is not None else (None,)


@lru_cache(maxsize=64)
def _spec_tables(spec: SpaceSpec):
    """Per-spec lookup state shared by every `_BlockTable` built against it.

    `SpaceSpec` is a frozen dataclass, so the joint (kernel, expand) lookup
    table and the depth-membership set are pure functions of it.  Memoizing
    them means a serving path flushing thousands of micro-batches per
    second rebuilds neither dict per call.
    """
    n_expand = len(_expand_choices(spec))
    joint_lut = {
        (k, e): ki * n_expand + ei
        for ki, k in enumerate(spec.kernel_choices)
        for ei, e in enumerate(_expand_choices(spec))
    }
    return n_expand, joint_lut, frozenset(spec.depth_choices)


def _reject(config: ArchConfig, spec: SpaceSpec) -> None:
    raise ValueError(
        f"config (family={config.family!r}) is not a member of the "
        f"{spec.family!r} space"
    )


def _config_rows(config: ArchConfig, spec: SpaceSpec):
    """``(depths_row, unit_idx, pos_idx, joint_idx)`` arrays for one config.

    Validates space membership along the way (this is the only walk over
    the config's blocks), and memoizes the result on the config instance
    keyed by the *identity* of ``spec``: encoders, the serving path, and
    the dataset pipeline all pass one long-lived `SpaceSpec` instance, so
    the identity check is a pointer compare instead of hashing the spec's
    nested tuples per lookup.  A different spec instance simply rebuilds
    (and re-validates) the rows.  The index rows are small ``np.intp``
    arrays, so a batch assembles with ``np.concatenate`` instead of
    re-walking Python tuples per flush.
    """
    memo = config.__dict__.get("_block_rows")
    if memo is not None and memo[0] is spec:
        return memo[1]
    n_expand, joint_lut, depth_ok = _spec_tables(spec)
    # `cache_key()[1]` is the per-unit (kernel, expand) tuples in exactly
    # joint_lut's key shape, memoized on the config — the loop below runs
    # on flat primitives, never touching the nested `BlockConfig` objects.
    units_ke = config.cache_key()[1]
    if config.family != spec.family or len(units_ke) != spec.num_units:
        _reject(config, spec)
    uniform = spec.uniform_kernel
    row: List[int] = []
    unit: List[int] = []
    pos: List[int] = []
    joint: List[int] = []
    for u, blocks_ke in enumerate(units_ke):
        d = len(blocks_ke)
        if d not in depth_ok:
            _reject(config, spec)
        if uniform and len({k for k, _ in blocks_ke}) != 1:
            _reject(config, spec)
        row.append(d)
        unit.extend(repeat(u, d))
        pos.extend(range(d))
        try:
            joint.extend(joint_lut[ke] for ke in blocks_ke)
        except KeyError:
            _reject(config, spec)
    rows = (
        np.asarray(row, dtype=np.intp),
        np.asarray(unit, dtype=np.intp),
        np.asarray(pos, dtype=np.intp),
        np.asarray(joint, dtype=np.intp),
    )
    object.__setattr__(config, "_block_rows", (spec, rows))
    return rows


class _BlockTable:
    """Every block of a batch, flattened into parallel index arrays.

    One Python pass over the configs produces integer arrays (``cfg``,
    ``unit``, ``pos``, ``kidx``, ``eidx``) of length total-blocks plus the
    per-config depth matrix; all five encoders then vectorize over these
    with numpy scatter operations.  Space membership is validated inline
    during the same pass (an out-of-space choice simply misses the lookup
    tables), so the batch never needs a second `spec.contains` sweep.
    """

    def __init__(self, configs: Sequence[ArchConfig], spec: SpaceSpec):
        num_units = spec.num_units
        n = len(configs)
        depth_rows = []
        unit_rows = []
        pos_rows = []
        joint_rows = []
        counts = np.empty(n, dtype=np.intp)
        for i, config in enumerate(configs):
            row, unit_r, pos_r, joint_r = _config_rows(config, spec)
            depth_rows.append(row)
            unit_rows.append(unit_r)
            pos_rows.append(pos_r)
            joint_rows.append(joint_r)
            counts[i] = len(joint_r)
        n_expand = self.n_expand = len(_expand_choices(spec))
        if n:
            self.cfg = np.repeat(np.arange(n, dtype=np.intp), counts)
            self.unit = np.concatenate(unit_rows)
            self.pos = np.concatenate(pos_rows)
            self.joint = np.concatenate(joint_rows)
        else:
            self.cfg = self.unit = self.pos = self.joint = np.empty(
                0, dtype=np.intp
            )
        self.kidx = self.joint // n_expand
        self.eidx = self.joint - self.kidx * n_expand
        self.depths = (
            np.vstack(depth_rows)
            if n
            else np.empty((0, num_units), dtype=np.intp)
        )

    def kernel_values(self, spec: SpaceSpec) -> np.ndarray:
        return np.asarray(spec.kernel_choices, dtype=float)[self.kidx]

    def expand_values(self, spec: SpaceSpec) -> np.ndarray:
        """Per-block expand ratios; only valid when the space has them."""
        return np.asarray(spec.expand_choices, dtype=float)[self.eidx]


class Encoding:
    """Base class: subclasses implement `length`, `encode`, `encode_batch`."""

    name: str = "base"

    def length(self, spec: SpaceSpec) -> int:
        raise NotImplementedError

    def encode(self, config: ArchConfig, spec: SpaceSpec) -> np.ndarray:
        raise NotImplementedError

    def encode_batch(self, configs: Sequence[ArchConfig], spec: SpaceSpec) -> np.ndarray:
        """``(n, length)`` feature matrix; subclasses vectorize this."""
        return self._encode_batch_loop(configs, spec)

    def _encode_batch_loop(
        self, configs: Sequence[ArchConfig], spec: SpaceSpec
    ) -> np.ndarray:
        """Reference implementation: stack per-config `encode` vectors."""
        out = np.zeros((len(configs), self.length(spec)))
        for i, config in enumerate(configs):
            out[i] = self.encode(config, spec)
        return out

    def _batch_table(
        self, configs: Sequence[ArchConfig], spec: SpaceSpec
    ) -> _BlockTable:
        """Flatten the batch once, validating membership along the way."""
        return _BlockTable(configs, spec)

    def _check(self, config: ArchConfig, spec: SpaceSpec) -> None:
        if not spec.contains(config):
            raise ValueError(
                f"config (family={config.family!r}) is not a member of the "
                f"{spec.family!r} space"
            )


class OneHotEncoding(Encoding):
    name = "onehot"

    def length(self, spec: SpaceSpec) -> int:
        n_joint = len(spec.kernel_choices) * len(_expand_choices(spec))
        return spec.num_units * (len(spec.depth_choices) + spec.max_depth * n_joint)

    def encode(self, config: ArchConfig, spec: SpaceSpec) -> np.ndarray:
        self._check(config, spec)
        expands = _expand_choices(spec)
        n_joint = len(spec.kernel_choices) * len(expands)
        unit_len = len(spec.depth_choices) + spec.max_depth * n_joint
        vec = np.zeros(self.length(spec))
        for u, blocks in enumerate(config.units):
            base = u * unit_len
            vec[base + spec.depth_choices.index(len(blocks))] = 1.0
            for b, block in enumerate(blocks):
                joint = spec.kernel_choices.index(block.kernel_size) * len(
                    expands
                ) + expands.index(block.expand_ratio)
                vec[base + len(spec.depth_choices) + b * n_joint + joint] = 1.0
        return vec

    def encode_batch(self, configs: Sequence[ArchConfig], spec: SpaceSpec) -> np.ndarray:
        table = self._batch_table(configs, spec)
        n_expand = len(_expand_choices(spec))
        n_joint = len(spec.kernel_choices) * n_expand
        n_depth = len(spec.depth_choices)
        unit_len = n_depth + spec.max_depth * n_joint
        out = np.zeros((len(configs), self.length(spec)))
        if not configs:
            return out
        depth_lut = {d: i for i, d in enumerate(spec.depth_choices)}
        depth_idx = np.vectorize(depth_lut.__getitem__, otypes=[np.intp])(
            table.depths
        )
        unit_base = np.arange(spec.num_units, dtype=np.intp) * unit_len
        rows = np.arange(len(configs), dtype=np.intp)[:, None]
        out[rows, unit_base[None, :] + depth_idx] = 1.0
        cols = table.unit * unit_len + n_depth + table.pos * n_joint + table.joint
        out[table.cfg, cols] = 1.0
        return out


class FeatureEncoding(Encoding):
    name = "feature"

    def length(self, spec: SpaceSpec) -> int:
        return spec.num_units * (1 + 2 * spec.max_depth)

    def encode(self, config: ArchConfig, spec: SpaceSpec) -> np.ndarray:
        self._check(config, spec)
        k_max = max(spec.kernel_choices)
        e_max = max(spec.expand_choices) if spec.expand_choices else 1.0
        unit_len = 1 + 2 * spec.max_depth
        vec = np.zeros(self.length(spec))
        for u, blocks in enumerate(config.units):
            base = u * unit_len
            vec[base] = len(blocks) / spec.max_depth
            for b, block in enumerate(blocks):
                vec[base + 1 + 2 * b] = block.kernel_size / k_max
                if block.expand_ratio is not None:
                    vec[base + 2 + 2 * b] = block.expand_ratio / e_max
        return vec

    def encode_batch(self, configs: Sequence[ArchConfig], spec: SpaceSpec) -> np.ndarray:
        table = self._batch_table(configs, spec)
        k_max = max(spec.kernel_choices)
        unit_len = 1 + 2 * spec.max_depth
        out = np.zeros((len(configs), self.length(spec)))
        if not configs:
            return out
        unit_base = np.arange(spec.num_units, dtype=np.intp) * unit_len
        rows = np.arange(len(configs), dtype=np.intp)[:, None]
        out[rows, unit_base[None, :]] = table.depths / spec.max_depth
        block_base = table.unit * unit_len + 1 + 2 * table.pos
        out[table.cfg, block_base] = table.kernel_values(spec) / k_max
        if spec.expand_choices is not None:
            e_max = max(spec.expand_choices)
            out[table.cfg, block_base + 1] = table.expand_values(spec) / e_max
        return out


class StatisticalEncoding(Encoding):
    name = "statistical"

    def length(self, spec: SpaceSpec) -> int:
        return spec.num_units * 5

    def encode(self, config: ArchConfig, spec: SpaceSpec) -> np.ndarray:
        self._check(config, spec)
        vec = np.zeros(self.length(spec))
        for u, blocks in enumerate(config.units):
            kernels = np.array([b.kernel_size for b in blocks], dtype=float)
            base = u * 5
            vec[base] = len(blocks)
            vec[base + 1] = kernels.mean()
            vec[base + 2] = kernels.std()
            if spec.expand_choices is not None:
                expands = np.array([b.expand_ratio for b in blocks], dtype=float)
                vec[base + 3] = expands.mean()
                vec[base + 4] = expands.std()
        return vec

    @staticmethod
    def _moments(
        values: np.ndarray, table: _BlockTable, depths: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-(config, unit) mean and population std of block values."""
        sums = np.zeros(depths.shape)
        np.add.at(sums, (table.cfg, table.unit), values)
        means = sums / depths
        sq = np.zeros(depths.shape)
        np.add.at(sq, (table.cfg, table.unit), (values - means[table.cfg, table.unit]) ** 2)
        return means, np.sqrt(sq / depths)

    def encode_batch(self, configs: Sequence[ArchConfig], spec: SpaceSpec) -> np.ndarray:
        table = self._batch_table(configs, spec)
        out = np.zeros((len(configs), self.length(spec)))
        if not configs:
            return out
        depths = table.depths.astype(float)
        out[:, 0::5] = depths
        mean_k, std_k = self._moments(table.kernel_values(spec), table, depths)
        out[:, 1::5] = mean_k
        out[:, 2::5] = std_k
        if spec.expand_choices is not None:
            mean_e, std_e = self._moments(table.expand_values(spec), table, depths)
            out[:, 3::5] = mean_e
            out[:, 4::5] = std_e
        return out


class FCEncoding(Encoding):
    """Feature-Count: per-unit marginal counts per feature value."""

    name = "fc"

    def length(self, spec: SpaceSpec) -> int:
        n_expand = len(spec.expand_choices) if spec.expand_choices else 0
        return spec.num_units * (len(spec.kernel_choices) + n_expand)

    def encode(self, config: ArchConfig, spec: SpaceSpec) -> np.ndarray:
        self._check(config, spec)
        n_kernel = len(spec.kernel_choices)
        n_expand = len(spec.expand_choices) if spec.expand_choices else 0
        unit_len = n_kernel + n_expand
        vec = np.zeros(self.length(spec))
        for u, blocks in enumerate(config.units):
            base = u * unit_len
            for block in blocks:
                vec[base + spec.kernel_choices.index(block.kernel_size)] += 1.0
                if n_expand:
                    vec[base + n_kernel + spec.expand_choices.index(block.expand_ratio)] += 1.0
        return vec

    def encode_batch(self, configs: Sequence[ArchConfig], spec: SpaceSpec) -> np.ndarray:
        table = self._batch_table(configs, spec)
        n_kernel = len(spec.kernel_choices)
        n_expand = len(spec.expand_choices) if spec.expand_choices else 0
        unit_len = n_kernel + n_expand
        out = np.zeros((len(configs), self.length(spec)))
        np.add.at(out, (table.cfg, table.unit * unit_len + table.kidx), 1.0)
        if n_expand:
            np.add.at(
                out, (table.cfg, table.unit * unit_len + n_kernel + table.eidx), 1.0
            )
        return out


class FCCEncoding(Encoding):
    """Feature-Combination-Count: per-unit counts per joint (kernel, expand)."""

    name = "fcc"

    def length(self, spec: SpaceSpec) -> int:
        return spec.num_units * len(spec.kernel_choices) * len(_expand_choices(spec))

    def encode(self, config: ArchConfig, spec: SpaceSpec) -> np.ndarray:
        self._check(config, spec)
        expands = _expand_choices(spec)
        n_joint = len(spec.kernel_choices) * len(expands)
        vec = np.zeros(self.length(spec))
        for u, blocks in enumerate(config.units):
            base = u * n_joint
            for block in blocks:
                joint = spec.kernel_choices.index(block.kernel_size) * len(
                    expands
                ) + expands.index(block.expand_ratio)
                vec[base + joint] += 1.0
        return vec

    def encode_batch(self, configs: Sequence[ArchConfig], spec: SpaceSpec) -> np.ndarray:
        table = self._batch_table(configs, spec)
        n_expand = len(_expand_choices(spec))
        n_joint = len(spec.kernel_choices) * n_expand
        out = np.zeros((len(configs), self.length(spec)))
        np.add.at(out, (table.cfg, table.unit * n_joint + table.joint), 1.0)
        return out
