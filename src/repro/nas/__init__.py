"""Surrogate-driven NAS: accuracy proxy, Pareto analysis, search drivers.

The consumer layer the ESM pipeline exists for: take a latency oracle (a
fitted surrogate via `PredictorOracle`, or the device itself), pair it
with the deterministic `SyntheticAccuracyProxy`, run `RandomSearch` /
`EvolutionarySearch`, and quantify how far the surrogate displaced the
Pareto front (`displacement_metrics`, Fig. 2b).  The experiments entry
point (``python -m repro.nas.experiments``) wires the whole chain through
`ESMLoop`-trained surrogates for every encoding.
"""

from .pareto import (
    ParetoFront,
    ParetoPoint,
    crowding_distance,
    displacement_metrics,
    non_dominated_rank,
)
from .proxy import SyntheticAccuracyProxy
from .search import Candidate, EvolutionarySearch, RandomSearch, SearchResult

__all__ = [
    "SyntheticAccuracyProxy",
    "ParetoPoint",
    "ParetoFront",
    "non_dominated_rank",
    "crowding_distance",
    "displacement_metrics",
    "Candidate",
    "SearchResult",
    "RandomSearch",
    "EvolutionarySearch",
]
