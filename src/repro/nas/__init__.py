"""Surrogate-driven NAS: accuracy proxy, Pareto analysis, search drivers.

The consumer layer the ESM pipeline exists for: take a latency oracle (a
fitted surrogate via `PredictorOracle`, or the device itself), pair it
with the deterministic `SyntheticAccuracyProxy`, run `RandomSearch` /
`EvolutionarySearch`, and quantify how far the surrogate displaced the
Pareto front (`displacement_metrics`, Fig. 2b).  The experiments entry
point (``python -m repro.nas.experiments``) wires the whole chain through
`ESMLoop`-trained surrogates for every encoding.

Deployment-scale searching rides on top: `SearchConstraints` puts
CNAS-style latency/params/FLOPs budgets on either driver (selection
switches to the constrained-dominance sort), ``warm_start=`` seeds a new
population from a previous front, ``checkpoint_dir=`` gives every search
atomic per-generation checkpoints with byte-identical kill-and-resume,
and `SearchFleet` (``python -m repro.nas.fleet``) runs N seeds in
parallel and aggregates the fronts into median/IQR dispersion bands.
"""

from .checkpoint import CheckpointState, SearchCheckpoint, SearchCheckpointError
from .constraints import SearchConstraints, static_costs
from .fleet import FleetError, FleetResult, SearchFleet
from .pareto import (
    ParetoFront,
    ParetoPoint,
    constrained_dominates,
    constrained_non_dominated_rank,
    crowding_distance,
    displacement_metrics,
    non_dominated_rank,
)
from .proxy import SyntheticAccuracyProxy
from .search import Candidate, EvolutionarySearch, RandomSearch, SearchResult

__all__ = [
    "SyntheticAccuracyProxy",
    "ParetoPoint",
    "ParetoFront",
    "non_dominated_rank",
    "constrained_dominates",
    "constrained_non_dominated_rank",
    "crowding_distance",
    "displacement_metrics",
    "Candidate",
    "SearchResult",
    "RandomSearch",
    "EvolutionarySearch",
    "SearchConstraints",
    "static_costs",
    "SearchCheckpoint",
    "SearchCheckpointError",
    "CheckpointState",
    "SearchFleet",
    "FleetResult",
    "FleetError",
]
