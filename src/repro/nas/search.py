"""Search drivers over an architecture space: random and evolutionary.

Both drivers optimise the bi-objective (minimize oracle latency, maximize
proxy accuracy) and accept *any* `LatencyOracle` — a fitted surrogate via
`PredictorOracle` or the device itself via `DeviceOracle` — which is the
whole point of the Fig. 2(b) analysis: run the identical seeded search
under both oracles and measure how far the surrogate displaced the front.

`EvolutionarySearch` is an NSGA-II-style loop: binary tournaments on
(non-domination rank, crowding distance), unit-wise crossover and
block-level mutation from `repro.archspace.ops`, and elitist environmental
selection over parents + children.  Every random draw flows through
generators derived from ``(seed, slot, generation)``, so a seeded run
reproduces its population trajectory exactly — the golden-trace test
locks one such trajectory.

Three deployment-grade capabilities ride on that determinism:

* **Constraints** — ``constraints=SearchConstraints(...)`` puts CNAS-style
  latency/params/FLOPs budgets on the search.  Selection switches to
  Deb's constrained-dominance sort (feasible dominates infeasible,
  infeasible ranked by total violation, see `repro.nas.pareto`), so
  NSGA-II pressure keeps pointing at the feasible region even when the
  population starts entirely outside it; the returned front contains only
  feasible members whenever any feasible candidate was evaluated.
* **Warm start** — ``warm_start=`` accepts a previous `ParetoFront`,
  `SearchResult`, or plain config sequence and seeds the initial
  population (random sampling only fills the remainder), so a search can
  continue where a cheaper or earlier one left off.
* **Checkpoint/resume** — ``checkpoint_dir=`` writes one atomic file per
  completed generation (or per evaluated chunk for `RandomSearch`).  A
  killed search re-run with the same parameters resumes from the last
  durable step and produces a byte-identical `SearchResult` JSON, because
  the per-step RNG streams never depend on process history.  A directory
  written by a *different* search is refused by fingerprint.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..archspace.config import ArchConfig
from ..archspace.ops import crossover, mutate
from ..archspace.sampling import RandomSampler
from ..archspace.spaces import SpaceSpec
from .checkpoint import SearchCheckpoint
from .constraints import SearchConstraints
from .pareto import (
    ParetoFront,
    ParetoPoint,
    constrained_non_dominated_rank,
    crowding_distance,
    non_dominated_rank,
)
from .proxy import SyntheticAccuracyProxy

__all__ = ["Candidate", "SearchResult", "RandomSearch", "EvolutionarySearch"]

SEARCH_RESULT_FORMAT_VERSION = 1

# RNG slots, disjoint from the ESM loop's (see repro.core.loop).
_SLOT_INIT = 211
_SLOT_SELECT = 223
_SLOT_VARY = 227

WarmStart = Union["SearchResult", ParetoFront, Sequence[ArchConfig], None]


@dataclass(frozen=True)
class Candidate:
    """An evaluated architecture: oracle latency plus proxy accuracy."""

    config: ArchConfig
    latency_s: float
    accuracy: float

    def point(self) -> ParetoPoint:
        return ParetoPoint(self.latency_s, self.accuracy, self.config)

    def to_dict(self) -> dict:
        return {
            "config": self.config.to_dict(),
            "latency_s": self.latency_s,
            "accuracy": self.accuracy,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Candidate":
        return cls(
            config=ArchConfig.from_dict(d["config"]),
            latency_s=float(d["latency_s"]),
            accuracy=float(d["accuracy"]),
        )


@dataclass
class SearchResult:
    """Everything a search evaluated, its final population, and the front.

    Under active constraints the front is restricted to feasible members
    whenever any exist; with *no* feasible candidate it degrades to the
    non-dominated set of the least-violating candidates (so the caller
    still sees where the search got stuck, flagged by
    ``feasible_evaluations == 0``).
    """

    evaluated: List[Candidate]
    population: List[Candidate]
    front: ParetoFront
    driver: Optional[str] = None
    seed: Optional[int] = None
    constraints: Optional[SearchConstraints] = None

    @property
    def n_evaluations(self) -> int:
        return len(self.evaluated)

    @property
    def front_configs(self) -> List[ArchConfig]:
        return [p.config for p in self.front if p.config is not None]

    def violations(self) -> np.ndarray:
        """Total budget violation per evaluated candidate (zeros if none)."""
        if self.constraints is None or not self.constraints.is_active:
            return np.zeros(len(self.evaluated))
        return self.constraints.violations(
            [c.config for c in self.evaluated],
            [c.latency_s for c in self.evaluated],
        )

    @property
    def feasible_evaluations(self) -> int:
        return int((self.violations() <= 0.0).sum())

    # ------------------------------ JSON ------------------------------- #

    def to_dict(self) -> dict:
        return {
            "format_version": SEARCH_RESULT_FORMAT_VERSION,
            "kind": "search_result",
            "driver": self.driver,
            "seed": self.seed,
            "constraints": (
                None if self.constraints is None else self.constraints.to_dict()
            ),
            "n_evaluations": self.n_evaluations,
            "n_feasible": self.feasible_evaluations,
            "evaluated": [c.to_dict() for c in self.evaluated],
            "population": [c.to_dict() for c in self.population],
            "front": self.front.to_dict(include_configs=True),
        }

    def to_json(self) -> str:
        """Canonical JSON — what the byte-identity tests compare."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, d: dict) -> "SearchResult":
        constraints = (
            None
            if d.get("constraints") is None
            else SearchConstraints.from_dict(d["constraints"])
        )
        return cls(
            evaluated=[Candidate.from_dict(c) for c in d["evaluated"]],
            population=[Candidate.from_dict(c) for c in d["population"]],
            front=ParetoFront.from_dict(d["front"]),
            driver=d.get("driver"),
            seed=d.get("seed"),
            constraints=constraints,
        )


def _resolve_warm_start(warm_start: WarmStart, spec: SpaceSpec) -> List[ArchConfig]:
    """Extract seed architectures from whatever the caller handed over."""
    if warm_start is None:
        return []
    if isinstance(warm_start, SearchResult):
        configs = warm_start.front_configs
    elif isinstance(warm_start, ParetoFront):
        configs = [p.config for p in warm_start if p.config is not None]
    else:
        configs = list(warm_start)
    if not configs:
        raise ValueError(
            "warm_start carries no architecture identities (a front built "
            "without configs cannot seed a population)"
        )
    for config in configs:
        if not isinstance(config, ArchConfig):
            raise TypeError(f"warm_start entries must be ArchConfig, got {config!r}")
        if config.family != spec.family:
            raise ValueError(
                f"warm_start config family {config.family!r} does not match "
                f"the search space {spec.family!r}"
            )
    return configs


class _SearchBase:
    def __init__(
        self,
        spec: SpaceSpec,
        oracle,
        proxy: SyntheticAccuracyProxy,
        *,
        constraints: Optional[SearchConstraints] = None,
        warm_start: WarmStart = None,
        checkpoint_dir: "Union[str, Path, None]" = None,
    ):
        if proxy.spec.family != spec.family:
            raise ValueError("proxy and search must target the same space")
        self.spec = spec
        self.oracle = oracle
        self.proxy = proxy
        # An inert (all-None) constraints object is treated as absent so
        # the unconstrained fast paths — and their byte-locked traces —
        # stay in force.
        self.constraints = (
            constraints if constraints is not None and constraints.is_active else None
        )
        self.warm_configs = _resolve_warm_start(warm_start, spec)
        self.checkpoint_dir = None if checkpoint_dir is None else Path(checkpoint_dir)

    def _evaluate(self, configs: Sequence[ArchConfig]) -> List[Candidate]:
        latencies = self.oracle.latency_batch(list(configs))
        accuracies = self.proxy.accuracy_batch(list(configs))
        return [
            Candidate(config=c, latency_s=float(l), accuracy=float(a))
            for c, l, a in zip(configs, latencies, accuracies)
        ]

    def _violations(self, candidates: Sequence[Candidate]) -> np.ndarray:
        if self.constraints is None:
            return np.zeros(len(candidates))
        return self.constraints.violations(
            [c.config for c in candidates], [c.latency_s for c in candidates]
        )

    @staticmethod
    def _front_of(candidates: Sequence[Candidate]) -> ParetoFront:
        return ParetoFront.from_points([c.point() for c in candidates])

    def _result_front(self, evaluated: Sequence[Candidate]) -> ParetoFront:
        """The reportable front: feasible-only when feasibility exists."""
        if self.constraints is None:
            return self._front_of(evaluated)
        violations = self._violations(evaluated)
        feasible = [c for c, v in zip(evaluated, violations) if v <= 0.0]
        if feasible:
            return self._front_of(feasible)
        # Nothing feasible: report the least-violating candidates' front so
        # the caller sees where the search was pinned against the budgets.
        v_min = violations.min() if len(violations) else 0.0
        nearest = [c for c, v in zip(evaluated, violations) if v <= v_min]
        return self._front_of(nearest)

    def _result(
        self, evaluated: List[Candidate], population: List[Candidate]
    ) -> SearchResult:
        return SearchResult(
            evaluated=evaluated,
            population=population,
            front=self._result_front(evaluated),
            driver=self.name,
            seed=self.seed,
            constraints=self.constraints,
        )

    def _fingerprint_payload(self) -> dict:
        """The shared identity fields every driver fingerprint includes."""
        return {
            "driver": self.name,
            "space": self.spec.family,
            "oracle": getattr(self.oracle, "name", type(self.oracle).__name__),
            "proxy": {
                "floor": self.proxy.floor,
                "ceiling": self.proxy.ceiling,
                "noise_pp": self.proxy.noise_pp,
                "seed": self.proxy.seed,
            },
            "constraints": (
                None if self.constraints is None else self.constraints.to_dict()
            ),
            "warm_start": [c.to_dict() for c in self.warm_configs],
            "seed": self.seed,
        }

    def fingerprint(self) -> str:
        digest = hashlib.sha256(
            json.dumps(self._fingerprint_payload(), sort_keys=True).encode()
        )
        return digest.hexdigest()

    def _checkpoint_store(self) -> Optional[SearchCheckpoint]:
        if self.checkpoint_dir is None:
            return None
        return SearchCheckpoint(
            self.checkpoint_dir, fingerprint=self.fingerprint(), driver=self.name
        )


class RandomSearch(_SearchBase):
    """Uniform sampling under a fixed evaluation budget.

    Warm-start configs occupy the head of the budget (capped at it); the
    remainder is sampled uniformly.  With ``checkpoint_dir`` the budget is
    evaluated in chunks of ``checkpoint_every`` configs, each committed
    atomically, so a killed run resumes after its last durable chunk and
    reproduces the uninterrupted run's bytes exactly.
    """

    name = "random"

    def __init__(
        self,
        spec: SpaceSpec,
        oracle,
        proxy: SyntheticAccuracyProxy,
        *,
        budget: int = 128,
        seed: int = 0,
        constraints: Optional[SearchConstraints] = None,
        warm_start: WarmStart = None,
        checkpoint_dir: "Union[str, Path, None]" = None,
        checkpoint_every: int = 16,
    ):
        super().__init__(
            spec,
            oracle,
            proxy,
            constraints=constraints,
            warm_start=warm_start,
            checkpoint_dir=checkpoint_dir,
        )
        if budget < 1:
            raise ValueError("budget must be >= 1")
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        self.budget = int(budget)
        self.seed = int(seed)
        self.checkpoint_every = int(checkpoint_every)

    def _fingerprint_payload(self) -> dict:
        return {
            **super()._fingerprint_payload(),
            "budget": self.budget,
            "checkpoint_every": self.checkpoint_every,
        }

    def _configs(self) -> List[ArchConfig]:
        """The full evaluation schedule, a pure function of the seed."""
        warm = self.warm_configs[: self.budget]
        sampler = RandomSampler(
            self.spec, rng=np.random.default_rng([self.seed, _SLOT_INIT])
        )
        return warm + sampler.sample_batch(self.budget - len(warm))

    def run(self, max_chunks: Optional[int] = None) -> SearchResult:
        """Run (or resume) the sweep.

        ``max_chunks`` bounds how many *pending* checkpoint chunks this
        call evaluates before returning — the hook the kill/resume tests
        use; production callers leave it ``None`` (and without a
        ``checkpoint_dir`` it is ignored: the whole budget is one batch).
        """
        configs = self._configs()
        store = self._checkpoint_store()
        if store is None:
            evaluated = self._evaluate(configs)
            return self._result(evaluated, list(evaluated))

        state = store.load_state()
        evaluated = (
            [Candidate.from_dict(d) for d in state.evaluated] if state else []
        )
        chunks = [
            configs[lo : lo + self.checkpoint_every]
            for lo in range(0, len(configs), self.checkpoint_every)
        ]
        start = state.step + 1 if state else 0
        executed = 0
        for index in range(start, len(chunks)):
            if max_chunks is not None and executed >= max_chunks:
                break
            batch = self._evaluate(chunks[index])
            evaluated.extend(batch)
            store.write_step(index, [c.to_dict() for c in batch], [])
            executed += 1
        return self._result(evaluated, list(evaluated))


class EvolutionarySearch(_SearchBase):
    """NSGA-II-style multi-objective evolutionary search."""

    name = "evolutionary"

    def __init__(
        self,
        spec: SpaceSpec,
        oracle,
        proxy: SyntheticAccuracyProxy,
        *,
        population_size: int = 24,
        generations: int = 10,
        tournament_size: int = 2,
        crossover_prob: float = 0.9,
        p_depth: float = 0.25,
        p_block: float = 0.2,
        seed: int = 0,
        constraints: Optional[SearchConstraints] = None,
        warm_start: WarmStart = None,
        checkpoint_dir: "Union[str, Path, None]" = None,
    ):
        super().__init__(
            spec,
            oracle,
            proxy,
            constraints=constraints,
            warm_start=warm_start,
            checkpoint_dir=checkpoint_dir,
        )
        if population_size < 2:
            raise ValueError("population_size must be >= 2")
        if generations < 1:
            raise ValueError("generations must be >= 1")
        if tournament_size < 1:
            raise ValueError("tournament_size must be >= 1")
        if not 0.0 <= crossover_prob <= 1.0:
            raise ValueError("crossover_prob must be in [0, 1]")
        self.population_size = int(population_size)
        self.generations = int(generations)
        self.tournament_size = int(tournament_size)
        self.crossover_prob = float(crossover_prob)
        self.p_depth = float(p_depth)
        self.p_block = float(p_block)
        self.seed = int(seed)

    def _fingerprint_payload(self) -> dict:
        return {
            **super()._fingerprint_payload(),
            "population_size": self.population_size,
            "generations": self.generations,
            "tournament_size": self.tournament_size,
            "crossover_prob": self.crossover_prob,
            "p_depth": self.p_depth,
            "p_block": self.p_block,
        }

    # ------------------------------------------------------------------ #

    def _rank_and_crowding(
        self, candidates: Sequence[Candidate]
    ) -> Tuple[np.ndarray, np.ndarray]:
        points = [c.point() for c in candidates]
        if self.constraints is None:
            ranks = non_dominated_rank(points)
            collapse = False
        else:
            ranks = constrained_non_dominated_rank(
                points, self._violations(candidates)
            )
            # Selection clamped against a budget boundary mass-produces
            # exact clones of the best boundary point; collapsing their
            # crowding keeps the tournament from treating copies as
            # diversity (see `crowding_distance`).
            collapse = True
        crowding = np.zeros(len(points))
        for rank in np.unique(ranks):
            idx = np.flatnonzero(ranks == rank)
            crowding[idx] = crowding_distance(
                [points[i] for i in idx], collapse_duplicates=collapse
            )
        return ranks, crowding

    def _tournament(
        self,
        rng: np.random.Generator,
        ranks: np.ndarray,
        crowding: np.ndarray,
    ) -> int:
        entrants = rng.integers(len(ranks), size=self.tournament_size)
        # Lower rank wins; within a rank, the less crowded point wins;
        # the earliest index breaks exact ties deterministically.
        return int(min(entrants, key=lambda i: (ranks[i], -crowding[i], i)))

    def _select_survivors(
        self, candidates: List[Candidate]
    ) -> List[Candidate]:
        ranks, crowding = self._rank_and_crowding(candidates)
        order = sorted(
            range(len(candidates)), key=lambda i: (ranks[i], -crowding[i], i)
        )
        return [candidates[i] for i in order[: self.population_size]]

    def _initial_configs(self) -> List[ArchConfig]:
        """Warm-start members first, random fill for the remainder."""
        warm = self.warm_configs[: self.population_size]
        sampler = RandomSampler(
            self.spec, rng=np.random.default_rng([self.seed, _SLOT_INIT])
        )
        return warm + sampler.sample_batch(self.population_size - len(warm))

    def _run_generation(
        self, generation: int, population: List[Candidate]
    ) -> Tuple[List[Candidate], List[Candidate]]:
        """One NSGA-II generation: ``(offspring, survivors)``."""
        rng_sel = np.random.default_rng([self.seed, _SLOT_SELECT, generation])
        rng_var = np.random.default_rng([self.seed, _SLOT_VARY, generation])
        ranks, crowding = self._rank_and_crowding(population)

        children: List[ArchConfig] = []
        while len(children) < self.population_size:
            a = population[self._tournament(rng_sel, ranks, crowding)]
            b = population[self._tournament(rng_sel, ranks, crowding)]
            if rng_var.random() < self.crossover_prob:
                first, second = crossover(a.config, b.config, self.spec, rng_var)
            else:
                first, second = a.config, b.config
            for child in (first, second):
                if len(children) < self.population_size:
                    children.append(
                        mutate(
                            child,
                            self.spec,
                            rng_var,
                            p_depth=self.p_depth,
                            p_block=self.p_block,
                        )
                    )
        offspring = self._evaluate(children)
        survivors = self._select_survivors(population + offspring)
        return offspring, survivors

    def run(self, max_generations: Optional[int] = None) -> SearchResult:
        """Run (or resume) the search.

        ``max_generations`` bounds how many *new* generations this call
        executes before returning — the hook the kill/resume tests use to
        interrupt a checkpointed search mid-trajectory; production callers
        leave it ``None``.  The returned result always reflects every
        generation completed so far, by this call or a previous one.
        """
        store = self._checkpoint_store()
        state = store.load_state() if store is not None else None

        if state is None:
            population = self._evaluate(self._initial_configs())
            evaluated: List[Candidate] = list(population)
            if store is not None:
                dicts = [c.to_dict() for c in population]
                store.write_step(0, dicts, dicts)
            start = 1
        else:
            population = [Candidate.from_dict(d) for d in state.population]
            evaluated = [Candidate.from_dict(d) for d in state.evaluated]
            start = state.step + 1

        executed = 0
        for generation in range(start, self.generations + 1):
            if max_generations is not None and executed >= max_generations:
                break
            offspring, population = self._run_generation(generation, population)
            evaluated.extend(offspring)
            if store is not None:
                store.write_step(
                    generation,
                    [c.to_dict() for c in offspring],
                    [c.to_dict() for c in population],
                )
            executed += 1

        return self._result(evaluated, population)
