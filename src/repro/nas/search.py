"""Search drivers over an architecture space: random and evolutionary.

Both drivers optimise the bi-objective (minimize oracle latency, maximize
proxy accuracy) and accept *any* `LatencyOracle` — a fitted surrogate via
`PredictorOracle` or the device itself via `DeviceOracle` — which is the
whole point of the Fig. 2(b) analysis: run the identical seeded search
under both oracles and measure how far the surrogate displaced the front.

`EvolutionarySearch` is an NSGA-II-style loop: binary tournaments on
(non-domination rank, crowding distance), unit-wise crossover and
block-level mutation from `repro.archspace.ops`, and elitist environmental
selection over parents + children.  Every random draw flows through
generators derived from ``(seed, slot, generation)``, so a seeded run
reproduces its population trajectory exactly — the golden-trace test
locks one such trajectory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..archspace.config import ArchConfig
from ..archspace.ops import crossover, mutate
from ..archspace.sampling import RandomSampler
from ..archspace.spaces import SpaceSpec
from .pareto import ParetoFront, ParetoPoint, crowding_distance, non_dominated_rank
from .proxy import SyntheticAccuracyProxy

__all__ = ["Candidate", "SearchResult", "RandomSearch", "EvolutionarySearch"]

# RNG slots, disjoint from the ESM loop's (see repro.core.loop).
_SLOT_INIT = 211
_SLOT_SELECT = 223
_SLOT_VARY = 227


@dataclass(frozen=True)
class Candidate:
    """An evaluated architecture: oracle latency plus proxy accuracy."""

    config: ArchConfig
    latency_s: float
    accuracy: float

    def point(self) -> ParetoPoint:
        return ParetoPoint(self.latency_s, self.accuracy, self.config)

    def to_dict(self) -> dict:
        return {
            "config": self.config.to_dict(),
            "latency_s": self.latency_s,
            "accuracy": self.accuracy,
        }


@dataclass
class SearchResult:
    """Everything a search evaluated, its final population, and the front."""

    evaluated: List[Candidate]
    population: List[Candidate]
    front: ParetoFront

    @property
    def n_evaluations(self) -> int:
        return len(self.evaluated)

    @property
    def front_configs(self) -> List[ArchConfig]:
        return [p.config for p in self.front if p.config is not None]


class _SearchBase:
    def __init__(self, spec: SpaceSpec, oracle, proxy: SyntheticAccuracyProxy):
        if proxy.spec.family != spec.family:
            raise ValueError("proxy and search must target the same space")
        self.spec = spec
        self.oracle = oracle
        self.proxy = proxy

    def _evaluate(self, configs: Sequence[ArchConfig]) -> List[Candidate]:
        latencies = self.oracle.latency_batch(list(configs))
        accuracies = self.proxy.accuracy_batch(list(configs))
        return [
            Candidate(config=c, latency_s=float(l), accuracy=float(a))
            for c, l, a in zip(configs, latencies, accuracies)
        ]

    @staticmethod
    def _front_of(candidates: Sequence[Candidate]) -> ParetoFront:
        return ParetoFront.from_points([c.point() for c in candidates])


class RandomSearch(_SearchBase):
    """Uniform sampling under a fixed evaluation budget."""

    name = "random"

    def __init__(
        self,
        spec: SpaceSpec,
        oracle,
        proxy: SyntheticAccuracyProxy,
        *,
        budget: int = 128,
        seed: int = 0,
    ):
        super().__init__(spec, oracle, proxy)
        if budget < 1:
            raise ValueError("budget must be >= 1")
        self.budget = int(budget)
        self.seed = int(seed)

    def run(self) -> SearchResult:
        sampler = RandomSampler(
            self.spec, rng=np.random.default_rng([self.seed, _SLOT_INIT])
        )
        evaluated = self._evaluate(sampler.sample_batch(self.budget))
        return SearchResult(
            evaluated=evaluated,
            population=list(evaluated),
            front=self._front_of(evaluated),
        )


class EvolutionarySearch(_SearchBase):
    """NSGA-II-style multi-objective evolutionary search."""

    name = "evolutionary"

    def __init__(
        self,
        spec: SpaceSpec,
        oracle,
        proxy: SyntheticAccuracyProxy,
        *,
        population_size: int = 24,
        generations: int = 10,
        tournament_size: int = 2,
        crossover_prob: float = 0.9,
        p_depth: float = 0.25,
        p_block: float = 0.2,
        seed: int = 0,
    ):
        super().__init__(spec, oracle, proxy)
        if population_size < 2:
            raise ValueError("population_size must be >= 2")
        if generations < 1:
            raise ValueError("generations must be >= 1")
        if tournament_size < 1:
            raise ValueError("tournament_size must be >= 1")
        if not 0.0 <= crossover_prob <= 1.0:
            raise ValueError("crossover_prob must be in [0, 1]")
        self.population_size = int(population_size)
        self.generations = int(generations)
        self.tournament_size = int(tournament_size)
        self.crossover_prob = float(crossover_prob)
        self.p_depth = float(p_depth)
        self.p_block = float(p_block)
        self.seed = int(seed)

    # ------------------------------------------------------------------ #

    @staticmethod
    def _rank_and_crowding(
        candidates: Sequence[Candidate],
    ) -> Tuple[np.ndarray, np.ndarray]:
        points = [c.point() for c in candidates]
        ranks = non_dominated_rank(points)
        crowding = np.zeros(len(points))
        for rank in np.unique(ranks):
            idx = np.flatnonzero(ranks == rank)
            crowding[idx] = crowding_distance([points[i] for i in idx])
        return ranks, crowding

    def _tournament(
        self,
        rng: np.random.Generator,
        ranks: np.ndarray,
        crowding: np.ndarray,
    ) -> int:
        entrants = rng.integers(len(ranks), size=self.tournament_size)
        # Lower rank wins; within a rank, the less crowded point wins;
        # the earliest index breaks exact ties deterministically.
        return int(min(entrants, key=lambda i: (ranks[i], -crowding[i], i)))

    def _select_survivors(
        self, candidates: List[Candidate]
    ) -> List[Candidate]:
        ranks, crowding = self._rank_and_crowding(candidates)
        order = sorted(
            range(len(candidates)), key=lambda i: (ranks[i], -crowding[i], i)
        )
        return [candidates[i] for i in order[: self.population_size]]

    def run(self) -> SearchResult:
        sampler = RandomSampler(
            self.spec, rng=np.random.default_rng([self.seed, _SLOT_INIT])
        )
        population = self._evaluate(sampler.sample_batch(self.population_size))
        evaluated: List[Candidate] = list(population)

        for generation in range(1, self.generations + 1):
            rng_sel = np.random.default_rng([self.seed, _SLOT_SELECT, generation])
            rng_var = np.random.default_rng([self.seed, _SLOT_VARY, generation])
            ranks, crowding = self._rank_and_crowding(population)

            children: List[ArchConfig] = []
            while len(children) < self.population_size:
                a = population[self._tournament(rng_sel, ranks, crowding)]
                b = population[self._tournament(rng_sel, ranks, crowding)]
                if rng_var.random() < self.crossover_prob:
                    first, second = crossover(a.config, b.config, self.spec, rng_var)
                else:
                    first, second = a.config, b.config
                for child in (first, second):
                    if len(children) < self.population_size:
                        children.append(
                            mutate(
                                child,
                                self.spec,
                                rng_var,
                                p_depth=self.p_depth,
                                p_block=self.p_block,
                            )
                        )
            offspring = self._evaluate(children)
            evaluated.extend(offspring)
            population = self._select_survivors(population + offspring)

        return SearchResult(
            evaluated=evaluated,
            population=population,
            front=self._front_of(evaluated),
        )
