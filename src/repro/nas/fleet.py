"""Many-seed search fleets: statistically defensible NAS results.

A single seeded search is an anecdote; reviewers (and deployments) want
the distribution.  `SearchFleet` runs the *same* search — driver, budgets,
constraints, warm start — under N different seeds, farms the members out
to a spawn-safe process pool (falling back to serial execution when the
pool cannot be created or breaks mid-fleet, exactly like
`repro.profiling.campaign.CampaignRunner`), and aggregates the per-seed
Pareto fronts into median/IQR dispersion bands over hypervolume, front
size, and feasible-evaluation counts.

Durability matches the rest of the repo: with a ``fleet_dir`` every
member search checkpoints per generation under
``member_<seed>/checkpoint`` and commits its finished `SearchResult` JSON
atomically to ``member_<seed>/result.json``; a killed fleet resumes
completed members from their cached results, partially-run members from
their generation checkpoints, and produces a byte-identical
`FleetResult` JSON — asserted by the fault tests and by the committed
``BENCH_search_fleet.json`` record.

CLI::

    PYTHONPATH=src python -m repro.nas.fleet --smoke
"""

from __future__ import annotations

import argparse
import hashlib
import json
import multiprocessing
import sys
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..archspace.config import ArchConfig
from ..archspace.spaces import SPACE_NAMES, space_by_name
from ..utils import atomic_write_text
from .constraints import SearchConstraints
from .proxy import SyntheticAccuracyProxy
from .search import (
    EvolutionarySearch,
    RandomSearch,
    SearchResult,
    _resolve_warm_start,
)

__all__ = ["FleetError", "FleetResult", "SearchFleet", "main"]

FLEET_RESULT_FORMAT_VERSION = 1
_MANIFEST = "fleet_manifest.json"

_DRIVERS = {"random": RandomSearch, "evolutionary": EvolutionarySearch}


class FleetError(RuntimeError):
    """A fleet cannot proceed (bad resume state, invalid membership)."""


# ---------------------------------------------------------------------- #
# Member execution (shared by the serial path and pool workers)
# ---------------------------------------------------------------------- #


@dataclass
class _MemberTask:
    """Everything one fleet member needs, picklable for a pool worker.

    The oracle travels *by value* (the campaign runner ships whole devices
    the same way); every stochastic draw in a search flows from
    ``(seed, slot, step)`` streams, so a copy reproduces exactly the
    trajectory the parent's oracle would have produced.
    """

    driver: str
    spec: object
    oracle: object
    proxy: SyntheticAccuracyProxy
    params: dict
    seed: int
    constraints: Optional[SearchConstraints]
    warm_configs: List[ArchConfig]
    checkpoint_dir: Optional[str]


def _build_search(task: _MemberTask):
    cls = _DRIVERS[task.driver]
    return cls(
        task.spec,
        task.oracle,
        task.proxy,
        seed=task.seed,
        constraints=task.constraints,
        warm_start=task.warm_configs or None,
        checkpoint_dir=task.checkpoint_dir,
        **task.params,
    )


def _run_member(task: _MemberTask) -> dict:
    """Run (or resume) one member search; returns its result payload."""
    return _build_search(task).run().to_dict()


# ---------------------------------------------------------------------- #
# Aggregation
# ---------------------------------------------------------------------- #


def _band(values: Sequence[float]) -> dict:
    """Median/IQR dispersion band of one per-seed statistic."""
    arr = np.asarray(list(values), dtype=float)
    q25, median, q75 = np.percentile(arr, [25.0, 50.0, 75.0])
    return {
        "median": float(median),
        "iqr": float(q75 - q25),
        "q25": float(q25),
        "q75": float(q75),
        "min": float(arr.min()),
        "max": float(arr.max()),
    }


@dataclass
class FleetResult:
    """Per-seed search results plus their dispersion aggregate."""

    driver: str
    seeds: List[int]
    results: Dict[int, SearchResult]
    constraints: Optional[SearchConstraints]
    reference_point: Tuple[float, float]  # (latency_s, accuracy), shared
    degradations: List[dict] = field(default_factory=list)

    def hypervolumes(self) -> Dict[int, float]:
        ref_latency, ref_accuracy = self.reference_point
        return {
            seed: self.results[seed].front.hypervolume(ref_latency, ref_accuracy)
            for seed in self.seeds
        }

    def to_dict(self) -> dict:
        """Deterministic JSON payload (no wall clock, seeds sorted)."""
        hv = self.hypervolumes()
        members = {}
        for seed in sorted(self.seeds):
            result = self.results[seed]
            members[str(seed)] = {
                "hypervolume": hv[seed],
                "n_evaluations": result.n_evaluations,
                "n_feasible": result.feasible_evaluations,
                "front": result.front.to_dict(),
            }
        return {
            "format_version": FLEET_RESULT_FORMAT_VERSION,
            "kind": "search_fleet_result",
            "driver": self.driver,
            "n_seeds": len(self.seeds),
            "seeds": sorted(self.seeds),
            "constraints": (
                None if self.constraints is None else self.constraints.to_dict()
            ),
            "reference_point": [
                float(self.reference_point[0]),
                float(self.reference_point[1]),
            ],
            "members": members,
            "dispersion": {
                "hypervolume": _band(hv.values()),
                "front_size": _band(
                    [len(self.results[s].front) for s in self.seeds]
                ),
                "n_feasible": _band(
                    [self.results[s].feasible_evaluations for s in self.seeds]
                ),
            },
            "degradations": [dict(d) for d in self.degradations],
        }

    def to_json(self) -> str:
        """Canonical JSON — what the byte-identity assertions compare."""
        return json.dumps(self.to_dict(), sort_keys=True)


# ---------------------------------------------------------------------- #
# The fleet driver
# ---------------------------------------------------------------------- #


class SearchFleet:
    """Run one search configuration under N seeds and aggregate fronts."""

    def __init__(
        self,
        spec,
        oracle,
        proxy: SyntheticAccuracyProxy,
        *,
        driver: str = "evolutionary",
        search_params: Optional[dict] = None,
        seeds: Optional[Sequence[int]] = None,
        n_seeds: int = 8,
        seed_base: int = 0,
        constraints: Optional[SearchConstraints] = None,
        warm_start=None,
        fleet_dir: "Union[str, Path, None]" = None,
        workers: int = 1,
        mp_context: str = "spawn",
    ):
        if driver not in _DRIVERS:
            raise ValueError(
                f"driver must be one of {sorted(_DRIVERS)}, got {driver!r}"
            )
        if seeds is None:
            if n_seeds < 1:
                raise ValueError("n_seeds must be >= 1")
            seeds = [seed_base + i for i in range(n_seeds)]
        seeds = [int(s) for s in seeds]
        if len(set(seeds)) != len(seeds):
            raise ValueError("fleet seeds must be unique")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.spec = spec
        self.oracle = oracle
        self.proxy = proxy
        self.driver = driver
        self.search_params = dict(search_params or {})
        self.seeds = seeds
        self.constraints = (
            constraints
            if constraints is not None and constraints.is_active
            else None
        )
        self.warm_configs = _resolve_warm_start(warm_start, spec)
        self.fleet_dir = None if fleet_dir is None else Path(fleet_dir)
        self.workers = int(workers)
        self.mp_context = str(mp_context)

    # ------------------------------- identity -------------------------- #

    def fingerprint(self) -> str:
        """Hash of everything that determines the fleet's result bytes."""
        payload = {
            "driver": self.driver,
            "space": self.spec.family,
            "oracle": getattr(self.oracle, "name", type(self.oracle).__name__),
            "proxy": {
                "floor": self.proxy.floor,
                "ceiling": self.proxy.ceiling,
                "noise_pp": self.proxy.noise_pp,
                "seed": self.proxy.seed,
            },
            "search_params": self.search_params,
            "seeds": self.seeds,
            "constraints": (
                None if self.constraints is None else self.constraints.to_dict()
            ),
            "warm_start": [c.to_dict() for c in self.warm_configs],
        }
        return hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode()
        ).hexdigest()

    def _member_dir(self, seed: int) -> Optional[Path]:
        if self.fleet_dir is None:
            return None
        return self.fleet_dir / f"member_{seed:05d}"

    def _task(self, seed: int) -> _MemberTask:
        member_dir = self._member_dir(seed)
        return _MemberTask(
            driver=self.driver,
            spec=self.spec,
            oracle=self.oracle,
            proxy=self.proxy,
            params=self.search_params,
            seed=seed,
            constraints=self.constraints,
            warm_configs=self.warm_configs,
            checkpoint_dir=(
                None if member_dir is None else str(member_dir / "checkpoint")
            ),
        )

    # ------------------------------- manifest -------------------------- #

    def _manifest_path(self) -> Path:
        return self.fleet_dir / _MANIFEST

    def _load_or_init_manifest(self) -> Optional[dict]:
        if self.fleet_dir is None:
            return None
        self.fleet_dir.mkdir(parents=True, exist_ok=True)
        path = self._manifest_path()
        if path.exists():
            try:
                manifest = json.loads(path.read_text())
                stored = manifest["fingerprint"]
            except (json.JSONDecodeError, KeyError, TypeError):
                manifest = None
            else:
                if stored != self.fingerprint():
                    raise FleetError(
                        f"fleet directory {self.fleet_dir} belongs to a "
                        "different fleet (fingerprint mismatch); refusing "
                        "to mix member results"
                    )
                manifest.setdefault("degradations", [])
                return manifest
        manifest = {
            "format_version": FLEET_RESULT_FORMAT_VERSION,
            "kind": "search_fleet_manifest",
            "fingerprint": self.fingerprint(),
            "driver": self.driver,
            "seeds": self.seeds,
            "degradations": [],
        }
        self._save_manifest(manifest)
        return manifest

    def _save_manifest(self, manifest: dict) -> None:
        atomic_write_text(
            self._manifest_path(), json.dumps(manifest, sort_keys=True)
        )

    def _record_degradation(
        self, manifest: Optional[dict], degradations: List[dict], kind: str, **details
    ) -> None:
        entry = {"kind": kind, **details}
        degradations.append(entry)
        if manifest is not None:
            manifest.setdefault("degradations", []).append(entry)
            self._save_manifest(manifest)

    # ------------------------------- members --------------------------- #

    def _load_cached_member(self, seed: int) -> Optional[dict]:
        """A previously committed member result, if intact."""
        member_dir = self._member_dir(seed)
        if member_dir is None:
            return None
        path = member_dir / "result.json"
        if not path.exists():
            return None
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError:
            payload = None
        if (
            not isinstance(payload, dict)
            or payload.get("kind") != "search_result"
            or payload.get("seed") != seed
        ):
            # Torn or foreign: quarantine and recompute (the member's own
            # generation checkpoints make the rerun cheap).
            path.rename(path.with_name("result.json.corrupt"))
            return None
        return payload

    def _commit_member(self, seed: int, payload: dict) -> None:
        member_dir = self._member_dir(seed)
        if member_dir is None:
            return
        member_dir.mkdir(parents=True, exist_ok=True)
        atomic_write_text(
            member_dir / "result.json", json.dumps(payload, sort_keys=True)
        )

    def _run_serial(
        self, pending: List[int], payloads: Dict[int, dict]
    ) -> None:
        for seed in pending:
            if seed in payloads:
                continue
            payloads[seed] = _run_member(self._task(seed))
            self._commit_member(seed, payloads[seed])

    def _run_parallel(
        self,
        pending: List[int],
        payloads: Dict[int, dict],
        manifest: Optional[dict],
        degradations: List[dict],
    ) -> None:
        """Pool execution with the campaign's degrade-don't-abort contract."""
        try:
            pool = ProcessPoolExecutor(
                max_workers=min(self.workers, len(pending)),
                mp_context=multiprocessing.get_context(self.mp_context),
            )
        except (ImportError, NotImplementedError, OSError, ValueError) as exc:
            self._record_degradation(
                manifest,
                degradations,
                "pool_unavailable",
                error=f"{type(exc).__name__}: {exc}",
                pending=list(pending),
            )
            self._run_serial(pending, payloads)
            return
        try:
            with pool:
                futures = {
                    pool.submit(_run_member, self._task(seed)): seed
                    for seed in pending
                }
                for future in as_completed(futures):
                    seed = futures[future]
                    payloads[seed] = future.result()
                    self._commit_member(seed, payloads[seed])
        except BrokenProcessPool as exc:
            still_pending = [s for s in pending if s not in payloads]
            self._record_degradation(
                manifest,
                degradations,
                "broken_process_pool",
                error=f"{type(exc).__name__}: {exc}",
                completed_before_failure=len(pending) - len(still_pending),
                pending=still_pending,
            )
            self._run_serial(still_pending, payloads)

    # -------------------------------- run ------------------------------ #

    def run(self) -> FleetResult:
        """Run (or resume) every member and aggregate the fronts.

        Member completion order never enters the result: payloads are
        keyed by seed and the aggregate sorts them, so a parallel fleet,
        a serial fleet, and a killed-and-resumed fleet all produce the
        same `FleetResult.to_json` bytes.
        """
        manifest = self._load_or_init_manifest()
        degradations: List[dict] = list(
            manifest["degradations"] if manifest is not None else []
        )
        payloads: Dict[int, dict] = {}
        for seed in self.seeds:
            cached = self._load_cached_member(seed)
            if cached is not None:
                payloads[seed] = cached
        pending = [s for s in self.seeds if s not in payloads]

        if self.workers > 1 and len(pending) > 1:
            self._run_parallel(pending, payloads, manifest, degradations)
        else:
            self._run_serial(pending, payloads)

        # Normalise through the JSON round trip so a cached member and a
        # freshly computed one are bit-for-bit the same kind of object.
        results = {
            seed: SearchResult.from_dict(payloads[seed]) for seed in self.seeds
        }
        reference = self._reference_point(results)
        return FleetResult(
            driver=self.driver,
            seeds=list(self.seeds),
            results=results,
            constraints=self.constraints,
            reference_point=reference,
            degradations=degradations,
        )

    def _reference_point(
        self, results: Dict[int, SearchResult]
    ) -> Tuple[float, float]:
        """A shared hypervolume reference, worse than anything evaluated.

        10% beyond the slowest latency any member ever evaluated, one
        accuracy point below the proxy floor — deterministic because the
        member trajectories are.
        """
        worst_latency = max(
            c.latency_s for r in results.values() for c in r.evaluated
        )
        return (1.1 * worst_latency, self.proxy.floor - 1.0)


# ---------------------------------------------------------------------- #
# CLI
# ---------------------------------------------------------------------- #


def format_fleet_report(payload: dict) -> str:
    """The per-seed / dispersion table the CLI (and CI summary) prints."""
    lines = [
        f"driver={payload['driver']}  seeds={payload['n_seeds']}  "
        f"constraints={payload['constraints'] or 'none'}"
    ]
    lines.append(f"{'seed':>6} {'hypervolume':>13} {'front':>6} {'feasible':>9}")
    lines.append("-" * 40)
    for seed in payload["seeds"]:
        member = payload["members"][str(seed)]
        lines.append(
            f"{seed:>6} {member['hypervolume']:13.6f} "
            f"{member['front']['size']:>6} "
            f"{member['n_feasible']:>4}/{member['n_evaluations']}"
        )
    band = payload["dispersion"]["hypervolume"]
    lines.append("-" * 40)
    lines.append(
        f"hypervolume median {band['median']:.6f}  "
        f"IQR {band['iqr']:.6f}  [{band['min']:.6f}, {band['max']:.6f}]"
    )
    if payload["degradations"]:
        kinds = ", ".join(d["kind"] for d in payload["degradations"])
        lines.append(f"degradations: {kinds}")
    return "\n".join(lines)


def _constraints_from_args(args) -> Optional[SearchConstraints]:
    constraints = SearchConstraints(
        max_latency_s=args.max_latency,
        max_params=args.max_params,
        max_flops=args.max_flops,
    )
    return constraints if constraints.is_active else None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.nas.fleet",
        description="Many-seed NAS search with dispersion-band aggregation.",
    )
    parser.add_argument("--space", choices=SPACE_NAMES, default="resnet")
    parser.add_argument("--device", default="rtx4090")
    parser.add_argument(
        "--driver", choices=sorted(_DRIVERS), default="evolutionary"
    )
    parser.add_argument("--n-seeds", type=int, default=8)
    parser.add_argument("--seed-base", type=int, default=0)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--population-size", type=int, default=None)
    parser.add_argument("--generations", type=int, default=None)
    parser.add_argument("--budget", type=int, default=None)
    parser.add_argument("--max-latency", type=float, default=None)
    parser.add_argument("--max-params", type=float, default=None)
    parser.add_argument("--max-flops", type=float, default=None)
    parser.add_argument(
        "--warm-start",
        default=None,
        help="path to a SearchResult JSON whose front seeds every member",
    )
    parser.add_argument(
        "--workdir",
        default=None,
        help="fleet directory: member checkpoints + results, kept for resume",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced budgets: finishes in seconds",
    )
    parser.add_argument("--out", default="fleet-report.json")
    args = parser.parse_args(argv)

    from ..hardware.simulator import SimulatedDevice
    from ..predictors.oracle import DeviceOracle

    spec = space_by_name(args.space)
    device = SimulatedDevice(args.device, seed=0)
    proxy = SyntheticAccuracyProxy(spec, seed=0)

    if args.driver == "evolutionary":
        params = {
            "population_size": args.population_size
            or (10 if args.smoke else 24),
            "generations": args.generations or (4 if args.smoke else 10),
        }
    else:
        params = {"budget": args.budget or (40 if args.smoke else 128)}
    n_seeds = min(args.n_seeds, 5) if args.smoke else args.n_seeds

    warm_start = None
    if args.warm_start is not None:
        warm_start = SearchResult.from_dict(
            json.loads(Path(args.warm_start).read_text())
        )

    fleet = SearchFleet(
        spec,
        DeviceOracle(device),
        proxy,
        driver=args.driver,
        search_params=params,
        n_seeds=n_seeds,
        seed_base=args.seed_base,
        constraints=_constraints_from_args(args),
        warm_start=warm_start,
        fleet_dir=args.workdir,
        workers=args.workers,
    )
    result = fleet.run()
    payload = result.to_dict()
    atomic_write_text(Path(args.out), json.dumps(payload, sort_keys=True))
    print(format_fleet_report(payload))
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
