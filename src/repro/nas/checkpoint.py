"""Atomic per-step search checkpoints with torn-write recovery.

A checkpointed search directory mirrors what `CampaignRunner` gives
measurement campaigns:

* ``manifest.json`` — the search fingerprint (every parameter that
  determines the trajectory's bytes) plus bookkeeping.  A resume against
  a directory whose fingerprint differs is refused rather than silently
  mixed; a *corrupt* manifest quarantines the whole directory and starts
  fresh (the data needed to rebuild it deterministically lives in the
  caller).
* ``step_00000.json``, ``step_00001.json``, … — one atomic file per
  completed step (an evolutionary generation, or a random-search chunk),
  each carrying the candidates that step newly evaluated and the
  population that survived it.  Files are written once and never
  rewritten, so the resume scan is a pure prefix walk: the longest run of
  parseable consecutive steps from zero is the durable state.

Torn or corrupted files — a step that fails to parse, fails its schema,
or disagrees with its filename — are renamed to ``*.corrupt`` together
with everything after them, and the search re-executes from the last good
step.  Because every stochastic draw in the drivers flows from
``(seed, slot, step)`` streams, the re-executed steps reproduce the
original bytes exactly, which is what the kill/resume byte-identity tests
assert.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, NamedTuple, Optional, Union

from ..utils import atomic_write_text

__all__ = ["SearchCheckpointError", "CheckpointState", "SearchCheckpoint"]

CHECKPOINT_FORMAT_VERSION = 1
_MANIFEST = "manifest.json"
_STEP_KEYS = {"format_version", "kind", "step", "evaluated", "population"}


class SearchCheckpointError(RuntimeError):
    """A checkpoint directory cannot be used (foreign fingerprint)."""


class CheckpointState(NamedTuple):
    """The durable prefix of a search: its last step and both histories."""

    step: int
    population: List[dict]  # candidate dicts of the last step's survivors
    evaluated: List[dict]  # candidate dicts, evaluation order, all steps


class SearchCheckpoint:
    """One search's checkpoint directory (see module docstring)."""

    def __init__(self, root: Union[str, Path], *, fingerprint: str, driver: str):
        self.root = Path(root)
        self.fingerprint = str(fingerprint)
        self.driver = str(driver)
        self.root.mkdir(parents=True, exist_ok=True)
        self._init_manifest()

    # ------------------------------------------------------------------ #
    # Manifest
    # ------------------------------------------------------------------ #

    def _manifest_path(self) -> Path:
        return self.root / _MANIFEST

    def _init_manifest(self) -> None:
        path = self._manifest_path()
        if path.exists():
            try:
                manifest = json.loads(path.read_text())
                stored = manifest["fingerprint"]
            except (json.JSONDecodeError, KeyError, TypeError):
                # Torn manifest: nothing in this directory can be trusted
                # to belong to *this* search — quarantine everything and
                # start over (the steps are deterministic to rebuild).
                self._quarantine(path)
                for step_path in self._step_paths():
                    self._quarantine(step_path)
            else:
                if stored != self.fingerprint:
                    raise SearchCheckpointError(
                        f"checkpoint directory {self.root} belongs to a "
                        "different search (fingerprint mismatch); refusing "
                        "to resume from it"
                    )
                return
        atomic_write_text(
            path,
            json.dumps(
                {
                    "format_version": CHECKPOINT_FORMAT_VERSION,
                    "kind": "search_checkpoint",
                    "driver": self.driver,
                    "fingerprint": self.fingerprint,
                },
                sort_keys=True,
            ),
        )

    # ------------------------------------------------------------------ #
    # Steps
    # ------------------------------------------------------------------ #

    def _step_path(self, step: int) -> Path:
        return self.root / f"step_{step:05d}.json"

    def _step_paths(self) -> List[Path]:
        return sorted(self.root.glob("step_*.json"))

    @staticmethod
    def _quarantine(path: Path) -> None:
        target = path.with_name(path.name + ".corrupt")
        n = 0
        while target.exists():
            n += 1
            target = path.with_name(f"{path.name}.corrupt{n}")
        path.rename(target)

    def write_step(
        self, step: int, evaluated: List[dict], population: List[dict]
    ) -> None:
        """Durably commit one completed step (atomic, never rewritten)."""
        atomic_write_text(
            self._step_path(step),
            json.dumps(
                {
                    "format_version": CHECKPOINT_FORMAT_VERSION,
                    "kind": "search_step",
                    "step": int(step),
                    "evaluated": evaluated,
                    "population": population,
                },
                sort_keys=True,
            ),
        )

    def _read_step(self, step: int) -> Optional[dict]:
        """Parse + validate one step file; ``None`` when absent/corrupt."""
        path = self._step_path(step)
        if not path.exists():
            return None
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError:
            return None
        if (
            not isinstance(payload, dict)
            or set(payload) != _STEP_KEYS
            or payload["kind"] != "search_step"
            or payload["step"] != step
            or not isinstance(payload["evaluated"], list)
            or not isinstance(payload["population"], list)
        ):
            return None
        return payload

    def load_state(self) -> Optional[CheckpointState]:
        """The longest valid step prefix, quarantining the torn suffix.

        Returns ``None`` when no step has been durably completed (fresh
        directory, or step 0 itself was torn).
        """
        evaluated: List[dict] = []
        population: List[dict] = []
        last = -1
        step = 0
        while True:
            payload = self._read_step(step)
            if payload is None:
                break
            evaluated.extend(payload["evaluated"])
            population = payload["population"]
            last = step
            step += 1
        # Everything at or past the first gap is causally downstream of a
        # missing/torn step: quarantine it so the rerun cannot collide.
        for path in self._step_paths():
            if int(path.stem.split("_")[1]) > last:
                self._quarantine(path)
        if last < 0:
            return None
        return CheckpointState(
            step=last, population=population, evaluated=evaluated
        )
