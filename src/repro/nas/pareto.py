"""Pareto fronts over (latency, accuracy) and front-displacement metrics.

The objective convention everywhere in this module: **minimize** latency,
**maximize** accuracy.  `ParetoFront.from_points` performs the
non-dominated filter and canonicalises the result (sorted by latency,
exact duplicates collapsed), so two fronts built from permutations of the
same points compare equal.

`displacement_metrics` quantifies Fig. 2(b): how far the front a search
found *under a surrogate* (re-evaluated at true latencies) sits from the
front the same search finds under true latency.  It reports generational
distance (found → true), inverted generational distance (true → found),
their mean as the headline ``displacement`` scalar, front Jaccard overlap
on architecture identity, and the hypervolume deficit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..archspace.config import ArchConfig

__all__ = [
    "ParetoPoint",
    "ParetoFront",
    "non_dominated_rank",
    "constrained_dominates",
    "constrained_non_dominated_rank",
    "crowding_distance",
    "displacement_metrics",
]


@dataclass(frozen=True)
class ParetoPoint:
    """One candidate in objective space, optionally carrying its config."""

    latency_s: float
    accuracy: float
    config: Optional[ArchConfig] = None

    def dominates(self, other: "ParetoPoint") -> bool:
        """Weakly better in both objectives, strictly better in one."""
        return (
            self.latency_s <= other.latency_s
            and self.accuracy >= other.accuracy
            and (
                self.latency_s < other.latency_s
                or self.accuracy > other.accuracy
            )
        )

    def identity(self) -> Tuple:
        """What makes two points "the same architecture" for set overlap."""
        if self.config is not None:
            return self.config.cache_key()
        return (self.latency_s, self.accuracy)

    def _sort_key(self) -> Tuple:
        return (self.latency_s, -self.accuracy, repr(self.identity()))


class ParetoFront:
    """A canonical non-dominated set; build via `from_points`."""

    def __init__(self, points: Sequence[ParetoPoint]):
        self._points: Tuple[ParetoPoint, ...] = tuple(points)

    @classmethod
    def from_points(cls, points: Sequence[ParetoPoint]) -> "ParetoFront":
        """Non-dominated filter + canonical order (permutation invariant).

        Exact duplicates (same objectives *and* same architecture
        identity) collapse to one survivor; distinct architectures that
        tie on both objectives are all kept — neither dominates the other.
        """
        unique: Dict[Tuple, ParetoPoint] = {}
        for p in points:
            unique.setdefault((p.latency_s, p.accuracy, repr(p.identity())), p)
        candidates = list(unique.values())
        front = [
            p
            for p in candidates
            if not any(q.dominates(p) for q in candidates)
        ]
        front.sort(key=ParetoPoint._sort_key)
        return cls(front)

    # ----------------------------- container -------------------------- #

    @property
    def points(self) -> Tuple[ParetoPoint, ...]:
        return self._points

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self) -> Iterator[ParetoPoint]:
        return iter(self._points)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ParetoFront):
            return NotImplemented
        return [
            (p.latency_s, p.accuracy, p.identity()) for p in self._points
        ] == [(p.latency_s, p.accuracy, p.identity()) for p in other._points]

    @property
    def latencies(self) -> np.ndarray:
        return np.array([p.latency_s for p in self._points])

    @property
    def accuracies(self) -> np.ndarray:
        return np.array([p.accuracy for p in self._points])

    def identities(self) -> set:
        return {repr(p.identity()) for p in self._points}

    # ------------------------------ metrics --------------------------- #

    def hypervolume(self, ref_latency: float, ref_accuracy: float) -> float:
        """Area dominated between the front and the reference point.

        The reference must be weakly worse than every point (slower, less
        accurate); contributions are clipped at zero so a slightly-tight
        reference degrades gracefully rather than going negative.
        """
        if not self._points:
            return 0.0
        order = np.argsort(self.latencies, kind="stable")
        lat = self.latencies[order]
        acc = self.accuracies[order]
        volume = 0.0
        prev_acc = ref_accuracy
        # Ascending latency on a front means ascending accuracy: each
        # point adds the accuracy strip it newly dominates.
        for l, a in zip(lat, acc):
            volume += max(0.0, a - prev_acc) * max(0.0, ref_latency - l)
            prev_acc = max(prev_acc, a)
        return float(volume)

    def to_dict(self, include_configs: bool = False) -> dict:
        """JSON payload; ``include_configs`` adds a parallel config list.

        The default shape is unchanged from the original two-key form (the
        golden fixtures and experiment reports are locked against it);
        warm-start files and search checkpoints opt into the architecture
        identities so a reloaded front can seed a new population.
        """
        payload = {
            "size": len(self._points),
            "points": [
                [float(p.latency_s), float(p.accuracy)] for p in self._points
            ],
        }
        if include_configs:
            payload["configs"] = [
                None if p.config is None else p.config.to_dict()
                for p in self._points
            ]
        return payload

    @classmethod
    def from_dict(cls, d: dict) -> "ParetoFront":
        """Rebuild a front written by `to_dict` (configs optional)."""
        configs = d.get("configs") or [None] * len(d["points"])
        if len(configs) != len(d["points"]):
            raise ValueError("front configs and points are misaligned")
        return cls.from_points(
            [
                ParetoPoint(
                    latency_s=float(lat),
                    accuracy=float(acc),
                    config=None if cfg is None else ArchConfig.from_dict(cfg),
                )
                for (lat, acc), cfg in zip(d["points"], configs)
            ]
        )


def non_dominated_rank(points: Sequence[ParetoPoint]) -> np.ndarray:
    """Front index per point (0 = Pareto front), by iterative peeling."""
    n = len(points)
    ranks = np.full(n, -1, dtype=int)
    remaining = list(range(n))
    rank = 0
    while remaining:
        front = [
            i
            for i in remaining
            if not any(points[j].dominates(points[i]) for j in remaining)
        ]
        for i in front:
            ranks[i] = rank
        remaining = [i for i in remaining if ranks[i] == -1]
        rank += 1
    return ranks


def constrained_dominates(
    p: ParetoPoint, q: ParetoPoint, violation_p: float, violation_q: float
) -> bool:
    """Deb's constrained-dominance rule over one candidate pair.

    * a feasible point dominates every infeasible one,
    * two infeasible points are ordered by total violation (less wins),
    * two feasible points fall back to plain Pareto dominance.

    The relation is a strict partial order (irreflexive, asymmetric,
    transitive — the hypothesis suite asserts this), so the same peeling
    loop NSGA-II uses for plain dominance works unchanged near a budget
    boundary.  With both violations zero it *is* plain dominance, which
    is what keeps unconstrained runs byte-identical to the pre-constraint
    implementation.
    """
    feasible_p = violation_p <= 0.0
    feasible_q = violation_q <= 0.0
    if feasible_p and not feasible_q:
        return True
    if feasible_q and not feasible_p:
        return False
    if not feasible_p:  # both infeasible
        return violation_p < violation_q
    return p.dominates(q)


def constrained_non_dominated_rank(
    points: Sequence[ParetoPoint],
    violations: Optional[Sequence[float]] = None,
) -> np.ndarray:
    """Front index per point under constrained dominance (0 = best).

    ``violations`` aligns with ``points``; ``None`` (or all-zero) reduces
    to `non_dominated_rank` exactly.  Feasible points occupy the leading
    ranks among themselves; infeasible points follow in ascending total
    violation, exact violation ties sharing a rank.
    """
    if violations is None:
        return non_dominated_rank(points)
    v = np.asarray(violations, dtype=float)
    if len(v) != len(points):
        raise ValueError("violations and points must be the same length")
    if not len(v) or not (v > 0).any():
        return non_dominated_rank(points)
    n = len(points)
    ranks = np.full(n, -1, dtype=int)
    remaining = list(range(n))
    rank = 0
    while remaining:
        front = [
            i
            for i in remaining
            if not any(
                constrained_dominates(points[j], points[i], v[j], v[i])
                for j in remaining
            )
        ]
        for i in front:
            ranks[i] = rank
        remaining = [i for i in remaining if ranks[i] == -1]
        rank += 1
    return ranks


def crowding_distance(
    points: Sequence[ParetoPoint], *, collapse_duplicates: bool = False
) -> np.ndarray:
    """NSGA-II crowding distance within one rank (boundaries infinite).

    ``collapse_duplicates=True`` fixes the duplicate-objective-vector tie:
    points sharing an exact ``(latency, accuracy)`` vector are crowded by
    construction, yet the stable argsort hands one copy the boundary's
    infinite distance (or an interior copy a gap computed against its own
    clone), making exact clones look diverse.  With the flag, only the
    first point of each duplicate group keeps its computed distance; every
    later clone gets ``0.0``, so selection prunes copies first.  The
    constrained search drivers enable this — selection clamped against a
    budget boundary mass-produces clones of the best boundary point — and
    the flag is opt-in so the unconstrained byte-locked trajectories are
    untouched.
    """
    n = len(points)
    if n == 0:
        return np.array([])
    distance = np.zeros(n)
    for values in (
        np.array([p.latency_s for p in points]),
        np.array([p.accuracy for p in points]),
    ):
        order = np.argsort(values, kind="stable")
        span = values[order[-1]] - values[order[0]]
        distance[order[0]] = distance[order[-1]] = np.inf
        if span > 0 and n > 2:
            distance[order[1:-1]] += (
                values[order[2:]] - values[order[:-2]]
            ) / span
    if collapse_duplicates:
        seen = set()
        for i, p in enumerate(points):
            vector = (p.latency_s, p.accuracy)
            if vector in seen:
                distance[i] = 0.0
            else:
                seen.add(vector)
    return distance


def _normalised_distances(
    from_points: Sequence[ParetoPoint],
    to_points: Sequence[ParetoPoint],
    lat_scale: float,
    acc_scale: float,
) -> float:
    """Mean distance from each source point to its nearest target point."""
    to_lat = np.array([p.latency_s for p in to_points]) / lat_scale
    to_acc = np.array([p.accuracy for p in to_points]) / acc_scale
    total = 0.0
    for p in from_points:
        d = np.hypot(
            p.latency_s / lat_scale - to_lat, p.accuracy / acc_scale - to_acc
        )
        total += float(d.min())
    return total / len(from_points)


def displacement_metrics(
    true_front: ParetoFront, found_front: ParetoFront
) -> Dict[str, float]:
    """Fig. 2(b) made quantitative: how displaced is ``found_front``?

    Both fronts must be in *true* objective coordinates — the caller
    re-evaluates surrogate-found architectures on the device before
    calling this.  Distances are normalised by the true front's objective
    ranges (falling back to its scale when degenerate), and the
    hypervolume reference point is padded 10% beyond the union's worst
    corner so every point contributes area.
    """
    if len(true_front) == 0 or len(found_front) == 0:
        raise ValueError("displacement needs two non-empty fronts")
    lat_t, acc_t = true_front.latencies, true_front.accuracies
    lat_scale = float(np.ptp(lat_t)) or float(np.abs(lat_t).max()) or 1.0
    acc_scale = float(np.ptp(acc_t)) or float(np.abs(acc_t).max()) or 1.0

    gd = _normalised_distances(
        found_front.points, true_front.points, lat_scale, acc_scale
    )
    igd = _normalised_distances(
        true_front.points, found_front.points, lat_scale, acc_scale
    )

    union_lat = np.concatenate([lat_t, found_front.latencies])
    union_acc = np.concatenate([acc_t, found_front.accuracies])
    ref_latency = float(union_lat.max() + 0.1 * (np.ptp(union_lat) or union_lat.max()))
    ref_accuracy = float(union_acc.min() - 0.1 * (np.ptp(union_acc) or 1.0))
    hv_true = true_front.hypervolume(ref_latency, ref_accuracy)
    hv_found = found_front.hypervolume(ref_latency, ref_accuracy)

    ids_true, ids_found = true_front.identities(), found_front.identities()
    jaccard = (
        len(ids_true & ids_found) / len(ids_true | ids_found)
        if ids_true | ids_found
        else 1.0
    )
    return {
        "gd": float(gd),
        "igd": float(igd),
        "displacement": float(0.5 * (gd + igd)),
        "jaccard": float(jaccard),
        "hypervolume_true": float(hv_true),
        "hypervolume_found": float(hv_found),
        "hypervolume_deficit": (
            float(max(0.0, hv_true - hv_found) / hv_true) if hv_true > 0 else 0.0
        ),
        "front_size": float(len(found_front)),
    }
