"""Deployment-budget constraints for NAS search (CNAS-style).

Hardware-aware NAS is only deployable when the search respects the
target's budgets — CNAS calls these *technological* and *functional*
constraints (their ``--pmax``-style flags).  `SearchConstraints` captures
the three budgets this reproduction can evaluate exactly:

* ``max_latency_s`` — against the candidate's oracle latency (surrogate
  or true, whichever the search is running under),
* ``max_params`` / ``max_flops`` — against the layer-IR analysis pass
  (`repro.network.analysis.network_costs` over the lowered network),
  which is a pure function of the architecture and therefore free of
  measurement noise.

The headline quantity is `violation`: the sum over active budgets of the
*relative* excess ``max(0, value / budget - 1)``.  Zero means feasible;
the normalisation makes seconds, parameters and FLOPs commensurable so
"total violation" is meaningful for the constrained-dominance sort in
`repro.nas.pareto` (feasible dominates infeasible, infeasible ranked by
total violation — Deb's constraint handling, which keeps NSGA-II
selection pressure pointing at the feasible region from outside it).

Static costs are memoised per architecture (configs are hashable), so a
search that revisits a config — elitist survivors do, every generation —
pays for one IR lowering only.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Optional, Sequence, Tuple

import numpy as np

from ..archspace.config import ArchConfig
from ..network.analysis import NetworkCosts, network_costs
from ..network.builders import build_network

__all__ = ["SearchConstraints", "static_costs"]


@lru_cache(maxsize=16384)
def static_costs(config: ArchConfig) -> NetworkCosts:
    """Memoised lowering + cost analysis of one architecture.

    Shared across every `SearchConstraints` instance (the costs depend
    only on the config), sized for fleet-scale searches: tens of seeds
    times a few hundred distinct architectures each.
    """
    return network_costs(build_network(config))


@dataclass(frozen=True)
class SearchConstraints:
    """Budgets a candidate must fit inside to count as feasible.

    Any subset of the budgets may be set; ``None`` disables that axis.
    An all-``None`` instance is valid but inert (`is_active` is False) —
    the search drivers treat it exactly like "no constraints".
    """

    max_latency_s: Optional[float] = None
    max_params: Optional[float] = None
    max_flops: Optional[float] = None

    def __post_init__(self) -> None:
        for name in ("max_latency_s", "max_params", "max_flops"):
            value = getattr(self, name)
            if value is not None and not value > 0:
                raise ValueError(f"{name} must be positive, got {value!r}")

    @property
    def is_active(self) -> bool:
        return any(
            budget is not None
            for budget in (self.max_latency_s, self.max_params, self.max_flops)
        )

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #

    def violation(self, config: ArchConfig, latency_s: float) -> float:
        """Total normalised budget excess; ``0.0`` iff feasible.

        Each active budget contributes ``max(0, value / budget - 1)`` —
        the *fraction* by which the candidate overshoots — so a config 10%
        over latency and 10% over params is twice as infeasible as one 10%
        over a single budget, regardless of units.
        """
        total = 0.0
        if self.max_latency_s is not None:
            total += max(0.0, float(latency_s) / self.max_latency_s - 1.0)
        if self.max_params is not None or self.max_flops is not None:
            costs = static_costs(config)
            if self.max_params is not None:
                total += max(0.0, costs.params / self.max_params - 1.0)
            if self.max_flops is not None:
                total += max(0.0, costs.flops / self.max_flops - 1.0)
        return total

    def is_feasible(self, config: ArchConfig, latency_s: float) -> bool:
        return self.violation(config, latency_s) == 0.0

    def violations(
        self,
        configs: Sequence[ArchConfig],
        latencies: Sequence[float],
    ) -> np.ndarray:
        """Per-candidate total violation, aligned with the inputs."""
        if len(configs) != len(latencies):
            raise ValueError("configs and latencies must be the same length")
        return np.array(
            [self.violation(c, l) for c, l in zip(configs, latencies)],
            dtype=float,
        )

    # ------------------------------------------------------------------ #
    # Serialisation (checkpoints, fleet manifests, reports)
    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict:
        return {
            "max_latency_s": self.max_latency_s,
            "max_params": self.max_params,
            "max_flops": self.max_flops,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "SearchConstraints":
        return cls(
            max_latency_s=(
                None if d.get("max_latency_s") is None else float(d["max_latency_s"])
            ),
            max_params=(
                None if d.get("max_params") is None else float(d["max_params"])
            ),
            max_flops=(
                None if d.get("max_flops") is None else float(d["max_flops"])
            ),
        )

    def describe(self) -> str:
        """Human-readable budget list, e.g. for CLI banners."""
        parts: Tuple[str, ...] = tuple(
            f"{label}<={value:g}"
            for label, value in (
                ("latency_s", self.max_latency_s),
                ("params", self.max_params),
                ("flops", self.max_flops),
            )
            if value is not None
        )
        return " ".join(parts) if parts else "unconstrained"
