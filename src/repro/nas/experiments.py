"""Fig. 2(b): surrogate-driven search vs search under true latency.

For every encoding (the paper's FCC/FC plus the one-hot / feature /
statistical baselines, each behind the MLP) and the bias-corrected LUT,
this experiment:

1. trains a surrogate with the existing `ESMLoop` (one run per encoding,
   same seed, same device),
2. runs the *identical seeded* `RandomSearch` and `EvolutionarySearch`
   twice — once under the surrogate oracle, once under the true
   `SimulatedDevice` latency,
3. re-evaluates the surrogate-found front at true latencies and reports
   its Pareto displacement from the true-latency front, plus Kendall-tau
   ranking preservation on a fixed architecture sample (overall and on
   the true top-k).

The JSON report is deterministic by construction — every random draw is
seed-derived, nothing wall-clock enters the payload — so two identical
invocations produce byte-identical files::

    PYTHONPATH=src python -m repro.nas.experiments --smoke
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path
from typing import Dict, Optional, Sequence, Union

import numpy as np

from ..archspace.sampling import RandomSampler
from ..archspace.spaces import SPACE_NAMES, space_by_name
from ..core.config import ESMConfig
from ..core.loop import ESMLoop
from ..hardware.simulator import SimulatedDevice
from ..metrics import kendall_tau
from ..predictors.oracle import DeviceOracle
from ..utils import atomic_write_text
from .constraints import SearchConstraints
from .pareto import ParetoFront, ParetoPoint, displacement_metrics
from .proxy import SyntheticAccuracyProxy
from .search import EvolutionarySearch, RandomSearch, SearchResult

__all__ = ["SURROGATES", "run_space", "format_report", "main"]

NAS_REPORT_FORMAT_VERSION = 1

# Label -> (predictor registry name, encoding registry name).  The LUT
# rides on FCC counts: that encoding is exactly its design matrix; "as"
# is the adaptive-switching zoo picking its model family by CV per refit.
SURROGATES = {
    "onehot": ("mlp", "onehot"),
    "feature": ("mlp", "feature"),
    "statistical": ("mlp", "statistical"),
    "fc": ("mlp", "fc"),
    "fcc": ("mlp", "fcc"),
    "lut": ("lut+bias", "fcc"),
    "as": ("as", "fcc"),
}

# Reduced-budget hyperparameters for the smoke runs: the MLP gets extra
# epochs (tiny datasets need them), the switcher's zoo is slimmed so its
# per-refit cross-validation stays seconds-scale.
_SMOKE_PREDICTOR_PARAMS = {
    "mlp": {"epochs": 1000},
    "as": {
        "zoo_params": {
            "mlp": {"epochs": 300},
            "rf": {"n_estimators": 20},
            "gb": {"n_estimators": 60},
        }
    },
}

_SLOT_RANKING_SAMPLE = 301


def _esm_config(
    space: str, device: str, predictor: str, encoding: str, seed: int, smoke: bool
) -> ESMConfig:
    params = _SMOKE_PREDICTOR_PARAMS.get(predictor, {}) if smoke else {}
    if smoke:
        return ESMConfig(
            space=space,
            device=device,
            encoding=encoding,
            predictor=predictor,
            predictor_params=params,
            acc_th=80.0,
            n_bins=4,
            initial_size=120,
            extension_size=20,
            max_iterations=3,
            runs=8,
            n_references=2,
            batch_size=25,
            seed=seed,
        )
    return ESMConfig(
        space=space,
        device=device,
        encoding=encoding,
        predictor=predictor,
        predictor_params=params,
        acc_th=90.0,
        n_bins=6,
        initial_size=100,
        extension_size=20,
        max_iterations=8,
        runs=50,
        n_references=3,
        batch_size=25,
        seed=seed,
    )


def _search_budgets(smoke: bool) -> dict:
    if smoke:
        return {
            "random": {"budget": 60},
            "evolutionary": {"population_size": 14, "generations": 5},
        }
    return {
        "random": {"budget": 400},
        "evolutionary": {"population_size": 32, "generations": 12},
    }


def _make_searches(
    spec,
    oracle,
    proxy,
    seed: int,
    budgets: dict,
    *,
    constraints: Optional[SearchConstraints] = None,
    warm_start=None,
    checkpoint_root: Optional[Path] = None,
) -> dict:
    """Both drivers, identically parameterised.

    ``checkpoint_root`` (set by ``--resume``) gives each driver its own
    checkpoint directory under the workdir, so a killed experiment picks
    every search up from its last completed generation/chunk.
    """
    extra = dict(constraints=constraints, warm_start=warm_start)
    return {
        "random": RandomSearch(
            spec,
            oracle,
            proxy,
            seed=seed,
            checkpoint_dir=(
                None if checkpoint_root is None else checkpoint_root / "random"
            ),
            **extra,
            **budgets["random"],
        ),
        "evolutionary": EvolutionarySearch(
            spec,
            oracle,
            proxy,
            seed=seed,
            checkpoint_dir=(
                None
                if checkpoint_root is None
                else checkpoint_root / "evolutionary"
            ),
            **extra,
            **budgets["evolutionary"],
        ),
    }


def _true_front_of_configs(
    configs, device, proxy
) -> ParetoFront:
    """Re-evaluate architectures at true latency, then non-dominate."""
    return ParetoFront.from_points(
        [
            ParetoPoint(
                latency_s=float(device.true_latency(c)),
                accuracy=float(proxy.accuracy(c)),
                config=c,
            )
            for c in configs
        ]
    )


def run_space(
    space: str,
    *,
    device_name: str = "rtx4090",
    seed: int = 0,
    smoke: bool = False,
    workdir: Union[str, Path],
    workers: int = 1,
    surrogates: Optional[Sequence[str]] = None,
    constraints: Optional[SearchConstraints] = None,
    warm_start=None,
    resume: bool = False,
) -> dict:
    """The full per-space experiment; returns the report fragment.

    ``surrogates`` restricts the run to a subset of `SURROGATES` labels
    (e.g. ``["as"]`` for just the adaptive switcher); default is all.
    ``constraints`` puts the same deployment budgets on every search
    (true-latency references included, so displacement compares
    constrained front to constrained front); ``warm_start`` seeds every
    search's initial population from a previous result; ``resume=True``
    checkpoints each search under the (persistent) workdir.
    """
    spec = space_by_name(space)
    device = SimulatedDevice(device_name, seed=seed)
    proxy = SyntheticAccuracyProxy(spec, seed=seed)
    true_oracle = DeviceOracle(device)
    budgets = _search_budgets(smoke)
    search_kwargs = dict(constraints=constraints, warm_start=warm_start)

    def _checkpoint_root(label: str) -> Optional[Path]:
        if not resume:
            return None
        return Path(workdir) / space / "search" / label

    # The reference outcome: the same seeded searches under true latency.
    true_results = {
        driver: search.run()
        for driver, search in _make_searches(
            spec,
            true_oracle,
            proxy,
            seed,
            budgets,
            checkpoint_root=_checkpoint_root("true"),
            **search_kwargs,
        ).items()
    }

    # Fixed sample for ranking preservation (never seen in training).
    n_sample, topk = (80, 20) if smoke else (400, 50)
    sample = RandomSampler(
        spec, rng=np.random.default_rng([seed, _SLOT_RANKING_SAMPLE])
    ).sample_batch(n_sample)
    true_lat = true_oracle.latency_batch(sample)
    topk_idx = np.argsort(true_lat, kind="stable")[:topk]

    selected = {
        label: SURROGATES[label]
        for label in (surrogates if surrogates is not None else SURROGATES)
    }
    oracles_report: Dict[str, dict] = {}
    for label, (predictor, encoding) in selected.items():
        config = _esm_config(space, device_name, predictor, encoding, seed, smoke)
        result = ESMLoop(
            config,
            Path(workdir) / space / label,
            device=device,
            workers=workers,
            sleep=lambda s: None,
        ).run()
        oracle = result.latency_oracle(spec=spec)

        surrogate_lat = oracle.latency_batch(sample)
        tau = kendall_tau(true_lat, surrogate_lat)
        tau_topk = kendall_tau(true_lat[topk_idx], surrogate_lat[topk_idx])

        searches_report: Dict[str, dict] = {}
        for driver, search in _make_searches(
            spec,
            oracle,
            proxy,
            seed,
            budgets,
            checkpoint_root=_checkpoint_root(label),
            **search_kwargs,
        ).items():
            found = search.run()
            found_front_true = _true_front_of_configs(
                found.front_configs, device, proxy
            )
            searches_report[driver] = displacement_metrics(
                true_results[driver].front, found_front_true
            )
            if constraints is not None and constraints.is_active:
                searches_report[driver]["n_feasible"] = found.feasible_evaluations
        oracles_report[label] = {
            "predictor": predictor,
            "encoding": encoding,
            "esm": {
                "converged": result.report.converged,
                "iterations": result.report.n_iterations,
                "final_dataset_size": result.report.final_dataset_size,
            },
            "kendall_tau": float(tau),
            "kendall_tau_topk": float(tau_topk),
            "searches": searches_report,
            "displacement": float(
                np.mean([m["displacement"] for m in searches_report.values()])
            ),
        }

    fragment = {
        "device": device_name,
        "proxy": {
            "floor": proxy.floor,
            "ceiling": proxy.ceiling,
            "noise_pp": proxy.noise_pp,
            "seed": proxy.seed,
        },
        "ranking_sample_size": n_sample,
        "topk": topk,
        "true_fronts": {
            driver: result.front.to_dict()
            for driver, result in true_results.items()
        },
        "oracles": oracles_report,
    }
    if constraints is not None and constraints.is_active:
        fragment["constraints"] = constraints.to_dict()
        fragment["true_feasible"] = {
            driver: result.feasible_evaluations
            for driver, result in true_results.items()
        }
    return fragment


def format_report(report: dict) -> str:
    """The per-space displacement / ranking table the CLI prints."""
    lines = []
    for space, fragment in report["spaces"].items():
        fronts = fragment["true_fronts"]
        lines.append(
            f"space={space}  device={fragment['device']}  "
            + "  ".join(
                f"true front ({driver}): {front['size']} pts"
                for driver, front in fronts.items()
            )
        )
        lines.append(
            f"{'oracle':<13} {'tau':>7} {'tau@top-k':>10} "
            f"{'disp(random)':>13} {'disp(evo)':>10} {'displacement':>13}"
        )
        lines.append("-" * 70)
        for label, entry in fragment["oracles"].items():
            lines.append(
                f"{label:<13} {entry['kendall_tau']:7.3f} "
                f"{entry['kendall_tau_topk']:10.3f} "
                f"{entry['searches']['random']['displacement']:13.4f} "
                f"{entry['searches']['evolutionary']['displacement']:10.4f} "
                f"{entry['displacement']:13.4f}"
            )
        lines.append("")
    return "\n".join(lines).rstrip()


def run_experiment(
    spaces: Sequence[str],
    *,
    device_name: str = "rtx4090",
    seed: int = 0,
    smoke: bool = False,
    workdir: Union[str, Path],
    workers: int = 1,
    surrogates: Optional[Sequence[str]] = None,
    constraints: Optional[SearchConstraints] = None,
    warm_start=None,
    resume: bool = False,
) -> dict:
    """Run every requested space and assemble the deterministic report."""
    budgets = _search_budgets(smoke)
    report = {
        "format_version": NAS_REPORT_FORMAT_VERSION,
        "kind": "nas_experiment_report",
        "seed": int(seed),
        "smoke": bool(smoke),
        "search_budgets": budgets,
        "spaces": {
            space: run_space(
                space,
                device_name=device_name,
                seed=seed,
                smoke=smoke,
                workdir=workdir,
                workers=workers,
                surrogates=surrogates,
                constraints=constraints,
                warm_start=warm_start,
                resume=resume,
            )
            for space in spaces
        },
    }
    if constraints is not None and constraints.is_active:
        report["constraints"] = constraints.to_dict()
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.nas.experiments",
        description="Pareto displacement and ranking preservation (Fig. 2b).",
    )
    parser.add_argument(
        "--spaces",
        nargs="+",
        choices=SPACE_NAMES,
        default=None,
        help="spaces to run (default: resnet in --smoke, all otherwise)",
    )
    parser.add_argument("--device", default="rtx4090")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument(
        "--surrogates",
        nargs="+",
        choices=sorted(SURROGATES),
        default=None,
        help="surrogate labels to run (default: all, incl. the adaptive "
        "switcher 'as')",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced budgets: finishes in well under a minute",
    )
    parser.add_argument(
        "--out",
        default="nas-report.json",
        help="where to write the JSON report (default: ./nas-report.json)",
    )
    parser.add_argument(
        "--workdir",
        default=None,
        help="ESM run-directory root, kept for resume (default: temporary)",
    )
    parser.add_argument(
        "--max-latency",
        type=float,
        default=None,
        help="latency budget in seconds for constrained search",
    )
    parser.add_argument(
        "--max-params",
        type=float,
        default=None,
        help="parameter-count budget for constrained search",
    )
    parser.add_argument(
        "--max-flops",
        type=float,
        default=None,
        help="FLOPs budget for constrained search",
    )
    parser.add_argument(
        "--warm-start",
        default=None,
        help="path to a SearchResult JSON whose front seeds new searches",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="checkpoint every search under --workdir and resume from "
        "whatever generations survive there (requires --workdir)",
    )
    args = parser.parse_args(argv)

    if args.resume and args.workdir is None:
        parser.error("--resume requires --workdir")

    constraints = None
    if any(v is not None for v in (args.max_latency, args.max_params, args.max_flops)):
        constraints = SearchConstraints(
            max_latency_s=args.max_latency,
            max_params=args.max_params,
            max_flops=args.max_flops,
        )
    warm_start = None
    if args.warm_start is not None:
        warm_start = SearchResult.from_dict(
            json.loads(Path(args.warm_start).read_text(encoding="utf-8"))
        )

    spaces = args.spaces or (["resnet"] if args.smoke else list(SPACE_NAMES))
    kwargs = dict(
        device_name=args.device,
        seed=args.seed,
        smoke=args.smoke,
        workers=args.workers,
        surrogates=args.surrogates,
        constraints=constraints,
        warm_start=warm_start,
        resume=args.resume,
    )
    if args.workdir is None:
        with tempfile.TemporaryDirectory(prefix="esm-nas-") as tmp:
            report = run_experiment(spaces, workdir=tmp, **kwargs)
    else:
        report = run_experiment(spaces, workdir=args.workdir, **kwargs)

    atomic_write_text(Path(args.out), json.dumps(report, sort_keys=True))
    print(format_report(report))
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
