"""Deterministic synthetic accuracy proxy over architecture configs.

No trained supernets exist in this reproduction (DESIGN.md §2), so the
accuracy axis of the NAS objective is a synthetic stand-in with the
structural properties the Fig. 2 analysis needs:

* **monotone-ish capacity curve** — a block's contribution grows with
  kernel size and expansion ratio (``log1p(k² · e)``), summed over all
  blocks and pushed through a saturating exponential, so deeper / wider /
  larger-kernel models are more accurate but with diminishing returns.
  Latency grows in the same direction, which is exactly what makes the
  accuracy–latency Pareto front a genuine trade-off curve.
* **seeded per-config noise** — a bounded uniform offset derived from a
  SHA-256 of ``(seed, config)``, so the proxy is a pure function of its
  inputs: process-stable, hashable-state-free, byte-reproducible.  The
  noise keeps the front non-trivial (capacity alone would make it a
  smooth curve every search finds immediately).
"""

from __future__ import annotations

import hashlib
import json
from typing import Optional, Sequence

import numpy as np

from ..archspace.config import ArchConfig
from ..archspace.spaces import SpaceSpec

__all__ = ["SyntheticAccuracyProxy"]


def _block_capacity(kernel_size: int, expand_ratio: Optional[float]) -> float:
    expand = 1.0 if expand_ratio is None else float(expand_ratio)
    return float(np.log1p(kernel_size * kernel_size * expand))


class SyntheticAccuracyProxy:
    """Top-1-style accuracy (percent) as a pure function of the config."""

    name = "synthetic-top1"

    def __init__(
        self,
        spec: SpaceSpec,
        *,
        seed: int = 0,
        floor: float = 88.0,
        ceiling: float = 95.5,
        noise_pp: float = 0.15,
        curvature: float = 3.0,
    ):
        """``floor``/``ceiling`` bound the noise-free curve; ``noise_pp``
        is the half-width (percentage points) of the per-config uniform
        offset; ``curvature`` shapes the saturation (higher = earlier)."""
        if ceiling <= floor:
            raise ValueError("ceiling must exceed floor")
        if noise_pp < 0:
            raise ValueError("noise_pp must be >= 0")
        if curvature <= 0:
            raise ValueError("curvature must be > 0")
        self.spec = spec
        self.seed = int(seed)
        self.floor = float(floor)
        self.ceiling = float(ceiling)
        self.noise_pp = float(noise_pp)
        self.curvature = float(curvature)
        expands = spec.expand_choices or (None,)
        self._max_capacity = (
            spec.num_units
            * spec.max_depth
            * max(_block_capacity(k, e) for k in spec.kernel_choices for e in expands)
        )

    def capacity(self, config: ArchConfig) -> float:
        """Raw capacity score: summed per-block ``log1p(k² · e)``."""
        return sum(
            _block_capacity(b.kernel_size, b.expand_ratio)
            for _, b in config.iter_blocks()
        )

    def _noise(self, config: ArchConfig) -> float:
        payload = json.dumps(
            [self.seed, self.name, config.to_dict()],
            sort_keys=True,
            separators=(",", ":"),
        )
        digest = hashlib.sha256(payload.encode("utf-8")).digest()
        # 8 bytes -> uniform in [0, 1): stable across platforms/processes,
        # unlike Python's salted hash().
        unit = int.from_bytes(digest[:8], "little") / 2**64
        return (2.0 * unit - 1.0) * self.noise_pp

    def accuracy(self, config: ArchConfig) -> float:
        """Synthetic accuracy in percent, bounded-noise monotone-ish."""
        if not self.spec.contains(config):
            raise ValueError(
                f"config is not a member of the {self.spec.family} space"
            )
        utilisation = self.capacity(config) / self._max_capacity
        saturating = (1.0 - np.exp(-self.curvature * utilisation)) / (
            1.0 - np.exp(-self.curvature)
        )
        base = self.floor + (self.ceiling - self.floor) * saturating
        return float(base + self._noise(config))

    def accuracy_batch(self, configs: Sequence[ArchConfig]) -> np.ndarray:
        return np.array([self.accuracy(c) for c in configs], dtype=float)
