"""ESM reproduction: surrogate latency models for hardware-aware NAS.

Top-level re-exports of the public API: architecture spaces and samplers,
the layer IR and builders, the simulated devices (plus fault injection),
all encodings and predictors, the paper's metrics, the latency dataset
layer, and the fault-tolerant measurement-campaign subsystem.
"""

from .archspace import (
    SPACE_NAMES,
    ArchConfig,
    BalancedSampler,
    BlockConfig,
    RandomSampler,
    SpaceSpec,
    assign_depth_bin,
    densenet_space,
    depth_bins,
    mobilenetv3_space,
    resnet_space,
    space_by_name,
)
from .core import (
    ESMConfig,
    ESMLoop,
    ESMRunReport,
    ESMRunResult,
    IterationRecord,
    extension_plan,
    extension_weights,
    load_run,
)
from .data import FORMAT_VERSION, DatasetError, LatencyDataset, LatencySample
from .encodings import (
    ENCODINGS,
    Encoding,
    FCCEncoding,
    FCEncoding,
    FeatureEncoding,
    OneHotEncoding,
    StatisticalEncoding,
    get_encoding,
    list_encodings,
)
from .hardware import (
    DEVICE_NAMES,
    DEVICES,
    AnalyticalCache,
    CacheInfo,
    DeviceProfile,
    FaultPlan,
    FaultyDevice,
    MeasurementError,
    MeasurementTimeout,
    SimulatedDevice,
    device_by_name,
)
from .metrics import (
    binwise_accuracy,
    failing_bins,
    mape,
    paper_accuracy,
    rmse,
    spearman,
)
from .network import (
    BUILDER_FAMILIES,
    Layer,
    Network,
    build_network,
    num_kernels,
    total_flops,
    total_params,
    total_traffic_bytes,
    working_set_bytes,
)
from .predictors import (
    PREDICTORS,
    LookupTableSurrogate,
    MLPPredictor,
    get_predictor,
    list_predictors,
)
from .profiling import (
    CampaignError,
    CampaignReport,
    CampaignResult,
    CampaignRunner,
    MeasurementProtocol,
    QCResult,
    ReferenceSet,
)

__version__ = "0.1.0"

__all__ = [
    "__version__",
    # archspace
    "ArchConfig",
    "BlockConfig",
    "SpaceSpec",
    "resnet_space",
    "mobilenetv3_space",
    "densenet_space",
    "space_by_name",
    "SPACE_NAMES",
    "RandomSampler",
    "BalancedSampler",
    "depth_bins",
    "assign_depth_bin",
    # network
    "Layer",
    "Network",
    "build_network",
    "BUILDER_FAMILIES",
    "total_flops",
    "total_params",
    "total_traffic_bytes",
    "working_set_bytes",
    "num_kernels",
    # hardware
    "AnalyticalCache",
    "CacheInfo",
    "DeviceProfile",
    "DEVICES",
    "DEVICE_NAMES",
    "device_by_name",
    "SimulatedDevice",
    "MeasurementError",
    "MeasurementTimeout",
    "FaultPlan",
    "FaultyDevice",
    # profiling
    "MeasurementProtocol",
    "ReferenceSet",
    "QCResult",
    "CampaignRunner",
    "CampaignResult",
    "CampaignReport",
    "CampaignError",
    # encodings
    "Encoding",
    "OneHotEncoding",
    "FeatureEncoding",
    "StatisticalEncoding",
    "FCEncoding",
    "FCCEncoding",
    "ENCODINGS",
    "get_encoding",
    "list_encodings",
    # predictors
    "MLPPredictor",
    "LookupTableSurrogate",
    "PREDICTORS",
    "get_predictor",
    "list_predictors",
    # core (the ESM loop itself)
    "ESMConfig",
    "ESMLoop",
    "ESMRunResult",
    "ESMRunReport",
    "IterationRecord",
    "extension_weights",
    "extension_plan",
    "load_run",
    # metrics
    "paper_accuracy",
    "binwise_accuracy",
    "failing_bins",
    "mape",
    "rmse",
    "spearman",
    # data
    "LatencyDataset",
    "LatencySample",
    "DatasetError",
    "FORMAT_VERSION",
]
