"""Additive lookup-table surrogate, with optional linear bias correction.

The LUT models latency as a sum of per-(unit, kernel, expand) block costs:
fit by least squares on count features (the FCC encoding is exactly the
right design matrix — its counts sum to the blocks per unit).  A raw LUT
has no intercept and no way to express the simulator's global terms
(kernel-launch overhead, cache pressure), the failure mode the paper
reports; the *bias-corrected* variant refits a linear map on top of the
LUT prediction and the total block count, recovering much of that error.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .protocol import PredictorBase, validate_fit_inputs

__all__ = ["LookupTableSurrogate"]


class LookupTableSurrogate(PredictorBase):
    """Least-squares additive table over count features (e.g. FCC vectors)."""

    KIND = "lut"

    def __init__(self, bias_correction: bool = False):
        self.bias_correction = bias_correction
        self.table_: Optional[np.ndarray] = None
        self.bias_coef_: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LookupTableSurrogate":
        X, y = validate_fit_inputs(X, y, self)
        self.table_, *_ = np.linalg.lstsq(X, y, rcond=None)
        if self.bias_correction:
            raw = X @ self.table_
            Z = np.stack([raw, X.sum(axis=1), np.ones(len(y))], axis=1)
            self.bias_coef_, *_ = np.linalg.lstsq(Z, y, rcond=None)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        self._require_fitted()
        X = self._check_predict_input(X)
        raw = X @ self.table_
        if not self.bias_correction:
            return raw
        Z = np.stack([raw, X.sum(axis=1), np.ones(X.shape[0])], axis=1)
        return Z @ self.bias_coef_

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #

    @property
    def is_fitted(self) -> bool:
        return self.table_ is not None

    def _get_state(self) -> dict:
        return {
            "table": self.table_.tolist(),
            "bias_coef": (
                None if self.bias_coef_ is None else self.bias_coef_.tolist()
            ),
        }

    def _set_state(self, state: dict) -> None:
        self.table_ = np.asarray(state["table"], dtype=float)
        bias = state.get("bias_coef")
        self.bias_coef_ = None if bias is None else np.asarray(bias, dtype=float)
