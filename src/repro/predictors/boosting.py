"""Gradient-boosted trees: least-squares boosting over shallow CARTs.

Classic LS-boost: start from the target mean, then repeatedly fit a
shallow regression tree to the current residuals and take a
``learning_rate``-sized step.  ``subsample < 1.0`` turns on stochastic
gradient boosting — each round fits on a seeded row subsample, which both
regularises and speeds up the fit.  Trees are depth-limited hard (default
3), which is where boosting gets its bias/variance profile.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .protocol import PredictorBase, validate_fit_inputs
from .tree import _RegressionTree, _validate_tree_params

__all__ = ["GradientBoostingPredictor"]


class GradientBoostingPredictor(PredictorBase):
    """Least-squares gradient boosting with shallow CART base learners."""

    KIND = "gb"

    def __init__(
        self,
        n_estimators: int = 150,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        min_samples_split: int = 4,
        min_samples_leaf: int = 2,
        subsample: float = 1.0,
        seed: int = 0,
    ):
        if n_estimators < 1:
            raise ValueError(f"n_estimators must be >= 1, got {n_estimators}")
        if not 0.0 < learning_rate <= 1.0:
            raise ValueError(
                f"learning_rate must be in (0, 1], got {learning_rate}"
            )
        if not 0.0 < subsample <= 1.0:
            raise ValueError(f"subsample must be in (0, 1], got {subsample}")
        _validate_tree_params(max_depth, min_samples_split, min_samples_leaf)
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.seed = seed
        self._init: float = 0.0
        self._trees: Optional[List[_RegressionTree]] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GradientBoostingPredictor":
        X, y = validate_fit_inputs(X, y, self)
        n = X.shape[0]
        k = max(2, int(round(self.subsample * n))) if self.subsample < 1.0 else n
        k = min(k, n)
        self._init = float(y.mean())
        self._trees = []
        current = np.full(n, self._init)
        for t in range(self.n_estimators):
            residual = y - current
            if self.subsample < 1.0:
                rows = np.sort(
                    np.random.default_rng([self.seed, t]).choice(
                        n, size=k, replace=False
                    )
                )
            else:
                rows = np.arange(n)
            tree = _RegressionTree().fit(
                X[rows],
                residual[rows],
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
            )
            current += self.learning_rate * tree.predict(X)
            self._trees.append(tree)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        self._require_fitted()
        X = self._check_predict_input(X)
        out = np.full(X.shape[0], self._init)
        for tree in self._trees:
            out += self.learning_rate * tree.predict(X)
        return out

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #

    @property
    def is_fitted(self) -> bool:
        return self._trees is not None

    def _get_state(self) -> dict:
        return {
            "init": self._init,
            "trees": [tree.to_jsonable() for tree in self._trees],
        }

    def _set_state(self, state: dict) -> None:
        self._init = float(state["init"])
        self._trees = [
            _RegressionTree.from_jsonable(tree) for tree in state["trees"]
        ]
