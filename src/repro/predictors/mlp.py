"""The paper's latency predictor: a 3-layer MLP (hidden 64) in pure numpy.

Forward/backward and the Adam optimiser are implemented here because no
torch/sklearn stack is available.  Hyperparameters default to the paper's:
MSE loss, Adam with lr 0.01 and weight decay 1e-4.  Inputs are z-scored
and targets scaled by their mean inside `fit`, so the same settings work
across devices whose latencies differ by orders of magnitude.

Optional early stopping (``patience``/``tol``) cuts retraining short once
the epoch loss stops improving — the ESM loop refits the predictor after
every dataset extension, and easy early rounds rarely need the full 300
epochs.  It is off by default so the paper's fixed-epoch training (and
every seeded result downstream of it) is reproduced exactly.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .protocol import PREDICTOR_FORMAT_VERSION, PredictorBase, validate_fit_inputs

__all__ = ["MLPPredictor", "MLP_FORMAT_VERSION"]

# The MLP shares the zoo-wide payload versioning (kept under its old name
# for backward compatibility of imports).
MLP_FORMAT_VERSION = PREDICTOR_FORMAT_VERSION


class MLPPredictor(PredictorBase):
    """Seeded numpy MLP: input -> 64 -> 64 -> 1 with ReLU."""

    KIND = "mlp"

    def __init__(
        self,
        hidden_dim: int = 64,
        lr: float = 0.01,
        weight_decay: float = 1e-4,
        epochs: int = 300,
        batch_size: int = 64,
        seed: int = 0,
        patience: Optional[int] = None,
        tol: float = 0.0,
    ):
        """``patience=None`` (default) trains for exactly ``epochs`` epochs.

        With ``patience=p``, training stops once ``p`` consecutive epochs
        fail to improve the best epoch loss by more than ``tol`` —
        ``loss_history_`` then records only the epochs actually run.
        """
        if patience is not None and patience < 1:
            raise ValueError("patience must be >= 1 (or None to disable)")
        if tol < 0:
            raise ValueError("tol must be >= 0")
        self.hidden_dim = hidden_dim
        self.lr = lr
        self.weight_decay = weight_decay
        self.epochs = epochs
        self.batch_size = batch_size
        self.seed = seed
        self.patience = patience
        self.tol = tol
        self.loss_history_: List[float] = []
        self._weights: Optional[List[np.ndarray]] = None
        self._biases: Optional[List[np.ndarray]] = None

    # ------------------------------------------------------------------ #

    def fit(self, X: np.ndarray, y: np.ndarray) -> "MLPPredictor":
        X, y = validate_fit_inputs(X, y, self)
        rng = np.random.default_rng(self.seed)

        self._x_mean = X.mean(axis=0)
        std = X.std(axis=0)
        self._x_std = np.where(std > 0, std, 1.0)
        self._y_scale = float(abs(y).mean()) or 1.0

        Xn = (X - self._x_mean) / self._x_std
        t = y / self._y_scale

        sizes = [X.shape[1], self.hidden_dim, self.hidden_dim, 1]
        self._weights = [
            rng.normal(0.0, np.sqrt(2.0 / fan_in), size=(fan_in, fan_out))
            for fan_in, fan_out in zip(sizes[:-1], sizes[1:])
        ]
        self._biases = [np.zeros(fan_out) for fan_out in sizes[1:]]

        # Adam state.
        m_w = [np.zeros_like(w) for w in self._weights]
        v_w = [np.zeros_like(w) for w in self._weights]
        m_b = [np.zeros_like(b) for b in self._biases]
        v_b = [np.zeros_like(b) for b in self._biases]
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        step = 0

        n = Xn.shape[0]
        batch = min(self.batch_size, n)
        self.loss_history_ = []
        best_loss = np.inf
        stale_epochs = 0
        for _ in range(self.epochs):
            order = rng.permutation(n)
            epoch_loss = 0.0
            for start in range(0, n, batch):
                idx = order[start : start + batch]
                xb, tb = Xn[idx], t[idx]

                # Forward.
                acts = [xb]
                pre = []
                h = xb
                for layer, (w, b) in enumerate(zip(self._weights, self._biases)):
                    z = h @ w + b
                    pre.append(z)
                    h = np.maximum(z, 0.0) if layer < len(self._weights) - 1 else z
                    acts.append(h)
                pred = acts[-1][:, 0]
                err = pred - tb
                epoch_loss += float(err @ err)

                # Backward.
                grad = (2.0 * err / idx.size)[:, None]
                for layer in range(len(self._weights) - 1, -1, -1):
                    g_w = acts[layer].T @ grad + self.weight_decay * self._weights[layer]
                    g_b = grad.sum(axis=0)
                    if layer > 0:
                        grad = (grad @ self._weights[layer].T) * (pre[layer - 1] > 0)

                    step_t = step + 1
                    for g, m, v, param in (
                        (g_w, m_w[layer], v_w[layer], self._weights[layer]),
                        (g_b, m_b[layer], v_b[layer], self._biases[layer]),
                    ):
                        m *= beta1
                        m += (1 - beta1) * g
                        v *= beta2
                        v += (1 - beta2) * g * g
                        m_hat = m / (1 - beta1**step_t)
                        v_hat = v / (1 - beta2**step_t)
                        param -= self.lr * m_hat / (np.sqrt(v_hat) + eps)
                step += 1
            epoch_loss /= n
            self.loss_history_.append(epoch_loss)
            if self.patience is not None:
                if epoch_loss < best_loss - self.tol:
                    best_loss = epoch_loss
                    stale_epochs = 0
                else:
                    stale_epochs += 1
                    if stale_epochs >= self.patience:
                        break
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        self._require_fitted()
        h = (self._check_predict_input(X) - self._x_mean) / self._x_std
        for layer, (w, b) in enumerate(zip(self._weights, self._biases)):
            h = h @ w + b
            if layer < len(self._weights) - 1:
                h = np.maximum(h, 0.0)
        return h[:, 0] * self._y_scale

    # ------------------------------------------------------------------ #
    # Persistence (the zoo-wide payload; see protocol.PredictorBase)
    # ------------------------------------------------------------------ #

    @property
    def is_fitted(self) -> bool:
        return self._weights is not None

    def _get_state(self) -> dict:
        return {
            "x_mean": self._x_mean.tolist(),
            "x_std": self._x_std.tolist(),
            "y_scale": self._y_scale,
            "weights": [w.tolist() for w in self._weights],
            "biases": [b.tolist() for b in self._biases],
            "loss_history": list(self.loss_history_),
        }

    def _set_state(self, state: dict) -> None:
        self._x_mean = np.asarray(state["x_mean"], dtype=float)
        self._x_std = np.asarray(state["x_std"], dtype=float)
        self._y_scale = float(state["y_scale"])
        self._weights = [np.asarray(w, dtype=float) for w in state["weights"]]
        self._biases = [np.asarray(b, dtype=float) for b in state["biases"]]
        self.loss_history_ = [float(x) for x in state["loss_history"]]
