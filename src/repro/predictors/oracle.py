"""The latency-oracle protocol: one query interface for search drivers.

A NAS search does not care whether latency comes from a fitted surrogate
or from the device itself — it only ranks candidates.  `LatencyOracle` is
that contract (``latency`` / ``latency_batch`` over `ArchConfig`), with
two adapters:

* `PredictorOracle` — a fitted predictor behind an encoding and space
  spec: encode the batch, predict.  This is how a finished `ESMLoop` run
  is handed to a search (`ESMRunResult.latency_oracle`).
* `DeviceOracle` — the simulator's noise-free analytical latency, the
  ground truth a surrogate-driven search is measured against (memoized
  per config by the device's LRU cache).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Protocol, Sequence, Union

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..archspace.config import ArchConfig
    from ..archspace.spaces import SpaceSpec
    from ..encodings import Encoding

__all__ = ["LatencyOracle", "PredictorOracle", "DeviceOracle"]


class LatencyOracle(Protocol):
    """Anything a search driver can query for candidate latencies."""

    name: str

    def latency(self, config: "ArchConfig") -> float:
        """Latency of one architecture, in seconds."""

    def latency_batch(self, configs: Sequence["ArchConfig"]) -> np.ndarray:
        """Latencies of a batch of architectures, order-preserving."""


class PredictorOracle:
    """A fitted predictor + encoding + space spec, queried per config."""

    def __init__(
        self,
        predictor,
        encoding: Union[str, "Encoding"],
        spec: "SpaceSpec",
        name: Optional[str] = None,
    ):
        from ..encodings import encoder_for

        self.predictor = predictor
        self.encoding = encoder_for(encoding, spec)
        self.spec = spec
        self.name = name if name is not None else f"surrogate:{self.encoding.name}"

    def latency_batch(self, configs: Sequence["ArchConfig"]) -> np.ndarray:
        X = self.encoding.encode_batch(list(configs), self.spec)
        lat = np.asarray(self.predictor.predict(X), dtype=float).reshape(-1)
        # Search drivers and Pareto fronts assume latencies are finite; a
        # surrogate emitting NaN/inf (a diverged fit, a badly extrapolated
        # transfer map) must fail loudly here rather than silently pollute
        # every front built downstream.
        bad = np.flatnonzero(~np.isfinite(lat))
        if bad.size:
            first = int(bad[0])
            raise ValueError(
                f"oracle {self.name!r} produced {bad.size} non-finite "
                f"latenc{'y' if bad.size == 1 else 'ies'} out of {lat.size} "
                f"(first: {lat[first]!r} for config at batch index {first}); "
                "refusing to feed them to a search"
            )
        return lat

    def latency(self, config: "ArchConfig") -> float:
        return float(self.latency_batch([config])[0])


class DeviceOracle:
    """True analytical latency of a `SimulatedDevice` (or compatible)."""

    def __init__(self, device, name: Optional[str] = None):
        self.device = device
        if name is None:
            profile = getattr(device, "profile", None)
            name = f"true:{getattr(profile, 'name', 'device')}"
        self.name = name

    def latency_batch(self, configs: Sequence["ArchConfig"]) -> np.ndarray:
        return np.array(
            [self.device.true_latency(c) for c in configs], dtype=float
        )

    def latency(self, config: "ArchConfig") -> float:
        return float(self.device.true_latency(config))
