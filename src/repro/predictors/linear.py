"""Ridge regression: the zoo's linear baseline, closed form in numpy.

Latency over count-style encodings (FCC/FC) is nearly additive, so a
regularised linear model is a surprisingly strong — and essentially free —
surrogate.  Features are z-scored and the target centred inside `fit`, so
``alpha`` means the same thing across devices and encodings; the intercept
is never penalised (it is the centred-target mean).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .protocol import PredictorBase, validate_fit_inputs

__all__ = ["RidgePredictor"]


class RidgePredictor(PredictorBase):
    """Closed-form ridge regression on z-scored features."""

    KIND = "ridge"

    def __init__(self, alpha: float = 1e-2, seed: int = 0):
        # ``seed`` is accepted for protocol uniformity (the fit is exact
        # and deterministic; nothing stochastic consumes it).
        if alpha < 0:
            raise ValueError(f"alpha must be >= 0, got {alpha}")
        self.alpha = alpha
        self.seed = seed
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: float = 0.0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RidgePredictor":
        X, y = validate_fit_inputs(X, y, self)
        self._x_mean = X.mean(axis=0)
        std = X.std(axis=0)
        self._x_std = np.where(std > 0, std, 1.0)
        Xn = (X - self._x_mean) / self._x_std
        y_mean = float(y.mean())

        d = Xn.shape[1]
        gram = Xn.T @ Xn + self.alpha * np.eye(d)
        self.coef_ = np.linalg.solve(gram, Xn.T @ (y - y_mean))
        self.intercept_ = y_mean
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        self._require_fitted()
        Xn = (self._check_predict_input(X) - self._x_mean) / self._x_std
        return Xn @ self.coef_ + self.intercept_

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #

    @property
    def is_fitted(self) -> bool:
        return self.coef_ is not None

    def _get_state(self) -> dict:
        return {
            "x_mean": self._x_mean.tolist(),
            "x_std": self._x_std.tolist(),
            "coef": self.coef_.tolist(),
            "intercept": self.intercept_,
        }

    def _set_state(self, state: dict) -> None:
        self._x_mean = np.asarray(state["x_mean"], dtype=float)
        self._x_std = np.asarray(state["x_std"], dtype=float)
        self.coef_ = np.asarray(state["coef"], dtype=float)
        self.intercept_ = float(state["intercept"])
