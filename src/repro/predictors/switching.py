"""CNAS-style adaptive switching: pick the best zoo member by CV, each refit.

`AdaptiveSwitchingPredictor` (registry name ``"as"``) holds a *zoo* of
predictor registry names.  Every ``fit`` runs a seeded k-fold
cross-validation of each member on the training data, scores the folds
with the chosen metric, picks the winner by `select_winner` (argmin of
mean CV loss, ties broken by zoo order), and refits that member on the
full data.  The ESM loop refits its predictor after every dataset
extension, so the surrogate *family* — not just its weights — adapts as
the dataset grows: linear models tend to win the small early rounds,
ensembles the later ones.

`kfold_indices` and `select_winner` are module-level pure functions so the
property-test suite can pin down their invariants directly.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..metrics import mape, rmse
from .protocol import PredictorBase, validate_fit_inputs

__all__ = ["AdaptiveSwitchingPredictor", "kfold_indices", "select_winner"]

DEFAULT_ZOO: Tuple[str, ...] = ("ridge", "cart", "rf", "gb", "mlp")

_CV_METRICS = {"mape": mape, "rmse": rmse}


def kfold_indices(
    n: int, k: int, seed: int
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Seeded k-fold split of ``range(n)`` into (train, validation) pairs.

    The validation folds partition ``range(n)``: pairwise disjoint, union
    the full index set, sizes differing by at most one.  Indices inside
    each half are sorted, so downstream slicing is order-independent of
    the shuffle; the shuffle itself is a single ``default_rng(seed)``
    permutation, making the split a pure function of ``(n, k, seed)``.
    """
    if k < 2:
        raise ValueError(f"k must be >= 2, got {k}")
    if n < k:
        raise ValueError(f"need at least k={k} samples, got {n}")
    perm = np.random.default_rng(seed).permutation(n)
    parts = np.array_split(perm, k)
    folds = []
    for i, part in enumerate(parts):
        train = np.sort(np.concatenate(parts[:i] + parts[i + 1 :]))
        folds.append((train, np.sort(part)))
    return folds


def select_winner(losses: Mapping[str, float], order: Sequence[str]) -> str:
    """Argmin of ``losses`` over ``order``; earliest entry wins ties.

    Non-finite losses (a member that diverged) never win unless every
    member is non-finite, in which case the first of ``order`` is
    returned — deterministic whatever happens.
    """
    if not order:
        raise ValueError("cannot select a winner from an empty zoo")
    best_name = order[0]
    best_loss = np.inf
    for name in order:
        loss = float(losses[name])
        if not np.isfinite(loss):
            continue
        if loss < best_loss:
            best_loss = loss
            best_name = name
    return best_name


class AdaptiveSwitchingPredictor(PredictorBase):
    """Meta-predictor delegating to the CV winner of its zoo."""

    KIND = "as"

    def __init__(
        self,
        zoo: Optional[Sequence[str]] = None,
        zoo_params: Optional[Dict[str, Dict[str, Any]]] = None,
        cv_folds: int = 3,
        cv_metric: str = "mape",
        seed: int = 0,
    ):
        """``zoo`` lists predictor registry names (default `DEFAULT_ZOO`);
        ``zoo_params`` overrides constructor kwargs per member, e.g.
        ``{"mlp": {"epochs": 100}}``.  Members that accept a ``seed`` and
        are not pinned by ``zoo_params`` inherit this predictor's."""
        if cv_folds < 2:
            raise ValueError(f"cv_folds must be >= 2, got {cv_folds}")
        if cv_metric not in _CV_METRICS:
            raise ValueError(
                f"cv_metric must be one of {tuple(_CV_METRICS)}, "
                f"got {cv_metric!r}"
            )
        self.zoo = list(DEFAULT_ZOO if zoo is None else zoo)
        self.zoo_params = {
            name: dict(params) for name, params in (zoo_params or {}).items()
        }
        if not self.zoo:
            raise ValueError("zoo must name at least one predictor")
        if self.KIND in self.zoo:
            raise ValueError("the adaptive switcher cannot include itself")
        unknown = set(self.zoo_params) - set(self.zoo)
        if unknown:
            raise ValueError(
                f"zoo_params for members not in the zoo: {sorted(unknown)}"
            )
        self.cv_folds = cv_folds
        self.cv_metric = cv_metric
        self.seed = seed
        self.winner_: Optional[str] = None
        self.cv_losses_: Dict[str, float] = {}
        self._model: Optional[PredictorBase] = None

    # ------------------------------------------------------------------ #

    def _spawn(self, name: str) -> PredictorBase:
        """A fresh instance of zoo member ``name`` (never reused across
        folds, so no fitted state leaks between CV rounds)."""
        from . import get_predictor

        params = dict(self.zoo_params.get(name, {}))
        member = get_predictor(name, **params)
        if hasattr(member, "seed") and "seed" not in params:
            member.seed = self.seed
        return member

    def fit(self, X: np.ndarray, y: np.ndarray) -> "AdaptiveSwitchingPredictor":
        X, y = validate_fit_inputs(X, y, self)
        n = X.shape[0]
        if n < 2:
            raise ValueError("adaptive switching needs at least 2 samples")
        k = min(self.cv_folds, n)
        folds = kfold_indices(n, k, self.seed)
        metric = _CV_METRICS[self.cv_metric]
        self.cv_losses_ = {}
        for name in self.zoo:
            fold_losses = []
            for train_idx, val_idx in folds:
                member = self._spawn(name).fit(X[train_idx], y[train_idx])
                fold_losses.append(metric(y[val_idx], member.predict(X[val_idx])))
            self.cv_losses_[name] = float(np.mean(fold_losses))
        self.winner_ = select_winner(self.cv_losses_, self.zoo)
        self._model = self._spawn(self.winner_).fit(X, y)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        self._require_fitted()
        return self._model.predict(self._check_predict_input(X))

    def predict_one(self, x: np.ndarray) -> float:
        """Single-query fast path: go straight to the winner.

        The generic ``predict_one`` would stack the meta-layer's
        delegation (and its input re-validation) on top of the winner's
        own; serving workloads issue millions of single queries, so this
        routes the 1-row batch through the winner's vectorized ``predict``
        directly, paying the delegation cost once instead of twice.
        """
        self._require_fitted()
        return self._model.predict_one(x)

    @property
    def model(self) -> PredictorBase:
        """The fitted winner this predictor currently delegates to."""
        self._require_fitted("inspect the delegate")
        return self._model

    # ------------------------------------------------------------------ #
    # Persistence: the winner's payload nests inside this one
    # ------------------------------------------------------------------ #

    @property
    def is_fitted(self) -> bool:
        return self._model is not None

    def _get_state(self) -> dict:
        return {
            "winner": self.winner_,
            "cv_losses": {name: self.cv_losses_[name] for name in self.zoo},
            "model": self._model.to_payload(),
        }

    def _set_state(self, state: dict) -> None:
        from . import predictor_from_payload

        self.winner_ = str(state["winner"])
        self.cv_losses_ = {
            str(name): float(loss) for name, loss in state["cv_losses"].items()
        }
        self._model = predictor_from_payload(state["model"])
