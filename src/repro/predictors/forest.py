"""Random-forest latency predictor: bagged CART trees, pure numpy.

Each tree sees a seeded bootstrap resample of the rows and a seeded
random subset of the features (the random-subspace method), and the
forest predicts the mean of its trees.  Per-tree randomness comes from
``default_rng([seed, tree_index])``, so the forest is reproducible and
each tree's stream is independent of how many trees run.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .protocol import PredictorBase, validate_fit_inputs
from .tree import _RegressionTree, _validate_tree_params

__all__ = ["RandomForestPredictor"]


class RandomForestPredictor(PredictorBase):
    """Bootstrap-aggregated regression trees with feature subsampling."""

    KIND = "rf"

    def __init__(
        self,
        n_estimators: int = 50,
        max_depth: int = 10,
        min_samples_split: int = 4,
        min_samples_leaf: int = 2,
        max_features: float = 0.7,
        seed: int = 0,
    ):
        """``max_features`` is the fraction of features each tree draws
        (without replacement); 1.0 degrades to plain bagging."""
        if n_estimators < 1:
            raise ValueError(f"n_estimators must be >= 1, got {n_estimators}")
        if not 0.0 < max_features <= 1.0:
            raise ValueError(
                f"max_features must be in (0, 1], got {max_features}"
            )
        _validate_tree_params(max_depth, min_samples_split, min_samples_leaf)
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self._trees: Optional[List[_RegressionTree]] = None
        self._features: Optional[List[np.ndarray]] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestPredictor":
        X, y = validate_fit_inputs(X, y, self)
        n, d = X.shape
        m = max(1, int(round(self.max_features * d)))
        self._trees = []
        self._features = []
        for t in range(self.n_estimators):
            rng = np.random.default_rng([self.seed, t])
            rows = rng.integers(0, n, size=n)
            cols = np.sort(rng.choice(d, size=m, replace=False))
            tree = _RegressionTree().fit(
                X[rows][:, cols],
                y[rows],
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
            )
            self._trees.append(tree)
            self._features.append(cols)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        self._require_fitted()
        X = self._check_predict_input(X)
        out = np.zeros(X.shape[0], dtype=float)
        for tree, cols in zip(self._trees, self._features):
            out += tree.predict(X[:, cols])
        return out / len(self._trees)

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #

    @property
    def is_fitted(self) -> bool:
        return self._trees is not None

    def _get_state(self) -> dict:
        return {
            "trees": [tree.to_jsonable() for tree in self._trees],
            "features": [cols.tolist() for cols in self._features],
        }

    def _set_state(self, state: dict) -> None:
        self._trees = [
            _RegressionTree.from_jsonable(tree) for tree in state["trees"]
        ]
        self._features = [
            np.asarray(cols, dtype=np.int64) for cols in state["features"]
        ]
