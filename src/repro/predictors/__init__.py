"""The predictor zoo, its registry, and the search-facing oracle protocol.

Every member implements the `Predictor` contract (`protocol`):
``fit`` / ``fit_dataset`` / ``predict`` / ``save`` / ``load``, seeded
determinism, JSON-serialisable hyperparameters.  The registry maps CLI
names to constructors; `load_predictor` is the inverse of any member's
``save``, dispatching on the payload's ``kind``.
"""

import json
from pathlib import Path
from typing import Callable, Dict, Tuple, Union

from .boosting import GradientBoostingPredictor
from .forest import RandomForestPredictor
from .linear import RidgePredictor
from .lut import LookupTableSurrogate
from .mlp import MLPPredictor
from .oracle import DeviceOracle, LatencyOracle, PredictorOracle
from .protocol import PREDICTOR_FORMAT_VERSION, Predictor, PredictorBase
from .switching import (
    AdaptiveSwitchingPredictor,
    kfold_indices,
    select_winner,
)
from .tree import CARTPredictor

__all__ = [
    "Predictor",
    "PredictorBase",
    "PREDICTOR_FORMAT_VERSION",
    "MLPPredictor",
    "LookupTableSurrogate",
    "RidgePredictor",
    "CARTPredictor",
    "RandomForestPredictor",
    "GradientBoostingPredictor",
    "AdaptiveSwitchingPredictor",
    "TransferPredictor",
    "kfold_indices",
    "select_winner",
    "PREDICTORS",
    "get_predictor",
    "list_predictors",
    "load_predictor",
    "predictor_from_payload",
    "LatencyOracle",
    "PredictorOracle",
    "DeviceOracle",
]

PREDICTORS: Dict[str, Callable] = {
    "mlp": MLPPredictor,
    "lut": LookupTableSurrogate,
    "lut+bias": lambda **kw: LookupTableSurrogate(bias_correction=True, **kw),
    "ridge": RidgePredictor,
    "cart": CARTPredictor,
    "rf": RandomForestPredictor,
    "gb": GradientBoostingPredictor,
    "as": AdaptiveSwitchingPredictor,
}

# Payload ``kind`` -> class, for `load_predictor`.  Registry aliases
# ("lut+bias") share their class's kind; the hyperparameters disambiguate.
_KINDS: Dict[str, type] = {
    cls.KIND: cls
    for cls in (
        MLPPredictor,
        LookupTableSurrogate,
        RidgePredictor,
        CARTPredictor,
        RandomForestPredictor,
        GradientBoostingPredictor,
        AdaptiveSwitchingPredictor,
    )
}


def get_predictor(name: str, **kwargs):
    """Instantiate a predictor by registry name."""
    try:
        return PREDICTORS[name](**kwargs)
    except KeyError:
        raise KeyError(
            f"unknown predictor {name!r}; available: {', '.join(PREDICTORS)}"
        ) from None


def list_predictors() -> Tuple[str, ...]:
    """Names of all registered predictors."""
    return tuple(PREDICTORS)


def predictor_from_payload(payload: dict) -> PredictorBase:
    """Reconstruct any zoo member from its ``to_payload`` dict."""
    kind = payload.get("kind")
    try:
        cls = _KINDS[kind]
    except KeyError:
        raise ValueError(
            f"unknown predictor kind {kind!r}; known: {', '.join(_KINDS)}"
        ) from None
    return cls.from_payload(payload)


def load_predictor(path: Union[str, Path]) -> PredictorBase:
    """Load a saved predictor of *any* kind (the inverse of ``save``)."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(f"predictor file {path} is not valid JSON: {exc}") from exc
    try:
        return predictor_from_payload(payload)
    except ValueError as exc:
        raise ValueError(f"predictor file {path}: {exc}") from None


# Imported last: `repro.transfer.predictor` subclasses `PredictorBase`
# from this package, so its import must not run before `protocol` has
# been executed above.  With the class in hand, the transfer member joins
# the registry like any other — `get_predictor("transfer")`,
# `load_predictor`, `ESMConfig(predictor="transfer")`, and the contract
# suite all see it through the same two tables.
from ..transfer.predictor import TransferPredictor  # noqa: E402

PREDICTORS["transfer"] = TransferPredictor
_KINDS[TransferPredictor.KIND] = TransferPredictor
