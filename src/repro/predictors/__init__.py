"""Latency predictors, their registry, and the search-facing oracle protocol."""

from typing import Callable, Dict, Tuple

from .lut import LookupTableSurrogate
from .mlp import MLPPredictor
from .oracle import DeviceOracle, LatencyOracle, PredictorOracle

__all__ = [
    "MLPPredictor",
    "LookupTableSurrogate",
    "PREDICTORS",
    "get_predictor",
    "list_predictors",
    "LatencyOracle",
    "PredictorOracle",
    "DeviceOracle",
]

PREDICTORS: Dict[str, Callable] = {
    "mlp": MLPPredictor,
    "lut": LookupTableSurrogate,
    "lut+bias": lambda **kw: LookupTableSurrogate(bias_correction=True, **kw),
}


def get_predictor(name: str, **kwargs):
    """Instantiate a predictor by registry name."""
    try:
        return PREDICTORS[name](**kwargs)
    except KeyError:
        raise KeyError(
            f"unknown predictor {name!r}; available: {', '.join(PREDICTORS)}"
        ) from None


def list_predictors() -> Tuple[str, ...]:
    """Names of all registered predictors."""
    return tuple(PREDICTORS)
