"""Latency predictors and their registry."""

from typing import Callable, Dict, Tuple

from .lut import LookupTableSurrogate
from .mlp import MLPPredictor

__all__ = [
    "MLPPredictor",
    "LookupTableSurrogate",
    "PREDICTORS",
    "get_predictor",
    "list_predictors",
]

PREDICTORS: Dict[str, Callable] = {
    "mlp": MLPPredictor,
    "lut": LookupTableSurrogate,
    "lut+bias": lambda **kw: LookupTableSurrogate(bias_correction=True, **kw),
}


def get_predictor(name: str, **kwargs):
    """Instantiate a predictor by registry name."""
    try:
        return PREDICTORS[name](**kwargs)
    except KeyError:
        raise KeyError(
            f"unknown predictor {name!r}; available: {', '.join(PREDICTORS)}"
        ) from None


def list_predictors() -> Tuple[str, ...]:
    """Names of all registered predictors."""
    return tuple(PREDICTORS)
