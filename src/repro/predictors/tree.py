"""CART regression trees in pure numpy, plus the zoo's tree predictor.

`_RegressionTree` is the shared engine: variance-reduction splits found by
a vectorised prefix-sum scan per feature (no Python loop over candidate
thresholds), stored as flat parallel arrays so prediction is a branch-free
array walk and serialisation is plain lists.  Ties between equally good
splits resolve to the lowest feature index and then the lowest threshold,
which is what makes tree fits — and everything stacked on them
(`RandomForestPredictor`, `GradientBoostingPredictor`) — bit-reproducible
across platforms.

`CARTPredictor` wraps one tree in the zoo's predictor protocol.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .protocol import PredictorBase, validate_fit_inputs

__all__ = ["CARTPredictor"]

_NO_FEATURE = -1  # feature index marking a leaf node


class _RegressionTree:
    """Flat-array CART: ``feature < 0`` marks a leaf holding ``value``."""

    __slots__ = ("feature", "threshold", "left", "right", "value")

    def __init__(self):
        self.feature: np.ndarray = np.empty(0, dtype=np.int64)
        self.threshold: np.ndarray = np.empty(0, dtype=float)
        self.left: np.ndarray = np.empty(0, dtype=np.int64)
        self.right: np.ndarray = np.empty(0, dtype=np.int64)
        self.value: np.ndarray = np.empty(0, dtype=float)

    # ------------------------------------------------------------------ #
    # Fitting
    # ------------------------------------------------------------------ #

    @staticmethod
    def _best_split(
        X: np.ndarray, y: np.ndarray, min_samples_leaf: int
    ) -> "Optional[tuple[int, float]]":
        """(feature, threshold) minimising the children's summed SSE.

        For each feature the targets are scanned in sorted feature order;
        prefix sums give every candidate split's left/right SSE in one
        vectorised pass.  Splits are only allowed between *distinct*
        feature values and where both children keep ``min_samples_leaf``.
        """
        n = y.shape[0]
        best_score = np.inf
        best: Optional[tuple[int, float]] = None
        for j in range(X.shape[1]):
            xj = X[:, j]
            order = np.argsort(xj, kind="stable")
            xs, ys = xj[order], y[order]
            # i = size of the left child, 1..n-1.
            i = np.arange(1, n)
            csum = np.cumsum(ys)[:-1]
            csum2 = np.cumsum(ys * ys)[:-1]
            total, total2 = csum[-1] + ys[-1], csum2[-1] + ys[-1] ** 2
            sse = (
                (csum2 - csum * csum / i)
                + ((total2 - csum2) - (total - csum) ** 2 / (n - i))
            )
            valid = (
                (xs[1:] > xs[:-1])
                & (i >= min_samples_leaf)
                & (n - i >= min_samples_leaf)
            )
            if not valid.any():
                continue
            sse = np.where(valid, sse, np.inf)
            pos = int(np.argmin(sse))  # first minimum -> lowest threshold
            if sse[pos] < best_score:  # strict -> lowest feature index wins
                best_score = float(sse[pos])
                t = (xs[pos] + xs[pos + 1]) / 2.0
                if t >= xs[pos + 1]:
                    # The midpoint of two nearly-adjacent floats can round
                    # up to the right value; ``X <= t`` would then send
                    # every row left and leave an empty child.  Fall back
                    # to the left value, which splits exactly as scored.
                    t = xs[pos]
                best = (j, float(t))
        return best

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        *,
        max_depth: int,
        min_samples_split: int,
        min_samples_leaf: int,
    ) -> "_RegressionTree":
        feature, threshold, left, right, value = [], [], [], [], []

        def build(idx: np.ndarray, depth: int) -> int:
            node = len(feature)
            feature.append(_NO_FEATURE)
            threshold.append(0.0)
            left.append(node)
            right.append(node)
            value.append(float(y[idx].mean()))
            sub_y = y[idx]
            if (
                depth >= max_depth
                or idx.size < min_samples_split
                or np.ptp(sub_y) == 0.0
            ):
                return node
            split = self._best_split(X[idx], sub_y, min_samples_leaf)
            if split is None:
                return node
            j, t = split
            go_left = X[idx, j] <= t
            feature[node] = j
            threshold[node] = t
            left[node] = build(idx[go_left], depth + 1)
            right[node] = build(idx[~go_left], depth + 1)
            return node

        build(np.arange(X.shape[0]), 0)
        self.feature = np.asarray(feature, dtype=np.int64)
        self.threshold = np.asarray(threshold, dtype=float)
        self.left = np.asarray(left, dtype=np.int64)
        self.right = np.asarray(right, dtype=np.int64)
        self.value = np.asarray(value, dtype=float)
        return self

    # ------------------------------------------------------------------ #
    # Prediction: all rows walk the tree one level per pass
    # ------------------------------------------------------------------ #

    def predict(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        node = np.zeros(X.shape[0], dtype=np.int64)
        while True:
            internal = self.feature[node] >= 0
            if not internal.any():
                break
            j = np.where(internal, self.feature[node], 0)
            go_left = X[np.arange(X.shape[0]), j] <= self.threshold[node]
            step = np.where(go_left, self.left[node], self.right[node])
            node = np.where(internal, step, node)
        return self.value[node]

    # ------------------------------------------------------------------ #
    # Plain-data round trip
    # ------------------------------------------------------------------ #

    def to_jsonable(self) -> dict:
        return {
            "feature": self.feature.tolist(),
            "threshold": self.threshold.tolist(),
            "left": self.left.tolist(),
            "right": self.right.tolist(),
            "value": self.value.tolist(),
        }

    @classmethod
    def from_jsonable(cls, d: dict) -> "_RegressionTree":
        tree = cls()
        tree.feature = np.asarray(d["feature"], dtype=np.int64)
        tree.threshold = np.asarray(d["threshold"], dtype=float)
        tree.left = np.asarray(d["left"], dtype=np.int64)
        tree.right = np.asarray(d["right"], dtype=np.int64)
        tree.value = np.asarray(d["value"], dtype=float)
        return tree


def _validate_tree_params(max_depth, min_samples_split, min_samples_leaf):
    if max_depth < 1:
        raise ValueError(f"max_depth must be >= 1, got {max_depth}")
    if min_samples_split < 2:
        raise ValueError(
            f"min_samples_split must be >= 2, got {min_samples_split}"
        )
    if min_samples_leaf < 1:
        raise ValueError(f"min_samples_leaf must be >= 1, got {min_samples_leaf}")


class CARTPredictor(PredictorBase):
    """A single variance-reduction regression tree."""

    KIND = "cart"

    def __init__(
        self,
        max_depth: int = 8,
        min_samples_split: int = 4,
        min_samples_leaf: int = 2,
        seed: int = 0,
    ):
        # ``seed`` is accepted for protocol uniformity: a lone CART fit is
        # deterministic, the ensembles stacked on it are where it matters.
        _validate_tree_params(max_depth, min_samples_split, min_samples_leaf)
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.seed = seed
        self._tree: Optional[_RegressionTree] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "CARTPredictor":
        X, y = validate_fit_inputs(X, y, self)
        self._tree = _RegressionTree().fit(
            X,
            y,
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
        )
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        self._require_fitted()
        return self._tree.predict(self._check_predict_input(X))

    @property
    def n_leaves(self) -> int:
        self._require_fitted("count leaves")
        return int((self._tree.feature == _NO_FEATURE).sum())

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #

    @property
    def is_fitted(self) -> bool:
        return self._tree is not None

    def _get_state(self) -> dict:
        return {"tree": self._tree.to_jsonable()}

    def _set_state(self, state: dict) -> None:
        self._tree = _RegressionTree.from_jsonable(state["tree"])
