"""The predictor protocol: one contract for every surrogate in the zoo.

Everything the rest of the system asks of a latency predictor is captured
here, and the parametrized contract suite (``tests/test_predictor_contract.py``)
runs every registered implementation against it:

* ``fit(X, y)`` / ``fit_dataset(dataset, encoding, spec)`` — training,
  deterministic under a fixed ``seed`` hyperparameter,
* ``predict(X)`` / ``predict_one(x)`` — float64 1-D predictions, refusing
  to run before ``fit``,
* ``get_params()`` — the constructor hyperparameters as a
  JSON-serialisable dict (so configs, reports, and saved models can state
  exactly which predictor produced them),
* ``save(path)`` / ``load(path)`` — atomic JSON persistence that
  round-trips predictions bit for bit.

`PredictorBase` implements the shared parts once: hyperparameter
introspection, the versioned ``{format_version, kind, hyperparameters,
state}`` payload, atomic writes, and the fitted-state guard.  A concrete
predictor only supplies ``KIND``, ``fit``, ``predict``, and the
``_get_state`` / ``_set_state`` pair describing its fitted arrays.
"""

from __future__ import annotations

import inspect
import json
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Protocol, Union, runtime_checkable

import numpy as np

from ..utils import atomic_write_text

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..archspace.spaces import SpaceSpec
    from ..data.dataset import LatencyDataset

__all__ = [
    "Predictor",
    "PredictorBase",
    "PREDICTOR_FORMAT_VERSION",
    "validate_fit_inputs",
]

PREDICTOR_FORMAT_VERSION = 1


@runtime_checkable
class Predictor(Protocol):
    """What `ESMLoop`, `PredictorOracle`, and run provenance rely on."""

    def fit(self, X: np.ndarray, y: np.ndarray) -> "Predictor": ...

    def predict(self, X: np.ndarray) -> np.ndarray: ...

    def predict_one(self, x: np.ndarray) -> float: ...

    def fit_dataset(
        self, dataset: "LatencyDataset", encoding, spec: "SpaceSpec"
    ) -> "Predictor": ...

    def get_params(self) -> Dict[str, Any]: ...

    def save(self, path: Union[str, Path]) -> None: ...


def validate_fit_inputs(X, y, owner=None) -> "tuple[np.ndarray, np.ndarray]":
    """Coerce to float64 and check the `(n, d)` / `(n,)` shape contract.

    When ``owner`` (the predictor being fitted) is given, the training
    feature width is recorded on it so ``predict`` can reject mismatched
    matrices with a clear error instead of a shape-broadcast traceback.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float).reshape(-1)
    if X.ndim != 2 or X.shape[0] != y.shape[0]:
        raise ValueError("X must be (n, d) with one target per row")
    if X.shape[0] == 0:
        raise ValueError("fit needs at least one sample")
    if owner is not None:
        owner._n_features_in = X.shape[1]
    return X, y


class PredictorBase:
    """Shared predictor plumbing; subclasses set ``KIND`` and the state pair."""

    KIND: str = ""

    # Training feature width, recorded by `validate_fit_inputs(..., owner=self)`.
    # ``None`` means unknown (e.g. a predictor restored from disk), in which
    # case the width check is skipped rather than guessed at.
    _n_features_in: Union[int, None] = None

    @property
    def n_features_in_(self) -> "int | None":
        """Feature width seen at ``fit`` time, or None if unknown."""
        return self._n_features_in

    def _check_predict_input(self, X) -> np.ndarray:
        """Coerce predict input to a float64 ``(n, d)`` matrix.

        The batcher's edge cases are part of the contract: a 0-row batch
        passes through (every predictor returns an empty float64 array for
        it), and a feature width that disagrees with the one seen at fit
        time is rejected with an error naming both widths.
        """
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError(
                f"predict expects a 2-D (n, d) matrix, got shape {X.shape}"
            )
        expected = self._n_features_in
        if expected is not None and X.shape[1] != expected:
            raise ValueError(
                f"predict expects {expected} features per row "
                f"(the width seen at fit time), got {X.shape[1]}"
            )
        return X

    # ------------------------------------------------------------------ #
    # Hyperparameters
    # ------------------------------------------------------------------ #

    def get_params(self) -> Dict[str, Any]:
        """Constructor hyperparameters, introspected by name.

        Every constructor argument is stored under its own name, so the
        params of any predictor — current or future — round-trip through
        ``type(self)(**self.get_params())`` and through JSON.
        """
        names = [
            p.name
            for p in inspect.signature(type(self).__init__).parameters.values()
            if p.name != "self" and p.kind is not inspect.Parameter.VAR_KEYWORD
        ]
        return {name: getattr(self, name) for name in names}

    # ------------------------------------------------------------------ #
    # Convenience entry points shared by the whole zoo
    # ------------------------------------------------------------------ #

    def fit_dataset(
        self, dataset: "LatencyDataset", encoding, spec: "SpaceSpec"
    ):
        """Fit straight from a measured dataset: encode, then `fit`.

        ``encoding`` is a registry name or `Encoding` instance; targets
        are the dataset's measured latencies.
        """
        return self.fit(dataset.encode(encoding, spec), dataset.latencies)

    def predict_one(self, x: np.ndarray) -> float:
        return float(self.predict(np.asarray(x, dtype=float)[None, :])[0])

    # ------------------------------------------------------------------ #
    # Fitted-state guard
    # ------------------------------------------------------------------ #

    @property
    def is_fitted(self) -> bool:
        raise NotImplementedError

    def _require_fitted(self, action: str = "predict") -> None:
        if not self.is_fitted:
            raise RuntimeError(f"predictor is not fitted (cannot {action})")

    # ------------------------------------------------------------------ #
    # Persistence: versioned payload + atomic file I/O
    # ------------------------------------------------------------------ #

    def _get_state(self) -> dict:
        """The fitted state as JSON-serialisable plain data."""
        raise NotImplementedError

    def _set_state(self, state: dict) -> None:
        """Restore the fitted state written by `_get_state`."""
        raise NotImplementedError

    def to_payload(self) -> dict:
        """The full serialised form: hyperparameters plus fitted state."""
        self._require_fitted("save")
        return {
            "format_version": PREDICTOR_FORMAT_VERSION,
            "kind": self.KIND,
            "hyperparameters": self.get_params(),
            "state": self._get_state(),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "PredictorBase":
        version = payload.get("format_version")
        if version != PREDICTOR_FORMAT_VERSION:
            raise ValueError(
                f"predictor payload has format_version {version!r} "
                f"(expected {PREDICTOR_FORMAT_VERSION})"
            )
        if payload.get("kind") != cls.KIND:
            raise ValueError(
                f"predictor payload holds kind {payload.get('kind')!r}, "
                f"expected {cls.KIND!r}"
            )
        predictor = cls(**payload["hyperparameters"])
        predictor._set_state(payload["state"])
        return predictor

    def save(self, path: Union[str, Path]) -> None:
        """Serialise the fitted predictor to JSON, atomically.

        The payload goes through `atomic_write_text` (temp file +
        ``os.replace``, like `LatencyDataset.save`), so an interrupt
        mid-save leaves any previous file untouched.  JSON floats use
        shortest-repr encoding, so `load` reproduces bit-identical
        predictions.
        """
        if not self.is_fitted:
            raise RuntimeError("cannot save an unfitted predictor")
        atomic_write_text(path, json.dumps(self.to_payload()))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "PredictorBase":
        """Restore a predictor saved by `save`; predictions are identical."""
        path = Path(path)
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"predictor file {path} is not valid JSON: {exc}"
            ) from exc
        try:
            return cls.from_payload(payload)
        except ValueError as exc:
            raise ValueError(f"predictor file {path}: {exc}") from None
