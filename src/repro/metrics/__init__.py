"""Evaluation metrics, headed by the paper's relative prediction accuracy.

"Accuracy" throughout the paper is ``mean(max(0, 1 - |y_hat - y| / y))``,
reported in percent; `binwise_accuracy` evaluates it per depth bin, the
criterion the ESM loop's ``Acc_TH`` threshold is checked against.
"""

from __future__ import annotations

from typing import Dict, Hashable, Sequence

import numpy as np

__all__ = [
    "paper_accuracy",
    "binwise_accuracy",
    "failing_bins",
    "mape",
    "rmse",
    "spearman",
    "kendall_tau",
]


def _as_arrays(y_true, y_pred):
    y_true = np.asarray(y_true, dtype=float).reshape(-1)
    y_pred = np.asarray(y_pred, dtype=float).reshape(-1)
    if y_true.shape != y_pred.shape:
        raise ValueError("y_true and y_pred must have the same length")
    if y_true.size == 0:
        raise ValueError("metrics need at least one sample")
    return y_true, y_pred


def paper_accuracy(y_true, y_pred) -> float:
    """Mean relative prediction accuracy in percent: ``mean(max(0, 1-|e|/y)) * 100``."""
    y_true, y_pred = _as_arrays(y_true, y_pred)
    rel_err = np.abs(y_pred - y_true) / np.abs(y_true)
    return float(np.maximum(0.0, 1.0 - rel_err).mean() * 100.0)


def binwise_accuracy(y_true, y_pred, groups: Sequence[Hashable]) -> Dict[Hashable, float]:
    """Paper accuracy evaluated separately per group label (e.g. depth bin)."""
    y_true, y_pred = _as_arrays(y_true, y_pred)
    groups = np.asarray(groups)
    if groups.shape[0] != y_true.shape[0]:
        raise ValueError("groups must have one label per sample")
    return {
        key: paper_accuracy(y_true[groups == key], y_pred[groups == key])
        for key in np.unique(groups)
    }


def failing_bins(accuracies: Dict[Hashable, float], threshold: float) -> list:
    """Bin labels whose accuracy misses ``threshold``, in sorted order.

    The ESM loop's convergence check: an empty result means every bin
    meets ``Acc_TH``; a non-empty one is the extension step's target list.
    """
    return sorted(b for b, a in accuracies.items() if float(a) < threshold)


def mape(y_true, y_pred) -> float:
    """Mean absolute percentage error (percent)."""
    y_true, y_pred = _as_arrays(y_true, y_pred)
    return float((np.abs(y_pred - y_true) / np.abs(y_true)).mean() * 100.0)


def rmse(y_true, y_pred) -> float:
    """Root mean squared error, in the target's units."""
    y_true, y_pred = _as_arrays(y_true, y_pred)
    return float(np.sqrt(((y_pred - y_true) ** 2).mean()))


def _rankdata(values: np.ndarray) -> np.ndarray:
    """Average ranks (ties share the mean of their positions)."""
    order = np.argsort(values, kind="stable")
    ranks = np.empty(values.size, dtype=float)
    ranks[order] = np.arange(1, values.size + 1, dtype=float)
    # Average the ranks of tied values.
    for value in np.unique(values):
        mask = values == value
        if mask.sum() > 1:
            ranks[mask] = ranks[mask].mean()
    return ranks


def spearman(y_true, y_pred) -> float:
    """Spearman rank correlation (average-tie ranks, Pearson on ranks)."""
    y_true, y_pred = _as_arrays(y_true, y_pred)
    r_true, r_pred = _rankdata(y_true), _rankdata(y_pred)
    r_true = r_true - r_true.mean()
    r_pred = r_pred - r_pred.mean()
    denom = np.sqrt((r_true**2).sum() * (r_pred**2).sum())
    if denom == 0:
        return 0.0
    return float((r_true * r_pred).sum() / denom)


def kendall_tau(y_true, y_pred) -> float:
    """Kendall rank correlation (tau-b: concordant pairs, tie-corrected).

    The ranking-preservation criterion the NAS layer reports per encoding:
    a surrogate with high tau orders architectures the way true latency
    does, which is what a search actually consumes (Lu et al.).  Degenerate
    inputs (all ties on either side) score 0.0.
    """
    y_true, y_pred = _as_arrays(y_true, y_pred)
    d_true = np.sign(y_true[:, None] - y_true[None, :])
    d_pred = np.sign(y_pred[:, None] - y_pred[None, :])
    upper = np.triu_indices(y_true.size, k=1)
    s = float((d_true[upper] * d_pred[upper]).sum())
    n0 = upper[0].size
    ties_true = n0 - int(np.count_nonzero(d_true[upper]))
    ties_pred = n0 - int(np.count_nonzero(d_pred[upper]))
    denom = np.sqrt(float(n0 - ties_true) * float(n0 - ties_pred))
    if denom == 0:
        return 0.0
    return float(s / denom)
