"""Layer IR, per-family network builders, and cost analysis."""

from .analysis import (
    NetworkCosts,
    network_costs,
    num_kernels,
    total_flops,
    total_params,
    total_traffic_bytes,
    working_set_bytes,
)
from .builders import BUILDER_FAMILIES, build_network
from .ir import LAYER_KINDS, Layer, Network

__all__ = [
    "Layer",
    "Network",
    "LAYER_KINDS",
    "build_network",
    "BUILDER_FAMILIES",
    "total_flops",
    "total_params",
    "total_traffic_bytes",
    "working_set_bytes",
    "num_kernels",
    "NetworkCosts",
    "network_costs",
]
