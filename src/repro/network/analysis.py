"""Whole-network cost analysis over the layer IR."""

from __future__ import annotations

from typing import NamedTuple

from .ir import Network

__all__ = [
    "total_flops",
    "total_params",
    "total_traffic_bytes",
    "working_set_bytes",
    "num_kernels",
    "NetworkCosts",
    "network_costs",
]


def total_flops(net: Network) -> float:
    """End-to-end floating point operations for one inference."""
    return sum(layer.flops for layer in net.layers)


def total_params(net: Network) -> float:
    """Total learnable parameters."""
    return sum(layer.params for layer in net.layers)


def total_traffic_bytes(net: Network) -> float:
    """Total DRAM bytes moved for one inference (unfused execution)."""
    return sum(layer.traffic_bytes for layer in net.layers)


def working_set_bytes(net: Network) -> float:
    """Resident bytes competing for cache during one inference.

    Model weights are touched once per inference and stay hot across the
    run loop, so the whole parameter footprint counts; activations
    contribute their single largest producer/consumer pair.
    """
    weights = sum(layer.weight_bytes for layer in net.layers)
    peak_activation = max(
        (layer.input_bytes + layer.output_bytes for layer in net.layers), default=0.0
    )
    return weights + peak_activation


def num_kernels(net: Network) -> int:
    """Number of launched kernels (all IR layers launch exactly one)."""
    return len(net.layers)


class NetworkCosts(NamedTuple):
    """The static per-inference cost summary of one lowered network.

    This is the deployment-budget view of an architecture — the quantities
    a `repro.nas.constraints.SearchConstraints` budget is written against —
    collected in one pass over the IR so constraint evaluation does not
    re-walk the layer list once per budget axis.
    """

    flops: float
    params: float
    traffic_bytes: float
    working_set_bytes: float
    num_kernels: int


def network_costs(net: Network) -> NetworkCosts:
    """All static cost totals of ``net`` in a single IR traversal."""
    flops = params = traffic = weights = 0.0
    peak_activation = 0.0
    for layer in net.layers:
        flops += layer.flops
        params += layer.params
        traffic += layer.traffic_bytes
        weights += layer.weight_bytes
        peak_activation = max(
            peak_activation, layer.input_bytes + layer.output_bytes
        )
    return NetworkCosts(
        flops=flops,
        params=params,
        traffic_bytes=traffic,
        working_set_bytes=weights + peak_activation,
        num_kernels=len(net.layers),
    )
