"""Layer-level intermediate representation of a concrete network.

A `Network` is a flat, execution-ordered tuple of `Layer` records, each
carrying the exact cost numbers the hardware simulator consumes: FLOPs,
parameter count, and the bytes moved for inputs / outputs / weights.
BatchNorm and activations are folded into their producing layer (standard
inference-graph fusion); element-wise adds, concats and pools appear
explicitly because they launch kernels and move memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

__all__ = ["Layer", "Network", "LAYER_KINDS"]

#: Layer kinds understood by the roofline model.  "conv" covers dense
#: convolutions, "dwconv" depthwise ones (memory bound), "linear" GEMMs,
#: and "pool"/"eltwise"/"concat" are data-movement kernels.
LAYER_KINDS = ("conv", "dwconv", "linear", "pool", "eltwise", "concat")


@dataclass(frozen=True)
class Layer:
    """One executed kernel with its exact cost accounting (fp32 bytes)."""

    name: str
    kind: str
    flops: float
    params: float
    input_bytes: float
    output_bytes: float
    weight_bytes: float
    out_elems: int  # output-tensor elements, used for GPU wave quantization

    def __post_init__(self) -> None:
        if self.kind not in LAYER_KINDS:
            raise ValueError(f"unknown layer kind {self.kind!r}")

    @property
    def traffic_bytes(self) -> float:
        """Total DRAM traffic assuming no inter-layer fusion."""
        return self.input_bytes + self.output_bytes + self.weight_bytes


@dataclass(frozen=True)
class Network:
    """A lowered architecture: ordered layers plus its source family."""

    family: str
    layers: Tuple[Layer, ...]

    def __len__(self) -> int:
        return len(self.layers)

    def __iter__(self):
        return iter(self.layers)
