"""Lower an `ArchConfig` to the concrete layer IR, per family.

Channel/stride schedules follow the usual published macro-architectures
(224x224 input).  The cost structure the simulator and encodings rely on
falls straight out of the arithmetic:

* ResNet bottleneck: the k x k middle conv runs on ``mid = round(C * e)``
  channels, so its FLOPs scale with ``k^2 * e^2`` — a strong *joint*
  kernel-expand interaction.
* MobileNetV3 MBConv: the two pointwise convs (cost ~ ``e``) dominate and
  the kernel only enters the cheap depthwise conv — a weak interaction.
* DenseNet-BC: one kernel per unit and channel counts that grow across a
  unit, so per-block cost depends on cross-block context.
"""

from __future__ import annotations

from typing import List

from ..archspace.config import ArchConfig
from .ir import Layer, Network

__all__ = ["build_network", "BUILDER_FAMILIES"]

_BYTES = 4  # fp32


def _conv(
    name: str,
    cin: int,
    cout: int,
    k: int,
    spatial_in: int,
    stride: int = 1,
    groups: int = 1,
) -> Layer:
    spatial_out = max(1, spatial_in // stride)
    out_elems = cout * spatial_out * spatial_out
    flops = 2.0 * out_elems * (cin // groups) * k * k
    params = float(cout * (cin // groups) * k * k)
    return Layer(
        name=name,
        kind="dwconv" if groups == cin and cin == cout and groups > 1 else "conv",
        flops=flops,
        params=params,
        input_bytes=float(cin * spatial_in * spatial_in * _BYTES),
        output_bytes=float(out_elems * _BYTES),
        weight_bytes=params * _BYTES,
        out_elems=out_elems,
    )


def _pool(name: str, channels: int, spatial_in: int, stride: int = 2) -> Layer:
    spatial_out = max(1, spatial_in // stride)
    out_elems = channels * spatial_out * spatial_out
    return Layer(
        name=name,
        kind="pool",
        flops=float(out_elems * stride * stride),
        params=0.0,
        input_bytes=float(channels * spatial_in * spatial_in * _BYTES),
        output_bytes=float(out_elems * _BYTES),
        weight_bytes=0.0,
        out_elems=out_elems,
    )


def _eltwise(name: str, channels: int, spatial: int) -> Layer:
    elems = channels * spatial * spatial
    return Layer(
        name=name,
        kind="eltwise",
        flops=float(elems),
        params=0.0,
        input_bytes=float(2 * elems * _BYTES),
        output_bytes=float(elems * _BYTES),
        weight_bytes=0.0,
        out_elems=elems,
    )


def _concat(name: str, cin_a: int, cin_b: int, spatial: int) -> Layer:
    elems = (cin_a + cin_b) * spatial * spatial
    return Layer(
        name=name,
        kind="concat",
        flops=0.0,
        params=0.0,
        input_bytes=float(elems * _BYTES),
        output_bytes=float(elems * _BYTES),
        weight_bytes=0.0,
        out_elems=elems,
    )


def _linear(name: str, cin: int, cout: int) -> Layer:
    params = float(cin * cout)
    return Layer(
        name=name,
        kind="linear",
        flops=2.0 * cin * cout,
        params=params,
        input_bytes=float(cin * _BYTES),
        output_bytes=float(cout * _BYTES),
        weight_bytes=params * _BYTES,
        out_elems=cout,
    )


def _build_resnet(config: ArchConfig) -> Network:
    """ResNet with elastic bottleneck blocks (stem -> 4 units -> head)."""
    unit_channels = (256, 512, 1024, 2048)
    unit_strides = (1, 2, 2, 2)
    layers: List[Layer] = [
        _conv("stem.conv", 3, 64, 7, 224, stride=2),
        _pool("stem.pool", 64, 112),
    ]
    cin, spatial = 64, 56
    for u, blocks in enumerate(config.units):
        cout = unit_channels[u]
        for b, block in enumerate(blocks):
            stride = unit_strides[u] if b == 0 else 1
            mid = max(8, int(round(cout * block.expand_ratio)))
            prefix = f"unit{u}.block{b}"
            layers.append(_conv(f"{prefix}.conv1", cin, mid, 1, spatial))
            layers.append(_conv(f"{prefix}.conv2", mid, mid, block.kernel_size, spatial, stride=stride))
            spatial_out = max(1, spatial // stride)
            layers.append(_conv(f"{prefix}.conv3", mid, cout, 1, spatial_out))
            if b == 0 and (stride != 1 or cin != cout):
                layers.append(_conv(f"{prefix}.downsample", cin, cout, 1, spatial, stride=stride))
            layers.append(_eltwise(f"{prefix}.add", cout, spatial_out))
            cin, spatial = cout, spatial_out
    layers.append(_pool("head.avgpool", cin, spatial, stride=spatial))
    layers.append(_linear("head.fc", cin, 1000))
    return Network(family="resnet", layers=tuple(layers))


def _build_mobilenetv3(config: ArchConfig) -> Network:
    """MobileNetV3 with elastic MBConv blocks (stem -> 4 units -> head)."""
    unit_channels = (24, 40, 80, 160)
    unit_strides = (2, 2, 2, 2)
    layers: List[Layer] = [_conv("stem.conv", 3, 16, 3, 224, stride=2)]
    cin, spatial = 16, 112
    for u, blocks in enumerate(config.units):
        cout = unit_channels[u]
        for b, block in enumerate(blocks):
            stride = unit_strides[u] if b == 0 else 1
            hidden = max(8, int(round(cin * block.expand_ratio)))
            prefix = f"unit{u}.block{b}"
            layers.append(_conv(f"{prefix}.expand", cin, hidden, 1, spatial))
            layers.append(
                _conv(f"{prefix}.dwconv", hidden, hidden, block.kernel_size, spatial, stride=stride, groups=hidden)
            )
            spatial_out = max(1, spatial // stride)
            layers.append(_conv(f"{prefix}.project", hidden, cout, 1, spatial_out))
            if stride == 1 and cin == cout:
                layers.append(_eltwise(f"{prefix}.add", cout, spatial_out))
            cin, spatial = cout, spatial_out
    layers.append(_conv("head.conv", cin, 960, 1, spatial))
    layers.append(_pool("head.avgpool", 960, spatial, stride=spatial))
    layers.append(_linear("head.fc", 960, 1000))
    return Network(family="mobilenetv3", layers=tuple(layers))


def _build_densenet(config: ArchConfig) -> Network:
    """DenseNet-BC with elastic dense units (stem -> 5 units -> head)."""
    growth = 32
    unit_spatials = (56, 28, 14, 7, 4)
    layers: List[Layer] = [
        _conv("stem.conv", 3, 64, 7, 224, stride=2),
        _pool("stem.pool", 64, 112),
    ]
    cin = 64
    for u, blocks in enumerate(config.units):
        spatial = unit_spatials[u]
        for b, block in enumerate(blocks):
            prefix = f"unit{u}.block{b}"
            bottleneck = 4 * growth
            layers.append(_conv(f"{prefix}.bottleneck", cin, bottleneck, 1, spatial))
            layers.append(_conv(f"{prefix}.conv", bottleneck, growth, block.kernel_size, spatial))
            layers.append(_concat(f"{prefix}.concat", cin, growth, spatial))
            cin += growth
        if u < len(config.units) - 1:
            cout = cin // 2
            layers.append(_conv(f"transition{u}.conv", cin, cout, 1, spatial))
            layers.append(_pool(f"transition{u}.pool", cout, spatial))
            cin = cout
    layers.append(_pool("head.avgpool", cin, unit_spatials[-1], stride=unit_spatials[-1]))
    layers.append(_linear("head.fc", cin, 1000))
    return Network(family="densenet", layers=tuple(layers))


_BUILDERS = {
    "resnet": _build_resnet,
    "mobilenetv3": _build_mobilenetv3,
    "densenet": _build_densenet,
}

BUILDER_FAMILIES = tuple(_BUILDERS)


def build_network(config: ArchConfig) -> Network:
    """Lower an architecture configuration to its layer IR."""
    try:
        builder = _BUILDERS[config.family]
    except KeyError:
        raise KeyError(
            f"no builder for family {config.family!r}; available: {', '.join(BUILDER_FAMILIES)}"
        ) from None
    return builder(config)
