"""`TransferPredictor`: a proxy-device surrogate behind a monotone map.

The transfer recipe from "One Proxy Device Is Enough" (PAPERS.md): train
one good surrogate on a *proxy* device where measurements are cheap, then
adapt it to each *target* device with a `MonotoneLatencyMap` learned from
a small paired sample set — tens of target measurements instead of the
hundreds a from-scratch surrogate needs.

`TransferPredictor` is a full zoo member (registry name ``"transfer"``):
it satisfies the runtime-checkable `Predictor` protocol, passes the
parametrized contract suite, persists through ``save``/`load_predictor`
(the proxy model's payload nests inside its state, like the adaptive
switcher's winner), and drops into `ESMLoop`, `PredictorOracle`, and
`repro.serve` unchanged.  Two modes:

* **frozen-proxy** (``proxy_payload`` given, or `from_proxy`): the proxy
  surrogate is reconstructed once and never refitted.  ``fit(X, y)``
  only (re)learns the monotone map from the paired sample ``(proxy
  predictions of X, target latencies y)`` — which is why the ESM loop's
  ``transfer_from`` warm start spends its whole measurement budget on
  target-device pairs.
* **self-calibration** (no proxy): ``fit(X, y)`` first fits the ``base``
  zoo member on the data itself, then calibrates it with the map.  This
  keeps the predictor well-defined standalone (and isotonic calibration
  is a respectable surrogate in its own right).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from ..predictors.protocol import PredictorBase, validate_fit_inputs
from .monotone import MonotoneLatencyMap

__all__ = ["TransferPredictor"]


class TransferPredictor(PredictorBase):
    """Proxy-device zoo member composed with a learned monotone map."""

    KIND = "transfer"

    def __init__(
        self,
        proxy_payload: Optional[Dict[str, Any]] = None,
        base: str = "ridge",
        base_params: Optional[Dict[str, Any]] = None,
        seed: int = 0,
    ):
        """``proxy_payload`` is a fitted zoo member's ``to_payload()`` dict
        (JSON-serialisable, so it survives `get_params` round trips); when
        ``None``, ``base``/``base_params`` name the zoo member that
        ``fit`` trains from scratch before calibrating it.  ``seed`` feeds
        the self-calibration base the usual way; the frozen-proxy path is
        deterministic by construction."""
        from ..predictors import PREDICTORS, predictor_from_payload

        if base not in PREDICTORS:
            raise ValueError(
                f"unknown base predictor {base!r}; "
                f"available: {', '.join(PREDICTORS)}"
            )
        if base == self.KIND:
            raise ValueError("a transfer predictor cannot use itself as base")
        self.proxy_payload = proxy_payload
        self.base = base
        self.base_params = dict(base_params or {})
        self.seed = seed
        # The frozen proxy model, reconstructed once from its payload.
        self._frozen_proxy: Optional[PredictorBase] = (
            None
            if proxy_payload is None
            else predictor_from_payload(proxy_payload)
        )
        # What predict() delegates to: the frozen proxy, or the base
        # member the last self-calibration fit trained.
        self._proxy_model: Optional[PredictorBase] = self._frozen_proxy
        self._map: Optional[MonotoneLatencyMap] = None

    # ------------------------------------------------------------------ #
    # Fitting
    # ------------------------------------------------------------------ #

    def _spawn_base(self) -> PredictorBase:
        from ..predictors import get_predictor

        params = dict(self.base_params)
        member = get_predictor(self.base, **params)
        if hasattr(member, "seed") and "seed" not in params:
            member.seed = self.seed
        return member

    def fit(self, X: np.ndarray, y: np.ndarray) -> "TransferPredictor":
        """Learn (only) the monotone map from paired target samples.

        ``X`` encodes target-measured architectures, ``y`` their measured
        target-device latencies.  With a frozen proxy the proxy model is
        untouched; without one, the base member is fitted on ``(X, y)``
        first and then calibrated against its own training targets.
        """
        X, y = validate_fit_inputs(X, y, self)
        if X.shape[0] < 2:
            raise ValueError(
                "transfer fit needs at least 2 paired samples for the "
                f"monotone map, got {X.shape[0]}"
            )
        if self._frozen_proxy is None:
            self._proxy_model = self._spawn_base().fit(X, y)
        proxy_pred = np.asarray(
            self._proxy_model.predict(X), dtype=float
        ).reshape(-1)
        self._map = MonotoneLatencyMap().fit(proxy_pred, y)
        return self

    # ------------------------------------------------------------------ #
    # Prediction
    # ------------------------------------------------------------------ #

    def predict(self, X: np.ndarray) -> np.ndarray:
        self._require_fitted()
        X = self._check_predict_input(X)
        proxy_pred = np.asarray(
            self._proxy_model.predict(X), dtype=float
        ).reshape(-1)
        return self._map.apply(proxy_pred)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def is_fitted(self) -> bool:
        return self._map is not None and self._proxy_model is not None

    @property
    def map_(self) -> MonotoneLatencyMap:
        """The fitted monotone latency map."""
        self._require_fitted("inspect the map")
        return self._map

    @property
    def proxy_model(self) -> PredictorBase:
        """The proxy-side model predictions flow through before the map."""
        if self._proxy_model is None:
            raise RuntimeError(
                "predictor has no proxy model yet (self-calibration mode "
                "before fit)"
            )
        return self._proxy_model

    @property
    def proxy_kind(self) -> str:
        """Registry kind of the proxy-side model (``base`` before fit)."""
        if self._proxy_model is None:
            return self.base
        return type(self._proxy_model).KIND

    @property
    def is_frozen_proxy(self) -> bool:
        """True when fit only refits the map, never the proxy model."""
        return self._frozen_proxy is not None

    @classmethod
    def from_proxy(cls, predictor, **kwargs) -> "TransferPredictor":
        """Wrap an already-fitted zoo member as the frozen proxy model.

        ``predictor`` is any `PredictorBase` with persistence (its
        ``to_payload()`` becomes this predictor's ``proxy_payload``, so
        the wrapper serialises exactly like one built from the payload).
        """
        return cls(proxy_payload=predictor.to_payload(), **kwargs)

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #

    def _get_state(self) -> dict:
        return {
            "proxy_model": self._proxy_model.to_payload(),
            "map": self._map.to_dict(),
        }

    def _set_state(self, state: dict) -> None:
        from ..predictors import predictor_from_payload

        self._proxy_model = predictor_from_payload(state["proxy_model"])
        if self.proxy_payload is not None:
            self._frozen_proxy = self._proxy_model
        self._map = MonotoneLatencyMap.from_dict(state["map"])
