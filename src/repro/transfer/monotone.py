"""The learned monotone latency map at the heart of proxy-device transfer.

"One Proxy Device Is Enough" (PAPERS.md) rests on one empirical fact:
across devices, latency is approximately related by a *monotone* function
— a network that is slower than another on the proxy GPU is almost always
slower on the target board too, even though the absolute scale (and its
curvature) differs wildly.  `MonotoneLatencyMap` learns exactly that
function from a small paired sample set:

* **fit** is isotonic regression via pool-adjacent-violators (PAVA) with
  deterministic tie handling: pairs are first brought into a canonical
  order (``lexsort`` by proxy latency, then target latency), duplicate
  proxy values are pooled into one weighted knot, and violating adjacent
  blocks are merged into their weighted mean.  The result is a pure
  function of the *multiset* of pairs — permuting the input order cannot
  change a single output bit.
* **apply** is piecewise-linear interpolation between the fitted knots
  with *clamped* extrapolation: queries outside the observed proxy range
  saturate at the boundary knot values rather than extrapolating a slope
  off to infinity.  A monotone map can therefore never turn a finite
  proxy prediction into a non-finite target latency.
* **to_dict / from_dict** is versioned JSON persistence that round-trips
  bit-identically (knots are plain float lists; Python's shortest-repr
  float encoding is exact).

The map is deliberately *not* a predictor: it composes with one.
`TransferPredictor` chains ``proxy_predictor.predict`` through
``map.apply`` to produce target-device latencies.
"""

from __future__ import annotations

from typing import Union

import numpy as np

__all__ = ["MonotoneLatencyMap", "MAP_FORMAT_VERSION"]

MAP_FORMAT_VERSION = 1
_KIND = "monotone_latency_map"


def _pava(values: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Weighted pool-adjacent-violators in one left-to-right pass.

    Classic stack algorithm: push each (value, weight) block; while the
    top two blocks violate monotonicity, merge them into their weighted
    mean.  Merges cascade leftwards, so the invariant "stack is
    non-decreasing" holds after every push.  Returns the fitted value per
    input position (block values broadcast over their members).
    """
    # Parallel stacks: block value, block weight, block member count.
    vals: list = []
    wts: list = []
    counts: list = []
    for v, w in zip(values, weights):
        vals.append(float(v))
        wts.append(float(w))
        counts.append(1)
        while len(vals) > 1 and vals[-2] > vals[-1]:
            w_new = wts[-2] + wts[-1]
            v_new = (vals[-2] * wts[-2] + vals[-1] * wts[-1]) / w_new
            vals[-2:] = [v_new]
            wts[-2:] = [w_new]
            counts[-2:] = [counts[-2] + counts[-1]]
    return np.repeat(np.asarray(vals, dtype=float), counts)


class MonotoneLatencyMap:
    """Isotonic proxy→target latency map: PAVA fit, clamped interpolation."""

    def __init__(self) -> None:
        self._x: "np.ndarray | None" = None  # knot positions (strictly increasing)
        self._y: "np.ndarray | None" = None  # knot values (non-decreasing)
        self._n_pairs: int = 0

    # ------------------------------------------------------------------ #
    # Fitting
    # ------------------------------------------------------------------ #

    def fit(self, proxy, target) -> "MonotoneLatencyMap":
        """Fit the map from paired ``(proxy, target)`` latency samples.

        Both inputs are 1-D, equal-length, finite; at least two pairs are
        required (one pair would fit a constant, which carries no ranking
        information).  The fit is invariant — bit for bit — under any
        permutation of the pairs: a canonical ``lexsort`` order is imposed
        before any floating-point accumulation happens.
        """
        proxy = np.asarray(proxy, dtype=float).reshape(-1)
        target = np.asarray(target, dtype=float).reshape(-1)
        if proxy.shape != target.shape:
            raise ValueError(
                f"proxy and target must pair up 1:1, got {proxy.size} proxy "
                f"vs {target.size} target values"
            )
        if proxy.size < 2:
            raise ValueError(
                f"a monotone map needs at least 2 paired samples, got {proxy.size}"
            )
        if not (np.isfinite(proxy).all() and np.isfinite(target).all()):
            bad = int(
                np.count_nonzero(~np.isfinite(proxy))
                + np.count_nonzero(~np.isfinite(target))
            )
            raise ValueError(
                f"paired samples contain {bad} non-finite value(s); "
                "latencies must be finite"
            )

        # Canonical order: by proxy value, ties by target value.  Every
        # accumulation below happens in this order, which is what makes
        # the fit a pure function of the pair multiset.
        order = np.lexsort((target, proxy))
        x = proxy[order]
        y = target[order]

        # Pool duplicate proxy values into one weighted knot (mean of
        # their targets, weight = multiplicity) — PAVA's deterministic
        # tie handling.
        knots_x, start, counts = np.unique(x, return_index=True, return_counts=True)
        pooled = np.add.reduceat(y, start) / counts

        fitted = _pava(pooled, counts.astype(float))
        self._x = knots_x
        self._y = fitted
        self._n_pairs = int(proxy.size)
        return self

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def is_fitted(self) -> bool:
        return self._x is not None

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise RuntimeError("monotone map is not fitted (cannot apply)")

    @property
    def knots(self) -> "tuple[np.ndarray, np.ndarray]":
        """``(x, y)`` knot arrays: x strictly increasing, y non-decreasing."""
        self._require_fitted()
        return self._x.copy(), self._y.copy()

    @property
    def n_knots(self) -> int:
        self._require_fitted()
        return int(self._x.size)

    @property
    def n_pairs(self) -> int:
        """Number of paired samples the map was fitted on."""
        self._require_fitted()
        return self._n_pairs

    @property
    def is_strictly_increasing(self) -> bool:
        """True when every knot value strictly exceeds its predecessor.

        On such a map, ``apply`` preserves the exact pairwise order of any
        inputs inside the knot range — the property the Kendall-tau
        transfer guarantee rests on.  A map with pooled (tied) knots is
        still non-decreasing but can collapse distinct inputs to ties.
        """
        self._require_fitted()
        return bool(np.all(np.diff(self._y) > 0))

    # ------------------------------------------------------------------ #
    # Application
    # ------------------------------------------------------------------ #

    def apply(self, x) -> np.ndarray:
        """Map proxy latencies to target latencies (vectorised).

        Piecewise-linear between knots; inputs outside the fitted range
        clamp to the boundary knot values (``np.interp`` semantics), so a
        finite input can never produce a non-finite output.
        """
        self._require_fitted()
        x = np.asarray(x, dtype=float)
        return np.interp(x, self._x, self._y)

    def __call__(self, x) -> np.ndarray:
        return self.apply(x)

    def apply_one(self, x: float) -> float:
        return float(self.apply(np.asarray([x]))[0])

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict:
        """Versioned JSON-serialisable form; round-trips bit-identically."""
        self._require_fitted()
        return {
            "format_version": MAP_FORMAT_VERSION,
            "kind": _KIND,
            "x": self._x.tolist(),
            "y": self._y.tolist(),
            "n_pairs": self._n_pairs,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "MonotoneLatencyMap":
        version = d.get("format_version")
        if version != MAP_FORMAT_VERSION:
            raise ValueError(
                f"monotone map payload has format_version {version!r} "
                f"(expected {MAP_FORMAT_VERSION})"
            )
        if d.get("kind") != _KIND:
            raise ValueError(
                f"payload holds kind {d.get('kind')!r}, expected {_KIND!r}"
            )
        x = np.asarray(d["x"], dtype=float)
        y = np.asarray(d["y"], dtype=float)
        if x.ndim != 1 or x.shape != y.shape or x.size == 0:
            raise ValueError("monotone map knots must be equal-length 1-D arrays")
        if np.any(np.diff(x) <= 0):
            raise ValueError("monotone map knot positions must strictly increase")
        if np.any(np.diff(y) < 0):
            raise ValueError("monotone map knot values must be non-decreasing")
        instance = cls()
        instance._x = x
        instance._y = y
        instance._n_pairs = int(d.get("n_pairs", x.size))
        return instance

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MonotoneLatencyMap):
            return NotImplemented
        if not (self.is_fitted and other.is_fitted):
            return self.is_fitted == other.is_fitted
        return (
            self._n_pairs == other._n_pairs
            and np.array_equal(self._x, other._x)
            and np.array_equal(self._y, other._y)
        )

    def __repr__(self) -> str:
        if not self.is_fitted:
            return "MonotoneLatencyMap(unfitted)"
        return (
            f"MonotoneLatencyMap({self.n_knots} knots over "
            f"[{self._x[0]:.3e}, {self._x[-1]:.3e}] from {self._n_pairs} pairs)"
        )
