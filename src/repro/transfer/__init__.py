"""Cross-device transfer surrogates: proxy predictors + monotone maps.

One surrogate trained on a *proxy* device, adapted to each *target*
device through a learned `MonotoneLatencyMap` — the "One Proxy Device Is
Enough" recipe (PAPERS.md).  `TransferPredictor` packages the composition
as a regular zoo member; ``python -m repro.transfer.experiments`` sweeps
target measurement budgets over all ordered device pairs and reports
transfer accuracy against from-scratch surrogates at equal budget.
"""

from .monotone import MAP_FORMAT_VERSION, MonotoneLatencyMap
from .predictor import TransferPredictor

__all__ = [
    "MAP_FORMAT_VERSION",
    "MonotoneLatencyMap",
    "TransferPredictor",
]
