"""Cross-device transfer budget sweep: proxy surrogates vs from-scratch.

For every ordered pair of devices this experiment:

1. fits one ``base`` zoo member on a proxy-device dataset (the cheap,
   plentiful side of the transfer recipe),
2. measures a nested paired sample on both devices (`measure_paired`;
   budget 25 is literally the first 25 pairs of budget 100),
3. at each target budget fits a `TransferPredictor` (frozen proxy + map
   learned from the pairs) *and* a from-scratch ``base`` member on the
   same target measurements,
4. scores both against the target device's noise-free latency on a held
   out evaluation sample: MAPE and Kendall tau.

The per-pair verdict is ``match_budget`` — the smallest target budget at
which the transfer surrogate reaches the from-scratch surrogate's MAPE
at the *maximum* budget — and ``half_budget_ok``, whether that happens
with at most half the budget.  The paper-level claim the report summary
checks: transfer matches from-scratch with <= half the target samples on
most ordered pairs.

The JSON report is deterministic by construction — every random draw is
seed-derived, nothing wall-clock enters the payload — so two identical
invocations produce byte-identical files::

    PYTHONPATH=src python -m repro.transfer.experiments --smoke
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, Optional, Sequence

import numpy as np

from ..archspace.sampling import RandomSampler
from ..archspace.spaces import SPACE_NAMES, SpaceSpec, space_by_name
from ..encodings import encoder_for, list_encodings
from ..metrics import kendall_tau, mape
from ..profiling.paired import measure_paired
from ..profiling.protocol import MeasurementProtocol
from .predictor import TransferPredictor

__all__ = [
    "DEFAULT_DEVICES",
    "fit_proxy_surrogate",
    "run_pair",
    "run_experiment",
    "format_report",
    "main",
]

TRANSFER_REPORT_FORMAT_VERSION = 1

# The four devices of the paper's cross-device study: two desktop GPUs,
# a workstation CPU, and an edge board — 12 ordered (proxy, target)
# pairs.
DEFAULT_DEVICES = (
    "rtx4090",
    "rtx3080maxq",
    "threadripper5975wx",
    "raspberrypi4",
)

# Seed slots keeping the experiment's streams disjoint from each other
# and from everything else in the repo.
_SLOT_PROXY_SAMPLE = 401
_SLOT_PROXY_MEASURE = 403
_SLOT_PAIR_SAMPLE = 405
_SLOT_EVAL_SAMPLE = 407


def _settings(smoke: bool) -> dict:
    if smoke:
        return {
            "budgets": (10, 25, 50),
            "n_proxy_samples": 120,
            "n_eval": 160,
            "protocol_runs": 8,
        }
    return {
        "budgets": (10, 25, 50, 100),
        "n_proxy_samples": 300,
        "n_eval": 400,
        "protocol_runs": 25,
    }


def _device(name_or_device, seed: int):
    if isinstance(name_or_device, str):
        from ..hardware.simulator import SimulatedDevice

        return SimulatedDevice(name_or_device, seed=seed)
    return name_or_device


def _spawn_base(base: str, base_params: Dict[str, Any], seed: int):
    from ..predictors import get_predictor

    member = get_predictor(base, **base_params)
    if hasattr(member, "seed") and "seed" not in base_params:
        member.seed = seed
    return member


def fit_proxy_surrogate(
    spec: SpaceSpec,
    encoding: str,
    proxy_device,
    *,
    base: str = "cart",
    base_params: Optional[Dict[str, Any]] = None,
    n_proxy_samples: int = 300,
    protocol: Optional[MeasurementProtocol] = None,
    seed: int = 0,
):
    """The cheap side of the recipe: one zoo member fit on proxy data.

    Samples ``n_proxy_samples`` architectures, measures them on the proxy
    device under ``protocol``, and fits the ``base`` member on them.  The
    config sample stream depends only on ``seed``, so every proxy device
    sees the same sweep — the per-device difference is the latency, which
    is the point.
    """
    device = _device(proxy_device, seed)
    protocol = protocol or MeasurementProtocol()
    configs = RandomSampler(
        spec, rng=np.random.default_rng([seed, _SLOT_PROXY_SAMPLE])
    ).sample_batch(n_proxy_samples)
    latencies, _ = device.measure_batch(
        configs,
        rng=np.random.default_rng([seed, _SLOT_PROXY_MEASURE]),
        protocol=protocol,
    )
    X = encoder_for(encoding, spec).encode_batch(configs, spec)
    return _spawn_base(base, dict(base_params or {}), seed).fit(X, latencies)


def run_pair(
    proxy_predictor,
    proxy_device,
    target_device,
    *,
    spec: SpaceSpec,
    encoding: str,
    base: str = "cart",
    base_params: Optional[Dict[str, Any]] = None,
    budgets: Sequence[int] = (10, 25, 50, 100),
    n_eval: int = 400,
    protocol: Optional[MeasurementProtocol] = None,
    seed: int = 0,
    detail: bool = False,
) -> dict:
    """One ordered (proxy, target) pair; returns the report fragment.

    ``proxy_predictor`` is the already-fitted proxy surrogate (from
    `fit_proxy_surrogate`) — passed in rather than refitted so the twelve
    pairs share the four proxy fits.  ``detail=True`` additionally
    records the monotone map's knots at every budget (what the golden
    trace locks).
    """
    base_params = dict(base_params or {})
    budgets = sorted(int(b) for b in budgets)
    if budgets[0] < 2:
        raise ValueError(f"budgets must be >= 2, got {budgets[0]}")
    proxy = _device(proxy_device, seed)
    target = _device(target_device, seed)
    protocol = protocol or MeasurementProtocol()
    encoder = encoder_for(encoding, spec)

    # One nested paired sample at the maximum budget; smaller budgets are
    # prefixes, exactly how a lab would grow a paired set.
    pair_configs = RandomSampler(
        spec, rng=np.random.default_rng([seed, _SLOT_PAIR_SAMPLE])
    ).sample_batch(budgets[-1])
    paired = measure_paired(
        pair_configs, proxy, target, protocol=protocol, seed=seed
    )
    X_pairs = encoder.encode_batch(pair_configs, spec)

    # Held-out evaluation sample, scored against noise-free truth.
    eval_configs = RandomSampler(
        spec, rng=np.random.default_rng([seed, _SLOT_EVAL_SAMPLE])
    ).sample_batch(n_eval)
    X_eval = encoder.encode_batch(eval_configs, spec)
    true_eval = np.array(
        [target.true_latency(c) for c in eval_configs], dtype=float
    )

    def _score(predictor) -> Dict[str, float]:
        pred = predictor.predict(X_eval)
        return {
            "mape": float(mape(true_eval, pred)),
            "kendall_tau": float(kendall_tau(true_eval, pred)),
        }

    table: Dict[str, dict] = {}
    for b in budgets:
        Xb, yb = X_pairs[:b], paired.target_latencies[:b]
        transfer = TransferPredictor.from_proxy(
            proxy_predictor, base=base, base_params=base_params, seed=seed
        ).fit(Xb, yb)
        scratch = _spawn_base(base, base_params, seed).fit(Xb, yb)
        entry = {
            "transfer": {
                **_score(transfer),
                "n_knots": transfer.map_.n_knots,
            },
            "scratch": _score(scratch),
        }
        if detail:
            x_knots, y_knots = transfer.map_.knots
            entry["transfer"]["map_knots"] = {
                "x": x_knots.tolist(),
                "y": y_knots.tolist(),
            }
        table[str(b)] = entry

    # The budget comparison the claim rests on: smallest target budget at
    # which transfer reaches the from-scratch MAPE at the *max* budget.
    scratch_best = table[str(budgets[-1])]["scratch"]["mape"]
    match_budget = next(
        (
            b
            for b in budgets
            if table[str(b)]["transfer"]["mape"] <= scratch_best
        ),
        None,
    )
    return {
        "proxy_device": paired.proxy_device,
        "target_device": paired.target_device,
        "table": table,
        "scratch_mape_at_max_budget": scratch_best,
        "match_budget": match_budget,
        "half_budget_ok": (
            match_budget is not None and 2 * match_budget <= budgets[-1]
        ),
    }


def run_experiment(
    *,
    devices: Sequence[str] = DEFAULT_DEVICES,
    space: str = "resnet",
    encoding: str = "fcc",
    base: str = "cart",
    base_params: Optional[Dict[str, Any]] = None,
    seed: int = 0,
    smoke: bool = False,
    budgets: Optional[Sequence[int]] = None,
) -> dict:
    """All ordered device pairs; returns the deterministic report."""
    settings = _settings(smoke)
    if budgets is not None:
        settings["budgets"] = tuple(sorted(int(b) for b in budgets))
    base_params = dict(base_params or {})
    devices = list(devices)
    if len(devices) < 2:
        raise ValueError("transfer needs at least two devices")
    if len(set(devices)) != len(devices):
        raise ValueError(f"duplicate device in {devices}")
    spec = space_by_name(space)
    protocol = MeasurementProtocol(runs=settings["protocol_runs"])

    proxies = {
        name: fit_proxy_surrogate(
            spec,
            encoding,
            name,
            base=base,
            base_params=base_params,
            n_proxy_samples=settings["n_proxy_samples"],
            protocol=protocol,
            seed=seed,
        )
        for name in devices
    }
    pairs: Dict[str, dict] = {}
    for proxy_name in devices:
        for target_name in devices:
            if target_name == proxy_name:
                continue
            pairs[f"{proxy_name}->{target_name}"] = run_pair(
                proxies[proxy_name],
                proxy_name,
                target_name,
                spec=spec,
                encoding=encoding,
                base=base,
                base_params=base_params,
                budgets=settings["budgets"],
                n_eval=settings["n_eval"],
                protocol=protocol,
                seed=seed,
            )

    n_ok = sum(1 for p in pairs.values() if p["half_budget_ok"])
    return {
        "format_version": TRANSFER_REPORT_FORMAT_VERSION,
        "kind": "transfer_experiment_report",
        "seed": int(seed),
        "smoke": bool(smoke),
        "space": space,
        "encoding": encoding,
        "base": base,
        "base_params": base_params,
        "devices": devices,
        "budgets": list(settings["budgets"]),
        "n_proxy_samples": settings["n_proxy_samples"],
        "n_eval": settings["n_eval"],
        "protocol_runs": settings["protocol_runs"],
        "pairs": pairs,
        "summary": {
            "n_pairs": len(pairs),
            "n_half_budget_ok": n_ok,
            "max_budget": settings["budgets"][-1],
        },
    }


def format_report(report: dict) -> str:
    """The per-pair budget table the CLI prints."""
    budgets = report["budgets"]
    header = (
        f"{'proxy -> target':<40} "
        + " ".join(f"{'b=' + str(b):>12}" for b in budgets)
        + f" {'tau@max':>8} {'match':>6}"
    )
    lines = [
        f"space={report['space']}  encoding={report['encoding']}  "
        f"base={report['base']}  (cells: transfer/scratch MAPE %)",
        header,
        "-" * len(header),
    ]
    for name, pair in report["pairs"].items():
        cells = []
        for b in budgets:
            entry = pair["table"][str(b)]
            cells.append(
                f"{entry['transfer']['mape']:5.1f}/"
                f"{entry['scratch']['mape']:5.1f}"
            )
        tau = pair["table"][str(budgets[-1])]["transfer"]["kendall_tau"]
        match = pair["match_budget"]
        flag = " *" if pair["half_budget_ok"] else ""
        lines.append(
            f"{name:<40} "
            + " ".join(f"{c:>12}" for c in cells)
            + f" {tau:8.3f} {str(match) if match is not None else '-':>4}"
            + flag
        )
    summary = report["summary"]
    lines.append(
        f"\nhalf-budget wins (*): {summary['n_half_budget_ok']}"
        f"/{summary['n_pairs']} pairs match from-scratch MAPE with "
        f"<= {summary['max_budget'] // 2} of {summary['max_budget']} "
        "target samples"
    )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.transfer.experiments",
        description=(
            "Cross-device transfer budget sweep over all ordered device "
            "pairs."
        ),
    )
    parser.add_argument(
        "--devices",
        nargs="+",
        default=list(DEFAULT_DEVICES),
        help=f"device registry names (default: {' '.join(DEFAULT_DEVICES)})",
    )
    parser.add_argument(
        "--space", choices=SPACE_NAMES, default="resnet"
    )
    parser.add_argument(
        "--encoding", choices=list_encodings(), default="fcc"
    )
    parser.add_argument(
        "--base",
        default="cart",
        help="zoo member used for both the proxy surrogate and the "
        "from-scratch baseline (default: cart)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--budgets",
        nargs="+",
        type=int,
        default=None,
        help="target-device paired-sample budgets (default: per-mode sweep)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced budgets: finishes in seconds",
    )
    parser.add_argument(
        "--out",
        default="transfer-report.json",
        help="where to write the JSON report "
        "(default: ./transfer-report.json)",
    )
    args = parser.parse_args(argv)

    report = run_experiment(
        devices=args.devices,
        space=args.space,
        encoding=args.encoding,
        base=args.base,
        seed=args.seed,
        smoke=args.smoke,
        budgets=args.budgets,
    )
    from ..utils import atomic_write_text

    atomic_write_text(Path(args.out), json.dumps(report, sort_keys=True))
    print(format_report(report))
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
