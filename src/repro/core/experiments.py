"""Fig. 11: balanced vs random initial sampling, iterations to converge.

The paper's ablation compares ESM runs whose *initial* dataset is drawn
balanced over depth bins against plain random sampling: random draws
concentrate total depth around its mean, starving the corner bins, so the
bin-gated loop needs extra extension rounds (or never converges within
budget).  `compare_samplers` runs both strategies from one `ESMConfig`
and returns their reports; the CLI prints the iterations-to-converge
table reproduced in EXPERIMENTS.md::

    PYTHONPATH=src python -m repro.core.experiments --smoke
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path
from typing import Dict, Optional, Sequence, Union

from .config import ESMConfig
from .loop import ESMLoop
from .report import ESMRunReport

__all__ = ["compare_samplers", "format_comparison", "main"]

SAMPLERS = ("balanced", "random")


def compare_samplers(
    config: ESMConfig,
    run_root: Union[str, Path],
    *,
    samplers: Sequence[str] = SAMPLERS,
    workers: int = 1,
) -> Dict[str, ESMRunReport]:
    """Run one ESM loop per initial-sampling strategy, all else equal.

    Each strategy gets its own subdirectory of ``run_root`` (so each run
    is independently resumable) and an otherwise identical config — same
    space, device, seed, threshold, and budgets.
    """
    reports: Dict[str, ESMRunReport] = {}
    for sampler in samplers:
        loop = ESMLoop(
            config.with_sampler(sampler),
            Path(run_root) / sampler,
            workers=workers,
        )
        reports[sampler] = loop.run().report
    return reports


def format_comparison(reports: Dict[str, ESMRunReport]) -> str:
    """The Fig. 11 table: iterations, convergence, dataset growth."""
    lines = [
        f"{'sampler':<10} {'converged':<10} {'iterations':<11} "
        f"{'final size':<11} {'added':<6} min final bin acc",
        "-" * 66,
    ]
    for sampler, report in reports.items():
        accs = report.final_bin_accuracies
        worst = f"{min(accs.values()):.2f}%" if accs else "n/a"
        lines.append(
            f"{sampler:<10} {str(report.converged):<10} "
            f"{report.n_iterations:<11d} {report.final_dataset_size:<11d} "
            f"{report.total_samples_added:<6d} {worst}"
        )
    return "\n".join(lines)


# Reduced-budget hyperparameters per predictor for --smoke runs; the
# adaptive switcher gets a slimmed zoo so per-refit CV stays cheap.
_SMOKE_PREDICTOR_PARAMS = {
    "mlp": {"epochs": 150},
    "as": {
        "zoo_params": {
            "mlp": {"epochs": 150},
            "rf": {"n_estimators": 20},
            "gb": {"n_estimators": 60},
        }
    },
}


def _smoke_config(seed: int, predictor: str = "mlp") -> ESMConfig:
    """A minutes-scale configuration (reduced protocol, small budgets)."""
    return ESMConfig(
        space="resnet",
        device="rtx4090",
        predictor=predictor,
        acc_th=80.0,
        n_bins=5,
        initial_size=40,
        extension_size=10,
        max_iterations=5,
        runs=9,
        n_references=2,
        batch_size=10,
        seed=seed,
        predictor_params=_SMOKE_PREDICTOR_PARAMS.get(predictor, {}),
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.core.experiments",
        description="Balanced-vs-random convergence comparison (Fig. 11).",
    )
    parser.add_argument("--space", default="resnet")
    parser.add_argument("--device", default="rtx4090")
    parser.add_argument(
        "--predictor",
        default="mlp",
        help="predictor registry name; 'as' is the adaptive-switching zoo",
    )
    parser.add_argument("--acc-th", type=float, default=90.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced protocol and budgets: finishes in about a minute",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="run directory root (default: a fresh temporary directory)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        config = _smoke_config(args.seed, predictor=args.predictor)
    else:
        config = ESMConfig(
            space=args.space,
            device=args.device,
            predictor=args.predictor,
            acc_th=args.acc_th,
            seed=args.seed,
        )

    out: Optional[Path] = None if args.out is None else Path(args.out)
    if out is None:
        with tempfile.TemporaryDirectory(prefix="esm-fig11-") as tmp:
            reports = compare_samplers(config, tmp, workers=args.workers)
    else:
        reports = compare_samplers(config, out, workers=args.workers)
    print(format_comparison(reports))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
