"""The ESM framework itself: Algorithm 1 with bin-gated convergence.

`repro.core` wires the pipeline stages the rest of the package provides —
balanced sampling over depth bins, fault-tolerant measurement campaigns,
architecture encodings, the MLP predictor, and the paper's bin-wise
accuracy metric — into the loop the paper actually describes:

    train -> evaluate (bin-wise accuracy vs Acc_TH)
          -> extend (weighted sampling toward failing bins)
          -> retrain

until every depth bin meets the accuracy threshold or the iteration
budget runs out.  `ESMConfig` captures the user inputs of Table II,
`ESMLoop` drives the loop, and `ESMRunReport` records per-iteration bin
accuracies, extension plans, and dataset growth with JSON persistence, so
NAS consumers can `load_run` a finished surrogate plus its provenance
without re-measuring anything.
"""

from .config import ESMConfig
from .extension import extension_plan, extension_weights
from .loop import ESMLoop, ESMRunResult, load_run
from .report import ESM_REPORT_FORMAT_VERSION, ESMRunReport, IterationRecord

__all__ = [
    "ESMConfig",
    "ESMLoop",
    "ESMRunResult",
    "ESMRunReport",
    "IterationRecord",
    "ESM_REPORT_FORMAT_VERSION",
    "extension_weights",
    "extension_plan",
    "load_run",
]
