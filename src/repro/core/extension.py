"""Algorithm 1's dataset-extension step as pure, testable functions.

After each evaluation the loop knows the bin-wise accuracies; the paper
extends the dataset by sampling *more heavily* from the bins that miss
``Acc_TH``, in proportion to how badly they miss it.  The arithmetic
lives here, free of sampling and measurement, so its invariants — weights
normalise, every failing bin gets at least one sample, a fully passing
evaluation extends nothing — can be property-tested in isolation.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Mapping

__all__ = ["extension_weights", "extension_plan"]


def extension_weights(
    accuracies: Mapping[Hashable, float], acc_th: float
) -> Dict[Hashable, float]:
    """Normalised sampling weights over the bins failing ``acc_th``.

    Each failing bin's weight is its accuracy deficit ``acc_th - acc``
    divided by the total deficit, so the weights sum to exactly 1.0 and a
    bin twice as far from the threshold receives twice the sampling mass.
    Passing bins carry no weight; an empty dict means nothing fails.
    """
    if not accuracies:
        raise ValueError("extension_weights needs at least one bin accuracy")
    deficits = {
        b: acc_th - float(a) for b, a in accuracies.items() if float(a) < acc_th
    }
    if not deficits:
        return {}
    total = sum(deficits.values())
    return {b: d / total for b, d in sorted(deficits.items())}


def extension_plan(
    accuracies: Mapping[Hashable, float], acc_th: float, extension_size: int
) -> Dict[Hashable, int]:
    """How many new samples each failing bin receives this iteration.

    ``extension_size`` samples are apportioned by `extension_weights`
    using largest-remainder rounding with a floor of one, so every failing
    bin receives at least one sample even when its weight rounds to zero
    (the corner-bin starvation the balanced strategy exists to prevent).
    The plan totals ``max(extension_size, number of failing bins)``;
    ties are broken deterministically by bin order.  All bins passing
    yields an empty plan.
    """
    if extension_size < 1:
        raise ValueError(f"extension_size must be >= 1, got {extension_size}")
    weights = extension_weights(accuracies, acc_th)
    if not weights:
        return {}
    total = max(extension_size, len(weights))
    counts = {b: 1 for b in weights}
    spare = total - len(weights)
    quotas = {b: w * spare for b, w in weights.items()}
    for b, q in quotas.items():
        counts[b] += math.floor(q)
    leftover = total - sum(counts.values())
    by_remainder = sorted(
        quotas, key=lambda b: (-(quotas[b] - math.floor(quotas[b])), _bin_order(b))
    )
    for b in by_remainder[:leftover]:
        counts[b] += 1
    return counts


def _bin_order(b: Hashable):
    """Deterministic tie-break key (bins are ints in practice)."""
    return (str(type(b)), b if isinstance(b, (int, float)) else str(b))
