"""`ESMLoop`: the paper's Algorithm 1, end to end and resumable.

One run owns a directory::

    run_dir/
      campaign-0000/   # initial dataset (checkpointed CampaignRunner dir)
      campaign-0001/   # extension measured after iteration 0
      ...
      report.json      # ESMRunReport (deterministic bytes)
      dataset.json     # every measurement the surrogate was trained on
      predictor.json   # the trained predictor, when it supports save()

Determinism and resumability are inherited from the layers below: every
RNG is derived from ``(config.seed, slot, iteration)``, and every
measurement goes through a `CampaignRunner` whose shards are
byte-identical across serial, parallel, and interrupted-then-resumed
executions.  Re-running `ESMLoop.run` over an existing ``run_dir``
therefore recomputes the cheap parts (sampling, training, evaluation) and
reuses every completed measurement batch — a loop killed mid-extension
finishes with exactly the bytes an uninterrupted run would have written.
A ``run_dir`` holding campaigns from a *different* config is refused via
the campaign fingerprint rather than silently mixed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, List, Optional, Union

import numpy as np

from ..archspace.config import ArchConfig
from ..archspace.sampling import (
    BalancedSampler,
    RandomSampler,
    assign_depth_bin,
    depth_bins,
)
from ..archspace.spaces import SpaceSpec, space_by_name
from ..data.dataset import LatencyDataset
from ..encodings import encoder_for
from ..hardware.simulator import SimulatedDevice
from ..metrics import binwise_accuracy, failing_bins
from ..predictors import get_predictor
from ..profiling.campaign import CampaignRunner
from ..profiling.protocol import MeasurementProtocol
from ..profiling.reference import ReferenceSet
from .config import ESMConfig
from .extension import extension_plan
from .report import ESMRunReport, IterationRecord

__all__ = ["ESMLoop", "ESMRunResult", "load_run"]

# Slots separating the loop's independent RNG streams; campaign-internal
# streams use default_rng([campaign_seed, batch, attempt]) below these.
_SLOT_REFERENCES = 101
_SLOT_SAMPLER = 103
_SLOT_SPLIT = 107
_SLOT_CAMPAIGN = 109

REPORT_FILENAME = "report.json"
DATASET_FILENAME = "dataset.json"
PREDICTOR_FILENAME = "predictor.json"


def _stream(seed: int, slot: int, iteration: int) -> np.random.Generator:
    return np.random.default_rng([seed, slot, iteration])


@dataclass
class ESMRunResult:
    """What a finished run hands back (and `load_run` reconstructs)."""

    report: ESMRunReport
    dataset: LatencyDataset  # sweep measurements (references excluded)
    predictor: object  # trained on the final train split
    run_dir: Path

    @property
    def converged(self) -> bool:
        return self.report.converged

    def latency_oracle(self, spec: Optional[SpaceSpec] = None):
        """This run's surrogate as a search-facing `PredictorOracle`.

        The loop -> search hand-off: the report's config names the encoding
        and space the predictor was trained under, so a NAS driver can
        consume a finished run without re-stating either.  Pass ``spec``
        when the run used an explicit (non-registry) space.
        """
        from ..predictors.oracle import PredictorOracle

        if self.predictor is None:
            raise ValueError(
                "run has no predictor (not trained, or loaded from a run "
                "whose predictor type does not persist)"
            )
        config = self.report.config
        if spec is None:
            spec = space_by_name(config["space"])
        return PredictorOracle(
            self.predictor,
            config["encoding"],
            spec,
            name=f"{config['predictor']}+{config['encoding']}",
        )


class ESMLoop:
    """Drive train -> evaluate -> extend -> retrain to bin convergence.

    ``device`` / ``spec`` default to the registry entries named by the
    config; pass instances to run against e.g. a `FaultyDevice` wrapper or
    a reduced test space.  ``workers``/``mp_context`` parallelise each
    campaign's batches and never change any produced bytes, so they are
    runtime knobs here rather than `ESMConfig` fields.
    """

    def __init__(
        self,
        config: ESMConfig,
        run_dir: Union[str, Path],
        *,
        device=None,
        spec: Optional[SpaceSpec] = None,
        workers: int = 1,
        mp_context: Optional[str] = None,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.config = config
        self.run_dir = Path(run_dir)
        if spec is None:
            config.validate_space()
            spec = space_by_name(config.space)
        self.spec = spec
        if device is None:
            device = SimulatedDevice(config.device, seed=config.seed)
        self.device = device
        self.workers = int(workers)
        self.mp_context = mp_context
        self.sleep = sleep
        self.bins = depth_bins(self.spec, config.n_bins)
        self.protocol = MeasurementProtocol(
            runs=config.runs, trim_fraction=config.trim_fraction
        )
        self.references = ReferenceSet.from_space(
            self.spec,
            k=config.n_references,
            rng=_stream(config.seed, _SLOT_REFERENCES, 0),
        )
        # Transfer warm start: load (and sanity-check) the proxy-device
        # run's predictor payload once, up front, so a missing or
        # incompatible proxy run fails before any measurement is spent.
        self._proxy_payload = (
            None
            if config.transfer_from is None
            else self._load_proxy_payload(Path(config.transfer_from))
        )

    def _load_proxy_payload(self, proxy_dir: Path) -> dict:
        """The proxy run's predictor payload, compatibility-checked.

        The proxy surrogate's feature space is fixed by the run that
        trained it, so its encoding and architecture space must match this
        config's — a mismatch would silently feed garbage features through
        the frozen proxy, which is exactly the failure mode transfer tests
        exist to catch.  The proxy *device* is expected to differ; that is
        the point.
        """
        import json

        predictor_path = proxy_dir / PREDICTOR_FILENAME
        if not predictor_path.exists():
            raise ValueError(
                f"transfer_from run {proxy_dir} has no {PREDICTOR_FILENAME}; "
                "the proxy run must have been trained with a persistable "
                "predictor"
            )
        report_path = proxy_dir / REPORT_FILENAME
        if report_path.exists():
            proxy_config = ESMRunReport.load(report_path).config
            for field in ("encoding", "space"):
                ours = getattr(self.config, field)
                theirs = proxy_config.get(field)
                if theirs != ours:
                    raise ValueError(
                        f"transfer_from run {proxy_dir} was trained with "
                        f"{field}={theirs!r} but this config uses "
                        f"{field}={ours!r}; the frozen proxy's feature "
                        "space must match"
                    )
        try:
            return json.loads(predictor_path.read_text())
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"transfer_from predictor file {predictor_path} is not "
                f"valid JSON: {exc}"
            ) from exc

    # ------------------------------------------------------------------ #
    # Pieces
    # ------------------------------------------------------------------ #

    def campaign_dir(self, iteration: int) -> Path:
        """Campaign 0 measures the initial dataset; campaign ``i`` the
        extension planned by iteration ``i - 1``."""
        return self.run_dir / f"campaign-{iteration:04d}"

    def _campaign_seed(self, iteration: int) -> int:
        return int(
            _stream(self.config.seed, _SLOT_CAMPAIGN, iteration).integers(2**31 - 1)
        )

    def _sampler(self, iteration: int, kind: str):
        rng = _stream(self.config.seed, _SLOT_SAMPLER, iteration)
        if kind == "balanced":
            return BalancedSampler(self.spec, rng=rng, n_bins=self.config.n_bins)
        return RandomSampler(self.spec, rng=rng)

    def _make_predictor(self):
        params = dict(self.config.predictor_params)
        if self._proxy_payload is not None:
            # The transfer warm start: every refit wraps the same frozen
            # proxy surrogate, so only the monotone map learns from this
            # run's (target-device) measurements.
            params.setdefault("proxy_payload", self._proxy_payload)
        predictor = get_predictor(self.config.predictor, **params)
        # Predictors with their own init RNG follow the run seed unless
        # the params pin one explicitly.
        if hasattr(predictor, "seed") and "seed" not in params:
            predictor.seed = self.config.seed
        return predictor

    def _measure(self, configs: List[ArchConfig], iteration: int) -> LatencyDataset:
        """Measure ``configs`` through a checkpointed, QC'd campaign."""
        cfg = self.config
        runner = CampaignRunner(
            self.device,
            configs,
            self.campaign_dir(iteration),
            self.references,
            protocol=self.protocol,
            batch_size=cfg.batch_size,
            seed=self._campaign_seed(iteration),
            drift_threshold=cfg.drift_threshold,
            max_qc_retries=cfg.max_qc_retries,
            max_transient_retries=cfg.max_transient_retries,
            sleep=self.sleep,
            device_name=cfg.device,
            workers=self.workers,
            mp_context=self.mp_context,
        )
        return runner.run().measurements

    def _evaluate(self, predictor, test: LatencyDataset, encoding):
        """Bin-wise paper accuracy on the held-out split.

        Bins the split left empty score 0.0: a bin with no evidence is a
        failing bin, and the extension step will direct samples at it.
        """
        pred = predictor.predict(test.encode(encoding, self.spec))
        groups = [assign_depth_bin(int(d), self.bins) for d in test.total_depths]
        measured = binwise_accuracy(test.latencies, pred, groups)
        return {
            b: float(measured.get(b, 0.0)) for b in range(len(self.bins))
        }

    # ------------------------------------------------------------------ #
    # The loop
    # ------------------------------------------------------------------ #

    def run(self) -> ESMRunResult:
        """Run (or resume) Algorithm 1 to convergence or budget."""
        started = time.monotonic()
        cfg = self.config
        encoding = encoder_for(cfg.encoding, self.spec)
        self.run_dir.mkdir(parents=True, exist_ok=True)

        initial = self._sampler(0, cfg.initial_sampler).sample_batch(
            cfg.initial_size
        )
        dataset = self._measure(initial, 0)

        records: List[IterationRecord] = []
        converged = False
        predictor = None
        for iteration in range(cfg.max_iterations):
            train, test = dataset.split(
                cfg.train_fraction,
                rng=_stream(cfg.seed, _SLOT_SPLIT, iteration),
            )
            predictor = self._make_predictor()
            predictor.fit(train.encode(encoding, self.spec), train.latencies)
            accuracies = self._evaluate(predictor, test, encoding)
            # The adaptive switcher exposes its per-refit CV winner; fixed
            # predictors are their own (constant) model.
            model_used = getattr(predictor, "winner_", None) or cfg.predictor
            failing = failing_bins(accuracies, cfg.acc_th)
            passed = not failing
            last_iteration = iteration == cfg.max_iterations - 1
            plan = (
                {}
                if passed or last_iteration
                else extension_plan(accuracies, cfg.acc_th, cfg.extension_size)
            )
            records.append(
                IterationRecord(
                    iteration=iteration,
                    dataset_size=len(dataset),
                    train_size=len(train),
                    test_size=len(test),
                    bin_accuracies=accuracies,
                    failing_bins=failing,
                    samples_added={b: int(n) for b, n in plan.items()},
                    passed=passed,
                    predictor_model=model_used,
                )
            )
            if passed:
                converged = True
                break
            if not plan:  # iteration budget exhausted
                break
            # Extensions always sample *within* the failing bins, whatever
            # strategy seeded the initial dataset (Algorithm 1, line 7).
            sampler = self._sampler(iteration + 1, "balanced")
            extension = sampler.sample_counts(plan)
            dataset = dataset + self._measure(extension, iteration + 1)

        report = ESMRunReport(
            config=cfg.to_dict(),
            bins=self.bins,
            iterations=records,
            converged=converged,
            wall_clock_s=time.monotonic() - started,
        )
        report.save(self.run_dir / REPORT_FILENAME)
        dataset.save(self.run_dir / DATASET_FILENAME)
        if predictor is not None and hasattr(predictor, "save"):
            predictor.save(self.run_dir / PREDICTOR_FILENAME)
        return ESMRunResult(
            report=report,
            dataset=dataset,
            predictor=predictor,
            run_dir=self.run_dir,
        )


def load_run(run_dir: Union[str, Path]) -> ESMRunResult:
    """Load a finished run — surrogate plus provenance, no re-measuring.

    The predictor is restored when a ``predictor.json`` exists (predictors
    without persistence support load as ``None``); `load_predictor`
    dispatches on the saved ``kind``, so runs made with any zoo member —
    including the adaptive switcher — round-trip.
    """
    from ..predictors import load_predictor

    run_dir = Path(run_dir)
    report = ESMRunReport.load(run_dir / REPORT_FILENAME)
    dataset = LatencyDataset.load(run_dir / DATASET_FILENAME)
    predictor = None
    predictor_path = run_dir / PREDICTOR_FILENAME
    if predictor_path.exists():
        predictor = load_predictor(predictor_path)
    return ESMRunResult(
        report=report, dataset=dataset, predictor=predictor, run_dir=run_dir
    )
