"""User inputs of an ESM run, as one serialisable dataclass.

The paper's framework takes the architecture space, target device,
encoding, predictor, the bin-wise accuracy threshold ``Acc_TH``, the
number of depth bins, the initial/extension dataset sizes, and an
iteration budget.  `ESMConfig` captures exactly those (plus the
measurement-protocol and QC knobs the campaigns need) and round-trips
through JSON, so a finished run's report can state precisely which inputs
produced it.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, Optional

from ..archspace.spaces import SPACE_NAMES
from ..encodings import ENCODINGS
from ..predictors import PREDICTORS

__all__ = ["ESMConfig"]

_SAMPLERS = ("balanced", "random")


@dataclass(frozen=True)
class ESMConfig:
    """Everything a reproducible ESM run depends on.

    ``space`` / ``device`` are registry names (`space_by_name`,
    `device_by_name`); `ESMLoop` accepts explicit instances for both, in
    which case the names here only label the run.  ``predictor_params``
    are forwarded to the predictor constructor on every (re)fit —
    predictors that accept a ``seed`` default to this config's ``seed``.
    """

    # What the surrogate is for.
    space: str = "resnet"
    device: str = "rtx4090"
    encoding: str = "fcc"
    predictor: str = "mlp"
    predictor_params: Dict[str, Any] = field(default_factory=dict)

    # The convergence criterion.
    acc_th: float = 90.0  # bin-wise accuracy threshold, percent
    n_bins: int = 6
    max_iterations: int = 10
    train_fraction: float = 0.8

    # Dataset generation.
    initial_size: int = 100
    extension_size: int = 20
    initial_sampler: str = "balanced"
    seed: int = 0

    # Cross-device transfer warm start: path to a finished proxy-device
    # run directory (``report.json`` + ``predictor.json``).  When set, the
    # loop wraps that run's predictor in a frozen-proxy
    # `TransferPredictor` and every measurement this run pays for is a
    # target-device pair that only refits the monotone latency map.
    transfer_from: Optional[str] = None

    # Measurement protocol + campaign QC (paper defaults).
    runs: int = 150
    trim_fraction: float = 0.2
    n_references: int = 3
    batch_size: int = 25
    drift_threshold: float = 0.03
    max_qc_retries: int = 2
    max_transient_retries: int = 3

    def __post_init__(self) -> None:
        if self.encoding not in ENCODINGS:
            raise ValueError(
                f"unknown encoding {self.encoding!r}; "
                f"available: {', '.join(ENCODINGS)}"
            )
        if self.predictor not in PREDICTORS:
            raise ValueError(
                f"unknown predictor {self.predictor!r}; "
                f"available: {', '.join(PREDICTORS)}"
            )
        if self.transfer_from is not None and self.predictor != "transfer":
            raise ValueError(
                "transfer_from requires predictor='transfer' "
                f"(got predictor={self.predictor!r}); the warm start wraps "
                "the proxy run's surrogate in a TransferPredictor"
            )
        if self.initial_sampler not in _SAMPLERS:
            raise ValueError(
                f"initial_sampler must be one of {_SAMPLERS}, "
                f"got {self.initial_sampler!r}"
            )
        if not 0.0 < self.acc_th <= 100.0:
            raise ValueError(f"acc_th must be in (0, 100], got {self.acc_th}")
        if not 0.0 < self.train_fraction < 1.0:
            raise ValueError("train_fraction must be in (0, 1)")
        for name in (
            "n_bins",
            "max_iterations",
            "initial_size",
            "extension_size",
            "n_references",
            "batch_size",
        ):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1, got {getattr(self, name)}")

    def validate_space(self) -> None:
        """Check ``space`` is a registry name (skipped for explicit specs)."""
        if self.space not in SPACE_NAMES:
            raise ValueError(
                f"unknown space {self.space!r}; available: {', '.join(SPACE_NAMES)}"
            )

    def with_sampler(self, sampler: str) -> "ESMConfig":
        """This config with a different initial sampler (Fig. 11 sweeps)."""
        return replace(self, initial_sampler=sampler)

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict:
        d = {f.name: getattr(self, f.name) for f in fields(self)}
        d["predictor_params"] = dict(self.predictor_params)
        # Written only when set, so configs (and the golden fixtures built
        # on them) that predate the transfer layer round-trip unchanged.
        if self.transfer_from is None:
            del d["transfer_from"]
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "ESMConfig":
        known = {f.name for f in fields(cls)}
        unknown = set(d) - known
        if unknown:
            raise ValueError(
                f"unknown ESMConfig field(s): {', '.join(sorted(unknown))}"
            )
        return cls(**d)
