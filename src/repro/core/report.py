"""Run reports: what the ESM loop did, iteration by iteration.

`ESMRunReport` is the provenance a NAS consumer loads next to the trained
surrogate: which config produced it, the depth bins used, every
iteration's bin-wise accuracies and extension plan, how the dataset grew,
and whether the run converged.  Serialisation is *deterministic by
construction* — no timestamps, no wall-clock — so a seeded run writes
byte-identical report JSON whether it ran serially, on a process pool, or
across a checkpoint/resume boundary; the golden-trace regression test
locks exactly these bytes.  Wall-clock lives on the in-memory object only
(``wall_clock_s``) and never enters ``to_dict``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..data.dataset import DatasetError
from ..utils import atomic_write_text

__all__ = ["IterationRecord", "ESMRunReport", "ESM_REPORT_FORMAT_VERSION"]

ESM_REPORT_FORMAT_VERSION = 1


@dataclass(frozen=True)
class IterationRecord:
    """One train -> evaluate -> (extend) round.

    ``bin_accuracies`` maps every depth-bin index to its paper accuracy on
    the held-out split (0.0 for bins the split left empty — an unmeasured
    bin is a failing bin).  ``samples_added`` is the Algorithm 1 extension
    plan this evaluation triggered; empty when the iteration passed or the
    budget ended the run.  ``predictor_model`` names the model that scored
    this iteration — the config's predictor for fixed surrogates, the
    per-refit CV winner for the adaptive switcher (``None`` only in
    reports written before the predictor zoo existed).
    """

    iteration: int
    dataset_size: int  # samples available *before* this iteration's extension
    train_size: int
    test_size: int
    bin_accuracies: Dict[int, float]
    failing_bins: List[int]
    samples_added: Dict[int, int]
    passed: bool
    predictor_model: Optional[str] = None

    @property
    def n_added(self) -> int:
        return sum(self.samples_added.values())

    def to_dict(self) -> dict:
        return {
            "iteration": self.iteration,
            "dataset_size": self.dataset_size,
            "train_size": self.train_size,
            "test_size": self.test_size,
            # JSON object keys are strings; from_dict restores the ints.
            "bin_accuracies": {str(b): a for b, a in self.bin_accuracies.items()},
            "failing_bins": list(self.failing_bins),
            "samples_added": {str(b): n for b, n in self.samples_added.items()},
            "passed": self.passed,
            "predictor_model": self.predictor_model,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "IterationRecord":
        return cls(
            iteration=int(d["iteration"]),
            dataset_size=int(d["dataset_size"]),
            train_size=int(d["train_size"]),
            test_size=int(d["test_size"]),
            bin_accuracies={
                int(b): float(a) for b, a in d["bin_accuracies"].items()
            },
            failing_bins=[int(b) for b in d["failing_bins"]],
            samples_added={int(b): int(n) for b, n in d["samples_added"].items()},
            passed=bool(d["passed"]),
            # Absent in pre-zoo reports; those load with None.
            predictor_model=d.get("predictor_model"),
        )


@dataclass
class ESMRunReport:
    """Full provenance of one ESM run, ready for JSON."""

    config: dict  # ESMConfig.to_dict() echo
    bins: List[Tuple[int, int]]  # inclusive (lo, hi) total-depth ranges
    iterations: List[IterationRecord] = field(default_factory=list)
    converged: bool = False
    # Informational only: excluded from to_dict so report bytes stay
    # deterministic across serial / parallel / resumed runs.
    wall_clock_s: float = 0.0

    @property
    def n_iterations(self) -> int:
        return len(self.iterations)

    @property
    def final_dataset_size(self) -> int:
        """Samples after the last extension (0 for an empty report)."""
        if not self.iterations:
            return 0
        last = self.iterations[-1]
        return last.dataset_size + last.n_added

    @property
    def total_samples_added(self) -> int:
        return sum(record.n_added for record in self.iterations)

    @property
    def final_bin_accuracies(self) -> Dict[int, float]:
        if not self.iterations:
            return {}
        return dict(self.iterations[-1].bin_accuracies)

    def accuracy_trace(self) -> List[Dict[int, float]]:
        """Per-iteration bin accuracies, the quantity Fig. 11 plots."""
        return [dict(record.bin_accuracies) for record in self.iterations]

    def predictor_models(self) -> List[Optional[str]]:
        """Which model scored each iteration — for a fixed predictor a
        constant sequence, for the adaptive switcher the CV-winner trace."""
        return [record.predictor_model for record in self.iterations]

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict:
        return {
            "format_version": ESM_REPORT_FORMAT_VERSION,
            "kind": "esm_run_report",
            "config": dict(self.config),
            "bins": [[int(lo), int(hi)] for lo, hi in self.bins],
            "iterations": [record.to_dict() for record in self.iterations],
            "converged": self.converged,
            "final_dataset_size": self.final_dataset_size,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ESMRunReport":
        version = d.get("format_version")
        if version != ESM_REPORT_FORMAT_VERSION:
            raise DatasetError(
                f"unsupported report format_version {version!r} "
                f"(expected {ESM_REPORT_FORMAT_VERSION})"
            )
        if d.get("kind") != "esm_run_report":
            raise DatasetError(
                f"expected kind 'esm_run_report', got {d.get('kind')!r}"
            )
        return cls(
            config=dict(d["config"]),
            bins=[(int(lo), int(hi)) for lo, hi in d["bins"]],
            iterations=[IterationRecord.from_dict(r) for r in d["iterations"]],
            converged=bool(d["converged"]),
        )

    def save(self, path: Union[str, Path]) -> None:
        """Write the report atomically as canonical (sorted-key) JSON."""
        atomic_write_text(path, json.dumps(self.to_dict(), sort_keys=True))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ESMRunReport":
        path = Path(path)
        try:
            text = path.read_text()
        except FileNotFoundError:
            raise DatasetError(f"report file {path} does not exist") from None
        except OSError as exc:
            raise DatasetError(f"report file {path} is unreadable: {exc}") from exc
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise DatasetError(
                f"report file {path} is not valid JSON: {exc}"
            ) from exc
        try:
            return cls.from_dict(payload)
        except DatasetError as exc:
            raise DatasetError(f"report file {path}: {exc}") from exc
        except (KeyError, TypeError, ValueError) as exc:
            raise DatasetError(
                f"report file {path} violates the esm_run_report schema: {exc!r}"
            ) from exc
