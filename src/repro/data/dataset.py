"""Latency datasets: measured samples with JSON persistence.

The serialised form is the ``format_version: 1`` schema used by the cached
datasets under ``benchmarks/_cache/``::

    {"format_version": 1,
     "samples": [{"config": {...}, "latency_s": 0.0241,
                  "device": "rtx3080maxq",
                  "true_latency_s": 0.0240, "is_reference": false}, ...]}

``true_latency_s`` (the simulator's noise-free ground truth, unavailable on
real hardware) and ``is_reference`` (quality-control reference models) are
optional per sample but always written, so round trips are lossless.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..archspace.config import ArchConfig
from ..archspace.spaces import SpaceSpec
from ..encodings import Encoding, get_encoding
from ..utils import ensure_rng

__all__ = ["LatencySample", "LatencyDataset", "FORMAT_VERSION"]

FORMAT_VERSION = 1


@dataclass(frozen=True)
class LatencySample:
    """One measured architecture."""

    config: ArchConfig
    latency_s: float
    device: str
    true_latency_s: Optional[float] = None
    is_reference: bool = False

    def to_dict(self) -> dict:
        return {
            "config": self.config.to_dict(),
            "latency_s": self.latency_s,
            "device": self.device,
            "true_latency_s": self.true_latency_s,
            "is_reference": self.is_reference,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "LatencySample":
        true_latency = d.get("true_latency_s")
        return cls(
            config=ArchConfig.from_dict(d["config"]),
            latency_s=float(d["latency_s"]),
            device=str(d["device"]),
            true_latency_s=None if true_latency is None else float(true_latency),
            is_reference=bool(d.get("is_reference", False)),
        )


class LatencyDataset:
    """An ordered collection of `LatencySample` with array/encoding views."""

    def __init__(self, samples: Sequence[LatencySample] = ()):
        self.samples: List[LatencySample] = list(samples)

    # ---------------------------- container --------------------------- #

    def __len__(self) -> int:
        return len(self.samples)

    def __iter__(self) -> Iterator[LatencySample]:
        return iter(self.samples)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return LatencyDataset(self.samples[index])
        return self.samples[index]

    def append(self, sample: LatencySample) -> None:
        self.samples.append(sample)

    def extend(self, samples: Sequence[LatencySample]) -> None:
        self.samples.extend(samples)

    # ----------------------------- views ------------------------------ #

    @property
    def configs(self) -> List[ArchConfig]:
        return [s.config for s in self.samples]

    @property
    def latencies(self) -> np.ndarray:
        return np.array([s.latency_s for s in self.samples])

    @property
    def total_depths(self) -> np.ndarray:
        return np.array([s.config.total_blocks for s in self.samples])

    def encode(self, encoding: Union[str, Encoding], spec: SpaceSpec) -> np.ndarray:
        """Feature matrix of all configs under the given encoding."""
        if isinstance(encoding, str):
            encoding = get_encoding(encoding)
        return encoding.encode_batch(self.configs, spec)

    def split(
        self,
        train_fraction: float,
        rng: "int | np.random.Generator | None" = None,
    ) -> Tuple["LatencyDataset", "LatencyDataset"]:
        """Shuffled train/test split (seeded, disjoint, exhaustive)."""
        if not 0.0 < train_fraction < 1.0:
            raise ValueError("train_fraction must be in (0, 1)")
        order = ensure_rng(rng).permutation(len(self.samples))
        n_train = int(round(train_fraction * len(self.samples)))
        train = [self.samples[i] for i in order[:n_train]]
        test = [self.samples[i] for i in order[n_train:]]
        return LatencyDataset(train), LatencyDataset(test)

    # -------------------------- persistence --------------------------- #

    def to_dict(self) -> dict:
        return {
            "format_version": FORMAT_VERSION,
            "samples": [s.to_dict() for s in self.samples],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "LatencyDataset":
        version = d.get("format_version")
        if version != FORMAT_VERSION:
            raise ValueError(
                f"unsupported dataset format_version {version!r} "
                f"(expected {FORMAT_VERSION})"
            )
        return cls([LatencySample.from_dict(s) for s in d["samples"]])

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(json.dumps(self.to_dict()))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "LatencyDataset":
        return cls.from_dict(json.loads(Path(path).read_text()))
