"""Latency datasets: measured samples with JSON persistence.

The serialised form is the ``format_version: 1`` schema used by the cached
datasets under ``benchmarks/_cache/``::

    {"format_version": 1,
     "samples": [{"config": {...}, "latency_s": 0.0241,
                  "device": "rtx3080maxq",
                  "true_latency_s": 0.0240, "is_reference": false}, ...]}

``true_latency_s`` (the simulator's noise-free ground truth, unavailable on
real hardware) and ``is_reference`` (quality-control reference models) are
optional per sample but always written, so round trips are lossless.
``qc_passed`` records that a sample came from a batch whose reference-model
QC gate failed even after retries; it defaults to true and is only written
when false, so datasets that predate the QC layer round-trip byte-for-byte.

Files are written atomically (`repro.utils.atomic_write_text`) and loads
wrap every failure mode — missing file, truncated/invalid JSON, schema
violations — in `DatasetError`, which names the file and the problem.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..archspace.config import ArchConfig
from ..archspace.spaces import SpaceSpec
from ..encodings import Encoding, encoder_for
from ..utils import atomic_write_text, ensure_rng

__all__ = ["LatencySample", "LatencyDataset", "DatasetError", "FORMAT_VERSION"]

FORMAT_VERSION = 1


class DatasetError(ValueError):
    """A dataset file or payload is missing, unreadable, or malformed."""


@dataclass(frozen=True)
class LatencySample:
    """One measured architecture."""

    config: ArchConfig
    latency_s: float
    device: str
    true_latency_s: Optional[float] = None
    is_reference: bool = False
    qc_passed: bool = True

    def to_dict(self) -> dict:
        d = {
            "config": self.config.to_dict(),
            "latency_s": self.latency_s,
            "device": self.device,
            "true_latency_s": self.true_latency_s,
            "is_reference": self.is_reference,
        }
        # Written only when set, so pre-QC datasets round-trip unchanged.
        if not self.qc_passed:
            d["qc_passed"] = False
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "LatencySample":
        latency = float(d["latency_s"])
        if not (math.isfinite(latency) and latency > 0):
            raise DatasetError(
                f"latency_s must be a finite positive number, got {d['latency_s']!r}"
            )
        true_latency = d.get("true_latency_s")
        return cls(
            config=ArchConfig.from_dict(d["config"]),
            latency_s=latency,
            device=str(d["device"]),
            true_latency_s=None if true_latency is None else float(true_latency),
            is_reference=bool(d.get("is_reference", False)),
            qc_passed=bool(d.get("qc_passed", True)),
        )


class LatencyDataset:
    """An ordered collection of `LatencySample` with array/encoding views."""

    def __init__(self, samples: Sequence[LatencySample] = ()):
        self.samples: List[LatencySample] = list(samples)

    # ---------------------------- container --------------------------- #

    def __len__(self) -> int:
        return len(self.samples)

    def __iter__(self) -> Iterator[LatencySample]:
        return iter(self.samples)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return LatencyDataset(self.samples[index])
        return self.samples[index]

    def append(self, sample: LatencySample) -> None:
        self.samples.append(sample)

    def extend(self, samples: Sequence[LatencySample]) -> None:
        self.samples.extend(samples)

    def __add__(self, other: "LatencyDataset") -> "LatencyDataset":
        """Concatenation, preserving order — how the ESM loop grows its
        dataset across extension rounds without mutating either operand."""
        if not isinstance(other, LatencyDataset):
            return NotImplemented
        return LatencyDataset(self.samples + other.samples)

    def __eq__(self, other: object) -> bool:
        """Sample-wise equality (samples are frozen dataclasses), used by
        the byte-identity tests around serial vs parallel campaigns."""
        if not isinstance(other, LatencyDataset):
            return NotImplemented
        return self.samples == other.samples

    # ----------------------------- views ------------------------------ #

    @property
    def configs(self) -> List[ArchConfig]:
        return [s.config for s in self.samples]

    @property
    def latencies(self) -> np.ndarray:
        return np.array([s.latency_s for s in self.samples])

    @property
    def total_depths(self) -> np.ndarray:
        return np.array([s.config.total_blocks for s in self.samples])

    def encode(self, encoding: Union[str, Encoding], spec: SpaceSpec) -> np.ndarray:
        """Feature matrix of all configs under the given encoding."""
        return encoder_for(encoding, spec).encode_batch(self.configs, spec)

    def split(
        self,
        train_fraction: float,
        rng: "int | np.random.Generator | None" = None,
    ) -> Tuple["LatencyDataset", "LatencyDataset"]:
        """Shuffled train/test split (seeded, disjoint, exhaustive)."""
        if not 0.0 < train_fraction < 1.0:
            raise ValueError("train_fraction must be in (0, 1)")
        order = ensure_rng(rng).permutation(len(self.samples))
        n_train = int(round(train_fraction * len(self.samples)))
        train = [self.samples[i] for i in order[:n_train]]
        test = [self.samples[i] for i in order[n_train:]]
        return LatencyDataset(train), LatencyDataset(test)

    # -------------------------- persistence --------------------------- #

    def to_dict(self) -> dict:
        return {
            "format_version": FORMAT_VERSION,
            "samples": [s.to_dict() for s in self.samples],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "LatencyDataset":
        version = d.get("format_version")
        if version != FORMAT_VERSION:
            raise ValueError(
                f"unsupported dataset format_version {version!r} "
                f"(expected {FORMAT_VERSION})"
            )
        samples = []
        for index, raw in enumerate(d["samples"]):
            try:
                samples.append(LatencySample.from_dict(raw))
            except DatasetError as exc:
                raise DatasetError(f"sample {index}: {exc}") from exc
            except (KeyError, TypeError, ValueError, AttributeError) as exc:
                raise DatasetError(
                    f"sample {index} violates the sample schema: {exc!r}"
                ) from exc
        return cls(samples)

    def save(self, path: Union[str, Path]) -> None:
        """Serialise to ``path`` atomically (temp file + `os.replace`)."""
        atomic_write_text(path, json.dumps(self.to_dict()))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "LatencyDataset":
        """Load from ``path``; every failure mode raises `DatasetError`."""
        path = Path(path)
        try:
            text = path.read_text()
        except FileNotFoundError:
            raise DatasetError(f"dataset file {path} does not exist") from None
        except OSError as exc:
            raise DatasetError(f"dataset file {path} is unreadable: {exc}") from exc
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise DatasetError(
                f"dataset file {path} is not valid JSON "
                f"(truncated or corrupted write?): {exc}"
            ) from exc
        if not isinstance(payload, dict):
            raise DatasetError(
                f"dataset file {path} holds {type(payload).__name__}, "
                "expected a JSON object"
            )
        try:
            return cls.from_dict(payload)
        except DatasetError as exc:
            raise DatasetError(f"dataset file {path}: {exc}") from exc
        except (KeyError, TypeError, ValueError) as exc:
            raise DatasetError(
                f"dataset file {path} violates the format_version "
                f"{FORMAT_VERSION} schema: {exc!r}"
            ) from exc
