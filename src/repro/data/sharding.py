"""Sharded latency datasets: manifest + sha256 shards, built for millions.

A single ``LatencyDataset`` JSON file stops being a sensible container
somewhere around 10^5 samples: every load parses everything, every save
rewrites everything, and one flipped bit silently poisons the whole file.
`ShardedLatencyDataset` is the scale-out layout::

    dataset_dir/
      manifest.json            # shard names, sizes, sha256 digests
      shard-00000.json         # plain LatencyDataset schema, append-only
      shard-00001.json
      ...

Properties the fleet/campaign machinery leans on:

* **Atomic appends** — ``append_shard`` writes the shard file atomically
  (temp + ``os.replace``) and only then commits the manifest, also
  atomically.  A crash between the two leaves an *orphan* shard file the
  next append overwrites; the manifest never references bytes that are
  not durably on disk.
* **Streaming iteration** — ``__iter__`` / ``iter_shards`` load one shard
  at a time, so a million-sample dataset is consumed at constant memory;
  nothing ever materialises the full sample list unless you ask
  (``to_dataset``).
* **Integrity** — every manifest entry carries the shard's sha256.
  ``verify()`` names each bad shard with expected-vs-actual digests;
  reads check the digest before parsing and raise `DatasetError` naming
  the shard, the digests, and (for schema failures) the failing sample
  index.  ``repair(strict=False)`` quarantines corrupt shards (renamed to
  ``*.corrupt``) and rewrites the manifest so the healthy remainder keeps
  serving; ``strict=True`` refuses and raises instead.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Optional, Sequence, Union

from ..utils import atomic_write_text
from .dataset import DatasetError, LatencyDataset, LatencySample

__all__ = [
    "SHARD_MANIFEST_VERSION",
    "ShardInfo",
    "ShardedLatencyDataset",
    "RepairReport",
]

SHARD_MANIFEST_VERSION = 1


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


@dataclass(frozen=True)
class ShardInfo:
    """One manifest line: a shard's name, size, and content digest."""

    name: str
    n_samples: int
    sha256: str

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "n_samples": self.n_samples,
            "sha256": self.sha256,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ShardInfo":
        return cls(
            name=str(d["name"]),
            n_samples=int(d["n_samples"]),
            sha256=str(d["sha256"]),
        )


@dataclass
class RepairReport:
    """What ``repair`` found and did."""

    checked: int
    dropped: List[str]  # shard names quarantined (renamed *.corrupt)
    kept_samples: int

    @property
    def healthy(self) -> bool:
        return not self.dropped


class ShardedLatencyDataset:
    """An append-only, integrity-checked, streamable dataset directory."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.manifest_path = self.root / "manifest.json"

    # ----------------------------- manifest ---------------------------- #

    @classmethod
    def create(cls, root: Union[str, Path]) -> "ShardedLatencyDataset":
        """Initialise an empty sharded dataset (idempotent on rerun)."""
        store = cls(root)
        if store.manifest_path.exists():
            store._load_manifest()  # validates version
            return store
        store.root.mkdir(parents=True, exist_ok=True)
        store._save_manifest([])
        return store

    @classmethod
    def from_dataset(
        cls,
        dataset: LatencyDataset,
        root: Union[str, Path],
        shard_size: int = 10_000,
    ) -> "ShardedLatencyDataset":
        """Shard an in-memory dataset, ``shard_size`` samples per shard."""
        if shard_size < 1:
            raise ValueError("shard_size must be >= 1")
        store = cls.create(root)
        for lo in range(0, len(dataset), shard_size):
            store.append_shard(dataset.samples[lo : lo + shard_size])
        return store

    def _load_manifest(self) -> List[ShardInfo]:
        try:
            text = self.manifest_path.read_text()
        except FileNotFoundError:
            raise DatasetError(
                f"sharded dataset manifest {self.manifest_path} does not exist"
            ) from None
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise DatasetError(
                f"sharded dataset manifest {self.manifest_path} is not valid "
                f"JSON (truncated or corrupted write?): {exc}"
            ) from exc
        version = payload.get("manifest_version")
        if version != SHARD_MANIFEST_VERSION:
            raise DatasetError(
                f"sharded dataset manifest {self.manifest_path} has "
                f"unsupported manifest_version {version!r} "
                f"(expected {SHARD_MANIFEST_VERSION})"
            )
        return [ShardInfo.from_dict(s) for s in payload.get("shards", [])]

    def _save_manifest(self, shards: Sequence[ShardInfo]) -> None:
        payload = {
            "manifest_version": SHARD_MANIFEST_VERSION,
            "n_samples": sum(s.n_samples for s in shards),
            "n_shards": len(shards),
            "shards": [s.to_dict() for s in shards],
        }
        atomic_write_text(self.manifest_path, json.dumps(payload, indent=2))

    @property
    def shards(self) -> List[ShardInfo]:
        return self._load_manifest()

    def shard_path(self, name: str) -> Path:
        return self.root / name

    def __len__(self) -> int:
        return sum(s.n_samples for s in self._load_manifest())

    # ------------------------------ writes ----------------------------- #

    def append_shard(self, samples: Sequence[LatencySample]) -> ShardInfo:
        """Durably append one shard: shard file first, then the manifest.

        An interrupt after the shard write but before the manifest commit
        leaves an orphan file at the next shard name; the next append
        simply overwrites it (same atomic replace), so the torn write is
        invisible — the manifest is always the single source of truth.
        """
        if not samples:
            raise ValueError("refusing to append an empty shard")
        shards = self._load_manifest()
        name = f"shard-{len(shards):05d}.json"
        text = json.dumps(LatencyDataset(samples).to_dict())
        atomic_write_text(self.shard_path(name), text)
        info = ShardInfo(
            name=name, n_samples=len(samples), sha256=_sha256(text)
        )
        self._save_manifest([*shards, info])
        return info

    def extend(
        self, samples: Sequence[LatencySample], shard_size: int = 10_000
    ) -> List[ShardInfo]:
        """Append many samples as consecutive ``shard_size`` shards."""
        if shard_size < 1:
            raise ValueError("shard_size must be >= 1")
        samples = list(samples)
        return [
            self.append_shard(samples[lo : lo + shard_size])
            for lo in range(0, len(samples), shard_size)
        ]

    # ------------------------------ reads ------------------------------ #

    def read_shard(self, info: ShardInfo) -> LatencyDataset:
        """One shard, digest-checked before parsing.

        Raises `DatasetError` naming the shard and both digests on a
        sha256 mismatch, and delegating to `LatencyDataset` diagnostics
        (file, failing sample index) on schema violations.
        """
        path = self.shard_path(info.name)
        try:
            text = path.read_text()
        except FileNotFoundError:
            raise DatasetError(
                f"shard {path} is named by the manifest but missing on disk"
            ) from None
        actual = _sha256(text)
        if actual != info.sha256:
            raise DatasetError(
                f"shard {path} is corrupt: manifest expects sha256 "
                f"{info.sha256}, file hashes to {actual}"
            )
        return LatencyDataset.load(path)

    def iter_shards(self) -> Iterator[LatencyDataset]:
        """Stream the dataset one digest-checked shard at a time."""
        for info in self._load_manifest():
            yield self.read_shard(info)

    def __iter__(self) -> Iterator[LatencySample]:
        for shard in self.iter_shards():
            yield from shard

    def to_dataset(self) -> LatencyDataset:
        """Materialise everything (only sensible for small datasets)."""
        merged = LatencyDataset()
        for shard in self.iter_shards():
            merged.extend(shard.samples)
        return merged

    # ---------------------------- integrity ---------------------------- #

    def verify(self) -> List[str]:
        """Every integrity problem, one human-readable line each.

        Returns an empty list for a healthy dataset; never raises — this
        is the read-only diagnosis half of ``repair``.
        """
        problems: List[str] = []
        for info in self._load_manifest():
            path = self.shard_path(info.name)
            try:
                text = path.read_text()
            except FileNotFoundError:
                problems.append(f"shard {info.name}: missing from disk")
                continue
            actual = _sha256(text)
            if actual != info.sha256:
                problems.append(
                    f"shard {info.name}: sha256 mismatch "
                    f"(expected {info.sha256}, actual {actual})"
                )
                continue
            try:
                shard = LatencyDataset.load(path)
            except DatasetError as exc:
                problems.append(f"shard {info.name}: {exc}")
                continue
            if len(shard) != info.n_samples:
                problems.append(
                    f"shard {info.name}: manifest says {info.n_samples} "
                    f"samples, file holds {len(shard)}"
                )
        return problems

    def repair(self, strict: bool = True) -> RepairReport:
        """Restore manifest/disk agreement.

        ``strict=True`` (the default) raises `DatasetError` listing every
        problem — nothing is touched.  ``strict=False`` quarantines each
        corrupt or missing shard (renamed to ``<name>.corrupt`` when
        present) and rewrites the manifest over the healthy remainder, so
        a partially damaged million-sample dataset degrades to a smaller
        dataset instead of an unreadable one.
        """
        shards = self._load_manifest()
        healthy: List[ShardInfo] = []
        dropped: List[str] = []
        problems: List[str] = []
        for info in shards:
            path = self.shard_path(info.name)
            problem: Optional[str] = None
            try:
                text = path.read_text()
            except FileNotFoundError:
                problem = f"shard {info.name}: missing from disk"
                text = None
            if text is not None:
                actual = _sha256(text)
                if actual != info.sha256:
                    problem = (
                        f"shard {info.name}: sha256 mismatch "
                        f"(expected {info.sha256}, actual {actual})"
                    )
            if problem is None:
                healthy.append(info)
                continue
            problems.append(problem)
            dropped.append(info.name)
            if not strict and text is not None:
                path.replace(path.with_suffix(path.suffix + ".corrupt"))
        if problems and strict:
            raise DatasetError(
                "sharded dataset is corrupt (rerun with strict=False to "
                "quarantine):\n  " + "\n  ".join(problems)
            )
        if dropped:
            self._save_manifest(healthy)
        return RepairReport(
            checked=len(shards),
            dropped=dropped,
            kept_samples=sum(s.n_samples for s in healthy),
        )
