"""Latency dataset container, JSON (de)serialisation, and sharded storage."""

from .dataset import FORMAT_VERSION, DatasetError, LatencyDataset, LatencySample
from .sharding import (
    SHARD_MANIFEST_VERSION,
    RepairReport,
    ShardedLatencyDataset,
    ShardInfo,
)

__all__ = [
    "LatencyDataset",
    "LatencySample",
    "DatasetError",
    "FORMAT_VERSION",
    "ShardedLatencyDataset",
    "ShardInfo",
    "RepairReport",
    "SHARD_MANIFEST_VERSION",
]
