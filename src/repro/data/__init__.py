"""Latency dataset container and JSON (de)serialisation."""

from .dataset import FORMAT_VERSION, DatasetError, LatencyDataset, LatencySample

__all__ = ["LatencyDataset", "LatencySample", "DatasetError", "FORMAT_VERSION"]
