"""Latency dataset container and JSON (de)serialisation."""

from .dataset import FORMAT_VERSION, LatencyDataset, LatencySample

__all__ = ["LatencyDataset", "LatencySample", "FORMAT_VERSION"]
