"""Small shared helpers (deterministic RNG handling, atomic file writes)."""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Union

import numpy as np

__all__ = ["ensure_rng", "atomic_write_text"]


def ensure_rng(rng: "int | np.random.Generator | None") -> np.random.Generator:
    """Coerce ``rng`` into a `numpy.random.Generator`.

    Accepts an existing generator (returned as-is, so callers can share a
    stream), an integer seed, or ``None`` (fresh nondeterministic stream).
    Every stochastic component in the package funnels through this, which is
    what makes "same seed => identical output" testable end to end.
    """
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def atomic_write_text(path: Union[str, Path], text: str) -> None:
    """Write ``text`` to ``path`` atomically.

    The text goes to a temporary file in the same directory (same
    filesystem, so the final rename cannot degrade into a copy) and is
    fsynced before `os.replace` swaps it into place.  Readers therefore see
    either the previous complete file or the new complete file — never a
    truncated intermediate — and an interrupt mid-write leaves the
    destination untouched.  Dataset saves, campaign shards, and campaign
    manifests all funnel through here.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
