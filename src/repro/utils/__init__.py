"""Small shared helpers (deterministic RNG handling)."""

from __future__ import annotations

import numpy as np

__all__ = ["ensure_rng"]


def ensure_rng(rng: "int | np.random.Generator | None") -> np.random.Generator:
    """Coerce ``rng`` into a `numpy.random.Generator`.

    Accepts an existing generator (returned as-is, so callers can share a
    stream), an integer seed, or ``None`` (fresh nondeterministic stream).
    Every stochastic component in the package funnels through this, which is
    what makes "same seed => identical output" testable end to end.
    """
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)
