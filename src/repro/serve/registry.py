"""The model registry: fitted surrogates keyed on (space, device, encoding).

One registry backs a prediction server.  Each key maps to an immutable
`ModelEntry` — the fitted predictor, a monotonically increasing version,
and (when loaded from disk) the source path plus a sha256 fingerprint of
its bytes.  Three invariants make hot-swap safe without any lock around
``predict``:

* **Entries are immutable.**  A swap builds a fresh `ModelEntry` and
  rebinds the dict slot — a single pointer flip under the GIL.  A reader
  that grabbed the old entry keeps a consistent (predictor, version)
  pair; in-flight micro-batches finish on the model they started with.
* **Versions only grow.**  Every register/swap of a key increments its
  version, so responses can state exactly which model produced them and
  tests can prove no batch was torn across a swap.
* **Files are atomic.**  Models arrive via the `PredictorBase.save`
  persistence contract (temp file + ``os.replace``), so `poll` — the
  watch/reload path that picks up freshly retrained surrogates — only
  ever sees the previous complete payload or the new complete payload.
  A trainer crashing mid-save changes nothing: the fingerprint matches,
  no swap happens.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, NamedTuple, Optional, Tuple, Union

from ..predictors import load_predictor
from ..predictors.protocol import Predictor

__all__ = ["ServeKey", "ModelEntry", "ModelRegistry"]


class ServeKey(NamedTuple):
    """What a prediction request addresses: a space, a device, an encoding."""

    space: str
    device: str
    encoding: str

    def __str__(self) -> str:  # "resnet/raspberrypi4/fcc" in errors and stats
        return f"{self.space}/{self.device}/{self.encoding}"


KeyLike = Union[ServeKey, Tuple[str, str, str]]


def _as_key(key: KeyLike) -> ServeKey:
    return key if isinstance(key, ServeKey) else ServeKey(*key)


def _fingerprint(path: Path) -> str:
    return hashlib.sha256(path.read_bytes()).hexdigest()


@dataclass(frozen=True)
class ModelEntry:
    """One registered surrogate: immutable, so a reference is a snapshot."""

    key: ServeKey
    predictor: Predictor
    version: int
    path: Optional[Path] = None
    fingerprint: Optional[str] = None

    def describe(self) -> dict:
        return {
            "key": str(self.key),
            "kind": getattr(self.predictor, "KIND", type(self.predictor).__name__),
            "version": self.version,
            "path": None if self.path is None else str(self.path),
            "fingerprint": self.fingerprint,
        }


class ModelRegistry:
    """Keyed store of fitted surrogates with atomic hot-swap and reload."""

    def __init__(self) -> None:
        self._entries: Dict[ServeKey, ModelEntry] = {}
        self._watched: Dict[ServeKey, Path] = {}
        self._subscribers: List[Callable[[ServeKey, ModelEntry], None]] = []
        self.swaps = 0

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: KeyLike) -> bool:
        return _as_key(key) in self._entries

    def keys(self) -> Tuple[ServeKey, ...]:
        return tuple(self._entries)

    def get(self, key: KeyLike) -> ModelEntry:
        """The current entry for ``key`` — one dict read, never a lock."""
        key = _as_key(key)
        try:
            return self._entries[key]
        except KeyError:
            known = ", ".join(str(k) for k in self._entries) or "(none)"
            raise KeyError(
                f"no model registered for {key}; registered: {known}"
            ) from None

    def describe(self) -> List[dict]:
        """One summary dict per registered model, sorted by key."""
        return [
            self._entries[key].describe() for key in sorted(self._entries)
        ]

    # ------------------------------------------------------------------ #
    # Registration and hot-swap
    # ------------------------------------------------------------------ #

    def subscribe(self, fn: Callable[[ServeKey, ModelEntry], None]) -> None:
        """Call ``fn(key, entry)`` after every register/swap of any key.

        The server uses this to drop the prediction LRU of a swapped key;
        callbacks run after the pointer flip, so a subscriber reading the
        registry sees the new entry.
        """
        self._subscribers.append(fn)

    def register(
        self,
        key: KeyLike,
        predictor: Predictor,
        *,
        path: "Path | str | None" = None,
    ) -> ModelEntry:
        """Bind ``predictor`` to ``key`` (first version, or the next one).

        ``register`` on an existing key *is* a hot-swap: the entry is
        rebuilt with the bumped version and flipped in atomically.
        """
        if not getattr(predictor, "is_fitted", True):
            raise ValueError(f"refusing to register an unfitted predictor for {key}")
        key = _as_key(key)
        previous = self._entries.get(key)
        path = None if path is None else Path(path)
        entry = ModelEntry(
            key=key,
            predictor=predictor,
            version=1 if previous is None else previous.version + 1,
            path=path,
            fingerprint=None if path is None else _fingerprint(path),
        )
        self._entries[key] = entry  # the pointer flip
        if previous is not None:
            self.swaps += 1
        for fn in self._subscribers:
            fn(key, entry)
        return entry

    def swap(self, key: KeyLike, predictor: Predictor) -> ModelEntry:
        """Hot-swap an already-registered key to a freshly (re)trained model."""
        key = _as_key(key)
        if key not in self._entries:
            raise KeyError(f"cannot swap {key}: no model registered for it")
        return self.register(key, predictor)

    # ------------------------------------------------------------------ #
    # Disk: load and watch/reload
    # ------------------------------------------------------------------ #

    def load(
        self, key: KeyLike, path: Union[str, Path], *, watch: bool = False
    ) -> ModelEntry:
        """Load a saved predictor (any zoo kind) from ``path`` and register it.

        With ``watch=True`` the path is remembered and `poll` will reload
        it whenever its bytes change — the retrain-and-republish loop.
        """
        key = _as_key(key)
        path = Path(path)
        entry = self.register(key, load_predictor(path), path=path)
        if watch:
            self._watched[key] = path
        return entry

    def watched(self) -> Dict[ServeKey, Path]:
        return dict(self._watched)

    def poll(self) -> List[ServeKey]:
        """Reload every watched model whose file content changed.

        Returns the keys that were actually swapped.  Because model saves
        are atomic, a changed fingerprint always denotes a complete new
        payload; an unchanged one (including after a trainer crashed
        mid-save) is a no-op.  A watched file that briefly disappears is
        skipped — the server keeps answering from the model it has.
        """
        swapped: List[ServeKey] = []
        for key, path in self._watched.items():
            try:
                fingerprint = _fingerprint(path)
            except OSError:
                continue
            if fingerprint == self._entries[key].fingerprint:
                continue
            self.register(key, load_predictor(path), path=path)
            swapped.append(key)
        return swapped
