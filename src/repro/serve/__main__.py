"""Run a prediction server from saved models: ``python -m repro.serve``.

Model files are the zoo's ``save`` payloads, named for their registry
key: ``<space>__<device>__<encoding>.json`` (e.g.
``resnet__raspberrypi4__fcc.json``).  Every file in ``--models`` is
loaded at startup and watched; overwriting one with a freshly retrained
surrogate (saves are atomic) hot-swaps it live within ``--poll-interval``
seconds.  Speak JSON-lines to the listening port — see the README
"Serve" quick-start.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from pathlib import Path

from .registry import ModelRegistry, ServeKey
from .server import PredictionServer


def key_from_filename(path: Path) -> ServeKey:
    """``resnet__raspberrypi4__fcc.json`` -> (resnet, raspberrypi4, fcc)."""
    parts = path.stem.split("__")
    if len(parts) != 3:
        raise ValueError(
            f"model filename {path.name!r} is not <space>__<device>__<encoding>.json"
        )
    return ServeKey(*parts)


def load_models_dir(registry: ModelRegistry, models_dir: Path) -> int:
    """Load-and-watch every model payload in ``models_dir``."""
    paths = sorted(models_dir.glob("*.json"))
    for path in paths:
        registry.load(key_from_filename(path), path, watch=True)
    return len(paths)


async def serve(args: argparse.Namespace) -> int:
    registry = ModelRegistry()
    models_dir = Path(args.models)
    n = load_models_dir(registry, models_dir)
    if n == 0:
        print(f"no *.json model payloads found in {models_dir}", file=sys.stderr)
        return 1

    server = PredictionServer(
        registry,
        max_batch=args.max_batch,
        max_wait_s=args.max_wait_ms / 1e3,
        cache_size=args.cache_size,
    )
    tcp = await server.start_tcp(args.host, args.port)
    poller = server.start_polling(args.poll_interval)
    port = tcp.sockets[0].getsockname()[1]
    for entry in registry.describe():
        print(f"serving {entry['key']} (kind={entry['kind']}, v{entry['version']})")
    print(
        f"listening on {args.host}:{port} "
        f"(max_batch={args.max_batch}, max_wait={args.max_wait_ms}ms, "
        f"cache={args.cache_size}, poll={args.poll_interval}s)"
    )
    try:
        async with tcp:
            await tcp.serve_forever()
    except asyncio.CancelledError:  # pragma: no cover - Ctrl-C path
        pass
    finally:
        poller.cancel()
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve saved latency surrogates over JSON-lines TCP.",
    )
    parser.add_argument(
        "--models",
        required=True,
        help="directory of <space>__<device>__<encoding>.json model payloads",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8471)
    parser.add_argument("--max-batch", type=int, default=256)
    parser.add_argument("--max-wait-ms", type=float, default=2.0)
    parser.add_argument("--cache-size", type=int, default=4096)
    parser.add_argument(
        "--poll-interval",
        type=float,
        default=2.0,
        help="seconds between watched-file reload checks (hot-swap latency)",
    )
    args = parser.parse_args(argv)
    try:
        return asyncio.run(serve(args))
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        return 0


if __name__ == "__main__":
    sys.exit(main())
