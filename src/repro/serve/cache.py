"""Bounded prediction LRU: repeat queries short-circuit the batcher.

A served surrogate sees heavily repeated traffic — NAS clients re-query
the architectures near the Pareto front, dashboards refresh the same
configs — and a fitted predictor is deterministic, so the answer for a
given ``(space, device, encoding, config)`` never changes until the model
is hot-swapped.  `PredictionLRU` sits in front of the micro-batcher,
keyed on `ArchConfig.cache_key()`, and stores the predicted latency
*together with the model version and batch sequence* that produced it, so
cached responses carry exactly the same provenance as computed ones.

The shape mirrors `repro.hardware.cache.AnalyticalCache` (bounded LRU,
hit/miss counters, ``maxsize=0`` disables) and reuses its `CacheInfo`
snapshot; the difference is the structured value.  The server keeps one
instance per registry key and replaces it wholesale on hot-swap, which is
both the invalidation story and a pointer flip — no lock, no sweep.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, NamedTuple, Optional

from ..hardware.cache import CacheInfo

__all__ = ["CachedPrediction", "PredictionLRU"]


class CachedPrediction(NamedTuple):
    """A memoized prediction plus the provenance of the flush that made it."""

    latency_s: float
    model_version: int
    batch_seq: int


class PredictionLRU:
    """Bounded LRU mapping ``cache_key -> CachedPrediction`` with counters."""

    def __init__(self, maxsize: int = 4096):
        if maxsize < 0:
            raise ValueError("maxsize must be >= 0")
        self.maxsize = int(maxsize)
        self._data: "OrderedDict[Hashable, CachedPrediction]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def get(self, key: Hashable) -> Optional[CachedPrediction]:
        """The cached prediction, refreshed to most-recently-used, or None."""
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value: CachedPrediction) -> None:
        """Store ``value``, evicting the least-recently-used entry if full."""
        if self.maxsize == 0:
            return
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry; counters keep accumulating across clears."""
        self._data.clear()

    def info(self) -> CacheInfo:
        return CacheInfo(
            hits=self.hits,
            misses=self.misses,
            size=len(self._data),
            maxsize=self.maxsize,
        )
