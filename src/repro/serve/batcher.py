"""Adaptive micro-batching: many awaiting requests, one vectorized call.

The whole reason a served surrogate can beat per-request prediction is
that every hot path under it — `encode_batch`, the numpy predictors — is
vectorized: the cost of a call is almost independent of the row count
until the batch gets large.  `MicroBatcher` converts request concurrency
into batch size: a ``submit`` parks the request on a per-key pending list
and returns a future; the list is flushed as **one** call to the supplied
``flush_fn`` either when it reaches ``max_batch`` or when the oldest
request has waited ``max_wait_s`` (the classic latency/throughput knob
pair, tuned like clipper-style adaptive batching).

The batcher is deliberately ignorant of models and encodings — it moves
``(key, item)`` pairs — so it can be tested in isolation and reused for
any keyed vectorizable work.  Everything runs on one event loop: flushes
are synchronous callbacks (numpy releases the GIL where it matters), so
no locks are needed and a flush observes a consistent pending list.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Dict, Hashable, List, Sequence, Tuple

__all__ = ["MicroBatcher"]


class MicroBatcher:
    """Queue ``(key, item)`` submissions briefly; flush them as one batch.

    ``flush_fn(key, items)`` must return one result per item, in order.
    If it raises, every future of that batch receives the exception —
    a failed batch is failed requests, never silently dropped ones.
    """

    def __init__(
        self,
        flush_fn: Callable[[Hashable, Sequence[Any]], Sequence[Any]],
        *,
        max_batch: int = 256,
        max_wait_s: float = 0.002,
    ):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_s < 0:
            raise ValueError(f"max_wait_s must be >= 0, got {max_wait_s}")
        self._flush_fn = flush_fn
        self.max_batch = int(max_batch)
        self.max_wait_s = float(max_wait_s)
        self._pending: Dict[Hashable, List[Tuple[Any, asyncio.Future]]] = {}
        self._timers: Dict[Hashable, asyncio.TimerHandle] = {}
        # Accounting the benchmarks and tests assert against.
        self.submitted = 0
        self.batches = 0
        self.items_flushed = 0
        self.largest_batch = 0

    # ------------------------------------------------------------------ #

    def submit(self, key: Hashable, item: Any) -> "asyncio.Future":
        """Enqueue ``item`` under ``key``; the future resolves at flush.

        Must be called from a running event loop.  The fast path is a
        list append; the batch-full flush happens inline so a tight
        submission loop drains itself in ``max_batch``-sized chunks
        without ever yielding to the loop.
        """
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        self.submitted += 1
        pending = self._pending.get(key)
        if pending is None:
            pending = self._pending[key] = []
        pending.append((item, future))
        if len(pending) >= self.max_batch:
            self._flush_key(key)
        elif len(pending) == 1:
            self._timers[key] = loop.call_later(
                self.max_wait_s, self._flush_key, key
            )
        return future

    def flush(self) -> None:
        """Force-flush every pending key (drain on shutdown)."""
        for key in list(self._pending):
            self._flush_key(key)

    @property
    def pending_count(self) -> int:
        return sum(len(items) for items in self._pending.values())

    # ------------------------------------------------------------------ #

    def _flush_key(self, key: Hashable) -> None:
        timer = self._timers.pop(key, None)
        if timer is not None:
            timer.cancel()
        batch = self._pending.pop(key, None)
        if not batch:
            return
        self.batches += 1
        self.items_flushed += len(batch)
        self.largest_batch = max(self.largest_batch, len(batch))
        items = [item for item, _ in batch]
        try:
            results = self._flush_fn(key, items)
            if len(results) != len(items):
                raise RuntimeError(
                    f"flush_fn returned {len(results)} results for "
                    f"{len(items)} items"
                )
        except BaseException as exc:
            for _, future in batch:
                if not future.done():
                    future.set_exception(exc)
            return
        for (_, future), result in zip(batch, results):
            if not future.done():
                future.set_result(result)
