"""Surrogate-as-a-service: serve fitted latency predictors at scale.

The point of fitting a surrogate (the whole ESM pipeline upstream of
here) is that querying it is nearly free compared to measuring a device.
This package turns that into a product:

* `ModelRegistry` — fitted surrogates keyed on (space, device, encoding),
  loaded through the zoo's persistence contract, hot-swappable by an
  atomic pointer flip, reloadable from watched files (`poll`).
* `MicroBatcher` — concurrent requests queue for up to ``max_wait_s`` /
  ``max_batch`` and flush as *one* ``encode_batch`` + one vectorized
  ``predict`` call, amortizing per-request overhead into the numpy paths.
* `PredictionLRU` — a bounded cache keyed on `ArchConfig.cache_key()` in
  front of the batcher; repeat queries short-circuit entirely.
* `PredictionServer` — the composition, plus a stdlib-asyncio JSON-lines
  TCP front end (``python -m repro.serve``).

`benchmarks/bench_serve.py` measures the request path: p50/p99 latency,
sustained single-core throughput, and micro-batching speedup over the
one-request-one-predict baseline.
"""

from .batcher import MicroBatcher
from .cache import CachedPrediction, PredictionLRU
from .registry import ModelEntry, ModelRegistry, ServeKey
from .server import PredictionResult, PredictionServer, request_lines

__all__ = [
    "MicroBatcher",
    "CachedPrediction",
    "PredictionLRU",
    "ModelEntry",
    "ModelRegistry",
    "ServeKey",
    "PredictionResult",
    "PredictionServer",
    "request_lines",
]
