"""Surrogate-as-a-service: the async prediction server.

`PredictionServer` ties the three serve primitives together into the
request path::

    submit(space, device, encoding, config)
      └─ PredictionLRU  ── hit ───────────────► resolved future
         └─ MicroBatcher ── flush ─► one encode_batch + one predict
                                       on the registry's current model

A flush snapshots the registry entry **once**, so every response in a
micro-batch comes from exactly one model version; a hot-swap lands
between batches, never inside one.  Within a batch, duplicate configs
(by `ArchConfig.cache_key()`) are encoded and predicted once and fanned
back out.  Swapping a key replaces its prediction LRU wholesale — the
invalidation is the same pointer flip the registry itself uses.

The in-process API is the product (`submit` / `predict` /
`predict_many`); `start_tcp` adds a stdlib-asyncio JSON-lines front end
(one request object per line, ``id`` echoed back) plus a background
`ModelRegistry.poll` loop so freshly retrained surrogates saved over the
watched files go live without a restart.  ``python -m repro.serve`` is
the command-line wrapper around exactly this.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, List, NamedTuple, Optional, Sequence

from ..archspace.config import ArchConfig
from ..archspace.spaces import SpaceSpec, space_by_name
from ..encodings import encoder_for
from .batcher import MicroBatcher
from .cache import CachedPrediction, PredictionLRU
from .registry import ModelEntry, ModelRegistry, ServeKey

__all__ = ["PredictionResult", "PredictionServer", "request_lines"]


class PredictionResult(NamedTuple):
    """One answered query, with full provenance of how it was answered.

    A `NamedTuple` rather than a dataclass: the server mints one per
    request on the hot path, and tuple construction is several times
    cheaper than a frozen dataclass's per-field ``object.__setattr__``.
    """

    latency_s: float
    model_version: int
    batch_seq: int
    cached: bool

    def to_dict(self) -> dict:
        return {
            "latency_s": self.latency_s,
            "model_version": self.model_version,
            "batch_seq": self.batch_seq,
            "cached": self.cached,
        }


class PredictionServer:
    """Async micro-batching prediction service over a `ModelRegistry`."""

    def __init__(
        self,
        registry: Optional[ModelRegistry] = None,
        *,
        max_batch: int = 256,
        max_wait_s: float = 0.002,
        cache_size: int = 4096,
    ):
        if cache_size < 0:
            raise ValueError("cache_size must be >= 0")
        self.registry = registry if registry is not None else ModelRegistry()
        self.cache_size = int(cache_size)
        self._batcher = MicroBatcher(
            self._flush, max_batch=max_batch, max_wait_s=max_wait_s
        )
        self._caches: Dict[ServeKey, PredictionLRU] = {}
        self._specs: Dict[str, SpaceSpec] = {}
        self._batch_seq = 0
        self.requests = 0
        self.cache_hits = 0
        self.registry.subscribe(self._on_model_change)

    # ------------------------------------------------------------------ #
    # The request path
    # ------------------------------------------------------------------ #

    def submit(
        self, space: str, device: str, encoding: str, config: ArchConfig
    ) -> "asyncio.Future[PredictionResult]":
        """The hot entry point: returns a future, never blocks.

        Cache hits resolve immediately; misses join the key's pending
        micro-batch.  Unknown keys fail here, synchronously, with the
        registry's error — not inside somebody else's batch.
        """
        key = ServeKey(space, device, encoding)
        cache = self._cache_for(key)
        self.requests += 1
        # A disabled cache (maxsize=0) never hits: skip the key hashing.
        hit = cache.get(config.cache_key()) if cache.maxsize else None
        if hit is None:
            return self._batcher.submit(key, config)
        self.cache_hits += 1
        future = asyncio.get_running_loop().create_future()
        future.set_result(
            PredictionResult(
                latency_s=hit.latency_s,
                model_version=hit.model_version,
                batch_seq=hit.batch_seq,
                cached=True,
            )
        )
        return future

    async def predict(
        self, space: str, device: str, encoding: str, config: ArchConfig
    ) -> PredictionResult:
        """Await one prediction (sugar over `submit`)."""
        return await self.submit(space, device, encoding, config)

    async def predict_many(
        self,
        space: str,
        device: str,
        encoding: str,
        configs: Sequence[ArchConfig],
    ) -> List[PredictionResult]:
        """Submit a whole sequence concurrently and await all results.

        The bulk twin of `submit`, tuned for throughput two ways: the
        key/registry/cache resolution happens once for the whole
        sequence instead of per request, and the futures are awaited in
        order rather than ``gather``-ed — full batches flush inline
        during the submit loop, so most futures are already resolved
        here, and awaiting a done future is a constant-time check while
        ``gather`` would register a done callback on every future and
        pay a ``call_soon`` loop turn per request to deliver each
        result.
        """
        key = ServeKey(space, device, encoding)
        cache = self._cache_for(key)
        batcher_submit = self._batcher.submit
        use_cache = cache.maxsize > 0
        out: List[object] = []
        n = 0
        for config in configs:
            n += 1
            hit = cache.get(config.cache_key()) if use_cache else None
            if hit is None:
                out.append(batcher_submit(key, config))
            else:
                self.cache_hits += 1
                out.append(
                    PredictionResult(
                        hit.latency_s, hit.model_version, hit.batch_seq, True
                    )
                )
        self.requests += n
        return [
            (await item) if isinstance(item, asyncio.Future) else item
            for item in out
        ]

    def drain(self) -> None:
        """Flush every pending micro-batch now (shutdown path)."""
        self._batcher.flush()

    # ------------------------------------------------------------------ #
    # Batch execution
    # ------------------------------------------------------------------ #

    def _cache_for(self, key: ServeKey) -> PredictionLRU:
        """The key's prediction LRU, validating the key on first sight."""
        cache = self._caches.get(key)
        if cache is None:
            self.registry.get(key)  # raises the informative KeyError
            self._spec_for(key.space)  # and unknown spaces fail here too
            cache = self._caches[key] = PredictionLRU(self.cache_size)
        return cache

    def _spec_for(self, space: str) -> SpaceSpec:
        spec = self._specs.get(space)
        if spec is None:
            spec = self._specs[space] = space_by_name(space)
        return spec

    def _flush(
        self, key: ServeKey, configs: Sequence[ArchConfig]
    ) -> List[PredictionResult]:
        # One snapshot: the entire batch is answered by this entry, even
        # if a hot-swap rebinds the key while we are predicting.
        entry = self.registry.get(key)
        spec = self._spec_for(key.space)
        encoder = encoder_for(key.encoding, spec)

        cache_keys = [config.cache_key() for config in configs]
        row_of: Dict[tuple, int] = {}
        for ck in cache_keys:
            if ck not in row_of:
                row_of[ck] = len(row_of)
        if len(row_of) == len(cache_keys):
            unique: Sequence[ArchConfig] = configs  # the common case
        else:
            seen = set()
            unique = [
                config
                for config, ck in zip(configs, cache_keys)
                if not (ck in seen or seen.add(ck))
            ]

        X = encoder.encode_batch(unique, spec)
        # .tolist() converts to Python floats in one C pass; per-element
        # ``float(y[i])`` would pay numpy scalar indexing per request.
        values = entry.predictor.predict(X).tolist()

        self._batch_seq += 1
        seq = self._batch_seq
        version = entry.version
        cache = self._caches[key]
        if cache.maxsize:
            for ck, row in row_of.items():
                cache.put(ck, CachedPrediction(values[row], version, seq))
        if len(row_of) == len(cache_keys):  # no duplicates: aligned 1:1
            return [
                PredictionResult(value, version, seq, False) for value in values
            ]
        return [
            PredictionResult(values[row_of[ck]], version, seq, False)
            for ck in cache_keys
        ]

    def _on_model_change(self, key: ServeKey, entry: ModelEntry) -> None:
        # Fresh model, fresh cache: stale predictions must not outlive a
        # swap.  Replacing the LRU object is itself an atomic rebind.
        if key in self._caches:
            self._caches[key] = PredictionLRU(self.cache_size)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def stats(self) -> dict:
        """Counters for benchmarks, tests, and the TCP ``stats`` op."""
        batcher = self._batcher
        return {
            "requests": self.requests,
            "cache_hits": self.cache_hits,
            "cache_hit_rate": (
                self.cache_hits / self.requests if self.requests else 0.0
            ),
            "batches": batcher.batches,
            "items_flushed": batcher.items_flushed,
            "mean_batch": (
                batcher.items_flushed / batcher.batches if batcher.batches else 0.0
            ),
            "largest_batch": batcher.largest_batch,
            "pending": batcher.pending_count,
            "swaps": self.registry.swaps,
            "models": self.registry.describe(),
        }

    # ------------------------------------------------------------------ #
    # JSON-lines TCP front end
    # ------------------------------------------------------------------ #

    async def start_tcp(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> "asyncio.base_events.Server":
        """Listen for JSON-lines clients; returns the asyncio server.

        Request: ``{"id": ..., "space": ..., "device": ..., "encoding":
        ..., "config": {...}}`` (one per line).  Response mirrors ``id``
        and adds the `PredictionResult` fields, or ``{"id", "error"}``.
        ``{"op": "stats"}`` and ``{"op": "models"}`` answer from the
        counters and the registry.
        """
        return await asyncio.start_server(self._handle_client, host, port)

    def start_polling(self, interval_s: float) -> "asyncio.Task":
        """Background task: `ModelRegistry.poll` every ``interval_s``."""

        async def poll_loop() -> None:
            while True:
                await asyncio.sleep(interval_s)
                self.registry.poll()

        return asyncio.get_running_loop().create_task(poll_loop())

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        write_lock = asyncio.Lock()

        async def respond(payload: dict) -> None:
            try:
                async with write_lock:
                    writer.write(json.dumps(payload).encode() + b"\n")
                    await writer.drain()
            except (ConnectionError, OSError):
                pass  # client went away; its replies go with it

        async def answer(request: dict) -> None:
            reply = {"id": request.get("id")}
            try:
                op = request.get("op", "predict")
                if op == "stats":
                    reply.update(self.stats())
                elif op == "models":
                    reply["models"] = self.registry.describe()
                elif op == "predict":
                    result = await self.predict(
                        str(request["space"]),
                        str(request["device"]),
                        str(request["encoding"]),
                        ArchConfig.from_dict(request["config"]),
                    )
                    reply.update(result.to_dict())
                else:
                    raise ValueError(f"unknown op {op!r}")
            except Exception as exc:  # per-request isolation
                reply["error"] = f"{type(exc).__name__}: {exc}"
            await respond(reply)

        tasks: List[asyncio.Task] = []
        try:
            async for line in reader:
                line = line.strip()
                if not line:
                    continue
                try:
                    request = json.loads(line)
                except json.JSONDecodeError as exc:
                    await respond({"id": None, "error": f"bad JSON: {exc}"})
                    continue
                tasks.append(asyncio.ensure_future(answer(request)))
            if tasks:  # client done sending; flush its in-flight answers
                await asyncio.gather(*tasks, return_exceptions=True)
        except asyncio.CancelledError:
            # Server/loop shutdown cancels handlers mid-read.  Swallow the
            # cancellation and finish normally: asyncio's stream-protocol
            # completion callback logs any handler task that ends in the
            # cancelled state, and there is nothing left to salvage here.
            for task in tasks:
                task.cancel()
            if tasks:
                await asyncio.wait(tasks)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass  # pragma: no cover - teardown race


async def request_lines(
    host: str, port: int, requests: Sequence[dict]
) -> List[dict]:
    """Minimal JSON-lines client: send ``requests``, gather the replies.

    Replies are returned in arrival order; callers match them to their
    requests via the echoed ``id``.  Used by the tests, the README
    quick-start, and anyone who wants to poke a server from a script.
    """
    reader, writer = await asyncio.open_connection(host, port)
    try:
        for request in requests:
            writer.write(json.dumps(request).encode() + b"\n")
        await writer.drain()
        replies = []
        for _ in requests:
            line = await reader.readline()
            if not line:
                raise ConnectionError("server closed before answering")
            replies.append(json.loads(line))
        return replies
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - teardown race
            pass
