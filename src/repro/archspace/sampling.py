"""Samplers over architecture spaces: random and depth-balanced.

The paper's dataset generation samples configurations either uniformly per
choice (*random*) or *balanced* over depth bins: random per-unit depth draws
concentrate the total depth around its mean (CLT), starving the shallow and
deep corner bins that the ESM loop's bin-wise accuracy criterion insists on.
The balanced sampler first picks a target total-depth bin uniformly, then
draws per-unit depths constrained to land in it.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..utils import ensure_rng
from .config import ArchConfig, BlockConfig
from .spaces import SpaceSpec

__all__ = ["depth_bins", "assign_depth_bin", "RandomSampler", "BalancedSampler"]


def depth_bins(spec: SpaceSpec, n_bins: int) -> List[Tuple[int, int]]:
    """Partition the total-depth range into ``n_bins`` contiguous bins.

    Returns inclusive ``(lo, hi)`` integer ranges covering
    ``[spec.min_total_depth, spec.max_total_depth]`` with near-equal widths
    (earlier bins take the remainder).
    """
    lo, hi = spec.min_total_depth, spec.max_total_depth
    span = hi - lo + 1
    if not 1 <= n_bins <= span:
        raise ValueError(f"n_bins must be in [1, {span}], got {n_bins}")
    base, rem = divmod(span, n_bins)
    bins = []
    start = lo
    for i in range(n_bins):
        width = base + (1 if i < rem else 0)
        bins.append((start, start + width - 1))
        start += width
    return bins


def assign_depth_bin(total_depth: int, bins: List[Tuple[int, int]]) -> int:
    """Index of the bin containing ``total_depth`` (raises if outside all bins)."""
    for i, (lo, hi) in enumerate(bins):
        if lo <= total_depth <= hi:
            return i
    raise ValueError(f"total depth {total_depth} falls outside the given bins")


class RandomSampler:
    """Uniform per-choice sampling: unit depths, then per-block choices."""

    def __init__(self, spec: SpaceSpec, rng: "int | np.random.Generator | None" = None):
        self.spec = spec
        self.rng = ensure_rng(rng)

    def sample(self) -> ArchConfig:
        depths = [
            int(self.rng.choice(self.spec.depth_choices))
            for _ in range((self.spec.num_units))
        ]
        return self._fill_blocks(depths)

    def sample_batch(self, n: int) -> List[ArchConfig]:
        return [self.sample() for _ in range(n)]

    def _fill_blocks(self, depths: List[int]) -> ArchConfig:
        spec = self.spec
        expands = spec.expand_choices or (None,)
        units = []
        for depth in depths:
            if spec.uniform_kernel:
                kernel = int(self.rng.choice(spec.kernel_choices))
                kernels = [kernel] * depth
            else:
                kernels = [int(self.rng.choice(spec.kernel_choices)) for _ in range(depth)]
            blocks = tuple(
                BlockConfig(
                    kernel_size=k,
                    expand_ratio=(
                        None
                        if spec.expand_choices is None
                        else float(self.rng.choice(spec.expand_choices))
                    ),
                )
                for k in kernels
            )
            units.append(blocks)
        return ArchConfig(family=spec.family, units=tuple(units))


class BalancedSampler(RandomSampler):
    """Depth-balanced sampling: uniform over total-depth bins.

    Picks a bin uniformly, then draws unit depths sequentially, restricting
    each draw to values that keep the remaining units able to reach the bin
    — an exact-feasibility walk, so no rejection loop is needed.
    """

    def __init__(
        self,
        spec: SpaceSpec,
        rng: "int | np.random.Generator | None" = None,
        n_bins: int = 6,
    ):
        super().__init__(spec, rng)
        self.bins = depth_bins(spec, n_bins)

    def sample(self) -> ArchConfig:
        lo, hi = self.bins[int(self.rng.integers(len(self.bins)))]
        return self._fill_blocks(self._depths_in_range(lo, hi))

    def sample_in_bin(self, bin_index: int) -> ArchConfig:
        """Sample a configuration whose total depth lands in a specific bin."""
        lo, hi = self.bins[bin_index]
        return self._fill_blocks(self._depths_in_range(lo, hi))

    def sample_counts(self, counts: "dict[int, int]") -> List[ArchConfig]:
        """Draw ``counts[bin] `` configs inside each requested depth bin.

        This is the measurement order Algorithm 1's extension step uses:
        bins ascending, each bin's draws consecutive, so one seeded RNG
        reproduces the exact extension set regardless of dict ordering.
        """
        configs: List[ArchConfig] = []
        for bin_index in sorted(counts):
            n = counts[bin_index]
            if n < 0:
                raise ValueError(
                    f"sample count for bin {bin_index} must be >= 0, got {n}"
                )
            configs.extend(self.sample_in_bin(bin_index) for _ in range(n))
        return configs

    def _depths_in_range(self, lo: int, hi: int) -> List[int]:
        spec = self.spec
        choices = sorted(spec.depth_choices)
        depths: List[int] = []
        remaining = spec.num_units
        total = 0
        for _ in range(spec.num_units):
            remaining -= 1
            rest_min = remaining * choices[0]
            rest_max = remaining * choices[-1]
            feasible = [
                d
                for d in choices
                if total + d + rest_min <= hi and total + d + rest_max >= lo
            ]
            d = int(self.rng.choice(feasible))
            depths.append(d)
            total += d
        return depths
