"""Supernet architecture spaces (the paper's Table I).

Three OFA-style spaces over a fixed macro-architecture:

* **ResNet** — 4 units, 1–7 bottleneck blocks per unit, per-block kernel
  size in {3, 5, 7} and width-expansion ratio in {0.20, 0.25, 0.35}.
* **MobileNetV3** — 4 units, 1–7 MBConv blocks per unit, per-block kernel
  size in {3, 5, 7} and expansion ratio in {3, 4, 6}.
* **DenseNet** — 5 units, 1–20 dense layers per unit, one kernel size in
  {1, 3, 5, 7, 9} shared by all blocks of a unit, no expansion choice.

Exact cardinalities (verified by tests against Table I):

* ResNet / MobileNetV3: ``(sum_{d=1..7} 9^d)^4 = 8.3830e26``
* DenseNet: ``(20 * 5)^5 = 1.0000e10``
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Optional, Sequence, Tuple

from .config import ArchConfig, BlockConfig

__all__ = [
    "SpaceSpec",
    "resnet_space",
    "mobilenetv3_space",
    "densenet_space",
    "space_by_name",
    "SPACE_NAMES",
]


@dataclass(frozen=True)
class SpaceSpec:
    """A layer/block-wise search space over a fixed macro-architecture.

    ``expand_choices is None`` means the family has no expansion dimension
    (blocks carry ``expand_ratio=None``).  ``uniform_kernel=True`` means all
    blocks of a unit share one kernel size (DenseNet).
    """

    family: str
    num_units: int
    depth_choices: Tuple[int, ...]
    kernel_choices: Tuple[int, ...]
    expand_choices: Optional[Tuple[float, ...]] = None
    uniform_kernel: bool = False

    @property
    def min_depth(self) -> int:
        return min(self.depth_choices)

    @property
    def max_depth(self) -> int:
        return max(self.depth_choices)

    @property
    def min_total_depth(self) -> int:
        return self.num_units * self.min_depth

    @property
    def max_total_depth(self) -> int:
        return self.num_units * self.max_depth

    def block_choices(self) -> Tuple[BlockConfig, ...]:
        """All distinct per-block (kernel, expand) combinations."""
        expands: Tuple[Optional[float], ...] = self.expand_choices or (None,)
        return tuple(
            BlockConfig(kernel_size=k, expand_ratio=e)
            for k in self.kernel_choices
            for e in expands
        )

    def cardinality(self) -> int:
        """Exact number of architectures in the space (integer combinatorics)."""
        per_block = len(self.block_choices())
        if self.uniform_kernel:
            per_unit = len(self.depth_choices) * per_block
        else:
            per_unit = sum(per_block**d for d in self.depth_choices)
        return per_unit**self.num_units

    def contains(self, config: ArchConfig) -> bool:
        """Whether ``config`` is a valid member of this space."""
        if config.family != self.family or config.num_units != self.num_units:
            return False
        expands: Tuple[Optional[float], ...] = self.expand_choices or (None,)
        for blocks in config.units:
            if len(blocks) not in self.depth_choices:
                return False
            for block in blocks:
                if block.kernel_size not in self.kernel_choices:
                    return False
                if block.expand_ratio not in expands:
                    return False
            if self.uniform_kernel and len({b.kernel_size for b in blocks}) != 1:
                return False
        return True

    def make_config(
        self,
        depths: Sequence[int],
        kernels: Sequence,
        expands: Optional[Sequence] = None,
    ) -> ArchConfig:
        """Build a validated `ArchConfig`.

        ``kernels``/``expands`` entries may be scalars (shared by the whole
        unit) or per-block sequences of length ``depths[u]``.
        """
        if len(depths) != self.num_units:
            raise ValueError(f"expected {self.num_units} depths, got {len(depths)}")
        if expands is None:
            expands = [None] * self.num_units

        def per_block(value, depth):
            if isinstance(value, (list, tuple)):
                if len(value) != depth:
                    raise ValueError("per-block sequence length must equal unit depth")
                return list(value)
            return [value] * depth

        units = []
        for d, ks, es in zip(depths, kernels, expands):
            ks = per_block(ks, d)
            es = per_block(es, d)
            units.append(
                tuple(
                    BlockConfig(
                        kernel_size=int(k),
                        expand_ratio=None if e is None else float(e),
                    )
                    for k, e in zip(ks, es)
                )
            )
        config = ArchConfig(family=self.family, units=tuple(units))
        if not self.contains(config):
            raise ValueError(f"configuration is not a member of the {self.family} space")
        return config


# The space factories are memoized: `SpaceSpec` is frozen, so one shared
# instance per family is safe, and the identity-keyed caches downstream
# (`encoder_for`, the per-config block-row memo in `repro.encodings`) hit
# across every caller instead of once per freshly built spec.
@lru_cache(maxsize=None)
def resnet_space() -> SpaceSpec:
    """Table I ResNet space: 8.3830e26 architectures."""
    return SpaceSpec(
        family="resnet",
        num_units=4,
        depth_choices=tuple(range(1, 8)),
        kernel_choices=(3, 5, 7),
        expand_choices=(0.2, 0.25, 0.35),
    )


@lru_cache(maxsize=None)
def mobilenetv3_space() -> SpaceSpec:
    """Table I MobileNetV3 space: 8.3830e26 architectures."""
    return SpaceSpec(
        family="mobilenetv3",
        num_units=4,
        depth_choices=tuple(range(1, 8)),
        kernel_choices=(3, 5, 7),
        expand_choices=(3.0, 4.0, 6.0),
    )


@lru_cache(maxsize=None)
def densenet_space() -> SpaceSpec:
    """Table I DenseNet space: 1.0000e10 architectures."""
    return SpaceSpec(
        family="densenet",
        num_units=5,
        depth_choices=tuple(range(1, 21)),
        kernel_choices=(1, 3, 5, 7, 9),
        expand_choices=None,
        uniform_kernel=True,
    )


_SPACE_FACTORIES: Dict[str, "type(resnet_space)"] = {
    "resnet": resnet_space,
    "mobilenetv3": mobilenetv3_space,
    "densenet": densenet_space,
}

SPACE_NAMES: Tuple[str, ...] = tuple(_SPACE_FACTORIES)


def space_by_name(name: str) -> SpaceSpec:
    """Look up a Table I space by family name."""
    try:
        return _SPACE_FACTORIES[name]()
    except KeyError:
        raise KeyError(
            f"unknown space {name!r}; available: {', '.join(SPACE_NAMES)}"
        ) from None
