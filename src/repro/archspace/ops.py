"""Block-level variation operators: mutation and crossover within a space.

The evolutionary NAS driver (`repro.nas.search`) perturbs architectures at
the granularity the spaces are defined on:

* **mutation** — per unit, optionally resample the depth (growing units
  append freshly drawn blocks, shrinking ones truncate), then resample
  individual block choices; uniform-kernel families (DenseNet) mutate the
  whole unit's kernel at once so the constraint can never be violated.
* **crossover** — unit-wise uniform crossover.  Units are independently
  valid in every Table I space, so swapping whole units between two valid
  parents always yields valid children.

Both operators construct children from the spec's own choice sets and
assert membership before returning, so a search can never leave its space
regardless of parameter settings.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..utils import ensure_rng
from .config import ArchConfig, BlockConfig
from .spaces import SpaceSpec

__all__ = ["mutate", "crossover"]


def _check_member(config: ArchConfig, spec: SpaceSpec, op: str) -> ArchConfig:
    if not spec.contains(config):  # pragma: no cover - defensive guard
        raise ValueError(f"{op} produced a config outside the {spec.family} space")
    return config


def mutate(
    config: ArchConfig,
    spec: SpaceSpec,
    rng: "int | np.random.Generator | None" = None,
    *,
    p_depth: float = 0.25,
    p_block: float = 0.2,
) -> ArchConfig:
    """A mutated copy of ``config``, guaranteed to stay inside ``spec``.

    ``p_depth`` is the per-unit probability of resampling that unit's
    depth; ``p_block`` the per-block probability of resampling a kernel or
    expand choice (per-unit for uniform-kernel families).  Draws happen in
    a fixed order, so a seeded generator reproduces the child exactly.
    """
    if not 0.0 <= p_depth <= 1.0 or not 0.0 <= p_block <= 1.0:
        raise ValueError("mutation probabilities must be in [0, 1]")
    rng = ensure_rng(rng)
    units = []
    for blocks in config.units:
        kernels: List[int] = [b.kernel_size for b in blocks]
        expands: List[Optional[float]] = [b.expand_ratio for b in blocks]

        if rng.random() < p_depth:
            depth = int(rng.choice(spec.depth_choices))
            if depth <= len(kernels):
                kernels, expands = kernels[:depth], expands[:depth]
            else:
                for _ in range(depth - len(kernels)):
                    # New blocks of a uniform-kernel unit inherit its kernel.
                    kernels.append(
                        kernels[0]
                        if spec.uniform_kernel
                        else int(rng.choice(spec.kernel_choices))
                    )
                    expands.append(
                        None
                        if spec.expand_choices is None
                        else float(rng.choice(spec.expand_choices))
                    )

        if spec.uniform_kernel:
            if rng.random() < p_block:
                kernels = [int(rng.choice(spec.kernel_choices))] * len(kernels)
        else:
            for i in range(len(kernels)):
                if rng.random() < p_block:
                    kernels[i] = int(rng.choice(spec.kernel_choices))
        if spec.expand_choices is not None:
            for i in range(len(expands)):
                if rng.random() < p_block:
                    expands[i] = float(rng.choice(spec.expand_choices))

        units.append(
            tuple(BlockConfig(k, e) for k, e in zip(kernels, expands))
        )
    child = ArchConfig(family=spec.family, units=tuple(units))
    return _check_member(child, spec, "mutate")


def crossover(
    a: ArchConfig,
    b: ArchConfig,
    spec: SpaceSpec,
    rng: "int | np.random.Generator | None" = None,
) -> Tuple[ArchConfig, ArchConfig]:
    """Unit-wise uniform crossover: two children from two valid parents.

    Each unit index is assigned to one parent by a coin flip; the first
    child takes the flipped pattern and the second its complement, so the
    pair jointly preserves every parental unit.
    """
    for parent in (a, b):
        if parent.family != spec.family or parent.num_units != spec.num_units:
            raise ValueError(
                f"crossover parents must belong to the {spec.family} space"
            )
    rng = ensure_rng(rng)
    take_a = rng.random(spec.num_units) < 0.5
    first = tuple(
        a.units[u] if take_a[u] else b.units[u] for u in range(spec.num_units)
    )
    second = tuple(
        b.units[u] if take_a[u] else a.units[u] for u in range(spec.num_units)
    )
    return (
        _check_member(ArchConfig(spec.family, first), spec, "crossover"),
        _check_member(ArchConfig(spec.family, second), spec, "crossover"),
    )
