"""Architecture configurations: concrete points of a supernet space.

The on-disk schema (``format_version: 1``, used by ``repro.data`` and the
cached datasets under ``benchmarks/_cache/``) is::

    {"family": "resnet",
     "units": [[{"kernel_size": 3, "expand_ratio": 0.25}, ...], ...]}

``expand_ratio`` is ``null`` for families without a width-expansion choice
(DenseNet).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

__all__ = ["BlockConfig", "ArchConfig"]


@dataclass(frozen=True, order=True)
class BlockConfig:
    """One block's choices: kernel size and (optional) expansion ratio."""

    kernel_size: int
    expand_ratio: Optional[float] = None

    def to_dict(self) -> dict:
        return {"kernel_size": self.kernel_size, "expand_ratio": self.expand_ratio}

    @classmethod
    def from_dict(cls, d: dict) -> "BlockConfig":
        expand = d["expand_ratio"]
        return cls(
            kernel_size=int(d["kernel_size"]),
            expand_ratio=None if expand is None else float(expand),
        )


@dataclass(frozen=True)
class ArchConfig:
    """A fully specified architecture: per-unit tuples of `BlockConfig`."""

    family: str
    units: Tuple[Tuple[BlockConfig, ...], ...]

    def __post_init__(self) -> None:
        # Normalise nested sequences to tuples so configs are hashable.
        units = tuple(tuple(blocks) for blocks in self.units)
        object.__setattr__(self, "units", units)
        for blocks in units:
            if len(blocks) == 0:
                raise ValueError("every unit must contain at least one block")
            for block in blocks:
                if not isinstance(block, BlockConfig):
                    raise TypeError(f"expected BlockConfig, got {type(block)!r}")

    @property
    def num_units(self) -> int:
        return len(self.units)

    @property
    def depths(self) -> Tuple[int, ...]:
        """Blocks per unit."""
        return tuple(len(blocks) for blocks in self.units)

    @property
    def total_blocks(self) -> int:
        return sum(self.depths)

    def iter_blocks(self) -> Iterable[Tuple[int, BlockConfig]]:
        """Yield ``(unit_index, block)`` over all blocks in order."""
        for u, blocks in enumerate(self.units):
            for block in blocks:
                yield u, block

    def cache_key(self) -> Tuple:
        """Canonical hashable identity of this architecture.

        A flat tuple of primitives — cheaper to hash and compare than the
        nested dataclass itself — used to key per-config memoization (the
        simulator's analytical-latency cache).  Two configs have equal
        cache keys iff they lower to the same network.

        Memoized per instance (configs are immutable): callers on hot
        paths — the analytical cache, the serving LRU and micro-batch
        dedupe — may call this once per request without rebuilding the
        nested tuples each time.
        """
        key = self.__dict__.get("_cache_key")
        if key is None:
            key = (
                self.family,
                tuple(
                    tuple((b.kernel_size, b.expand_ratio) for b in blocks)
                    for blocks in self.units
                ),
            )
            object.__setattr__(self, "_cache_key", key)
        return key

    def to_dict(self) -> dict:
        return {
            "family": self.family,
            "units": [[b.to_dict() for b in blocks] for blocks in self.units],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ArchConfig":
        return cls(
            family=str(d["family"]),
            units=tuple(
                tuple(BlockConfig.from_dict(b) for b in blocks) for blocks in d["units"]
            ),
        )
