"""Architecture spaces (Table I), configurations, samplers, and operators."""

from .config import ArchConfig, BlockConfig
from .ops import crossover, mutate
from .sampling import (
    BalancedSampler,
    RandomSampler,
    assign_depth_bin,
    depth_bins,
)
from .spaces import (
    SPACE_NAMES,
    SpaceSpec,
    densenet_space,
    mobilenetv3_space,
    resnet_space,
    space_by_name,
)

__all__ = [
    "ArchConfig",
    "BlockConfig",
    "SpaceSpec",
    "resnet_space",
    "mobilenetv3_space",
    "densenet_space",
    "space_by_name",
    "SPACE_NAMES",
    "RandomSampler",
    "BalancedSampler",
    "depth_bins",
    "assign_depth_bin",
    "mutate",
    "crossover",
]
