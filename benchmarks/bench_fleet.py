"""Fleet dispatcher overhead and the byte-identity acceptance check.

Runs the same faulty campaign twice — serial `CampaignRunner`, then a
4-session `FleetRunner` whose seeded fault plan makes two sessions 10x
stragglers that the circuit breakers retire — and records:

* real wall-clock of both paths (the fleet schedules on a virtual clock,
  so its overhead is pure dispatcher bookkeeping);
* the *simulated* fleet makespan, i.e. what the campaign would have cost
  on real boards, stragglers, deadline kills, and cooldowns included;
* the health ledger digest (retired sessions, re-dispatches, timeouts);
* ``bit_identical`` — every shard byte-for-byte equal between the two
  runs, the invariant the whole subsystem exists to preserve.  The run
  also asserts the acceptance shape: two sessions actually retired.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from pathlib import Path

from .common import sample_configs, write_result

FAMILY = "densenet"
DEVICE = "raspberrypi4"
CAMPAIGN_SEED = 42
SESSIONS = 4

# With CAMPAIGN_SEED and straggler_prob=0.5, sessions 0 and 1 draw the
# straggler fate, time out on every dispatch, and retire after two
# breaker openings each — the acceptance scenario.
FLEET_KNOBS = dict(
    sessions=SESSIONS,
    deadline_s=2.0,
    nominal_batch_s=1.0,
    breaker_cooldown_s=2.0,
)


def _make_runner(cls, configs, spec, root, *, batch_size, runs, **kwargs):
    from repro import (
        FaultPlan,
        FaultyDevice,
        MeasurementProtocol,
        ReferenceSet,
        SimulatedDevice,
    )

    plan = FaultPlan(
        throttle_prob=0.35,
        throttle_factor=1.25,
        error_prob=0.03,
        timeout_prob=0.02,
        corrupt_prob=0.04,
        straggler_prob=0.5,
        straggler_factor=10.0,
    )
    device = FaultyDevice(SimulatedDevice(DEVICE), plan, seed=0)
    return cls(
        device,
        configs,
        root,
        ReferenceSet.from_space(spec, k=2, rng=11),
        protocol=MeasurementProtocol(runs=runs),
        batch_size=batch_size,
        seed=CAMPAIGN_SEED,
        sleep=lambda s: None,
        **kwargs,
    )


def run(smoke: bool = False, out_dir=None):
    from repro import CampaignRunner, FleetRunner

    n, batch_size, runs = (60, 5, 25) if smoke else (200, 10, 150)
    configs, spec = sample_configs(FAMILY, n, seed=7)

    root = Path(tempfile.mkdtemp(prefix="bench_fleet_"))
    try:
        serial = _make_runner(
            CampaignRunner, configs, spec, root / "serial",
            batch_size=batch_size, runs=runs,
        )
        t0 = time.perf_counter()
        serial.run()
        serial_s = time.perf_counter() - t0

        fleet = _make_runner(
            FleetRunner, configs, spec, root / "fleet",
            batch_size=batch_size, runs=runs, **FLEET_KNOBS,
        )
        t0 = time.perf_counter()
        fleet.run()
        fleet_s = time.perf_counter() - t0

        bit_identical = all(
            (root / "serial" / "shards" / f"batch-{i:04d}.json").read_bytes()
            == (root / "fleet" / "shards" / f"batch-{i:04d}.json").read_bytes()
            for i in range(serial.n_batches)
        )
        health = fleet.health
    finally:
        shutil.rmtree(root, ignore_errors=True)

    assert health.retired == [0, 1], (
        f"acceptance shape broken: retired sessions {health.retired}"
    )

    return write_result(
        "fleet",
        params={
            "family": FAMILY,
            "device": DEVICE,
            "n_configs": n,
            "batch_size": batch_size,
            "runs": runs,
            "seed": CAMPAIGN_SEED,
            "smoke": smoke,
            **FLEET_KNOBS,
        },
        wall_s=fleet_s,
        per_item_us=fleet_s / n * 1e6,
        cache_hit_rate=None,
        out_dir=out_dir,
        serial_wall_s=round(serial_s, 6),
        dispatch_overhead_s=round(fleet_s - serial_s, 6),
        simulated_makespan_s=health.makespan_s,
        n_batches=serial.n_batches,
        sessions=SESSIONS,
        retired_sessions=health.retired,
        surviving_sessions=health.surviving,
        redispatches=health.redispatches,
        timeouts=sum(s.timeouts for s in health.sessions),
        quorum=health.quorum,
        fleet_qc_passed=health.qc_passed,
        bit_identical=bool(bit_identical),
    )


if __name__ == "__main__":
    path, payload = run()
    print(path)
