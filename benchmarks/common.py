"""Shared plumbing for the performance benchmarks.

Every benchmark writes one JSON record with a fixed schema::

    {
      "name":           benchmark name ("measure", "campaign", "encode"),
      "params":         the workload knobs, smoke or full,
      "wall_s":         wall-clock seconds of the optimised path,
      "per_item_us":    wall_s spread over the workload items,
      "cache_hit_rate": analytical-cache hit rate (null where no cache),
      "git_rev":        short commit hash the numbers were taken at,
      ...               benchmark-specific extras (baseline_wall_s,
                        speedup, equivalence flags, ...)
    }

The four header fields always come first so the records diff cleanly
across commits.
"""

from __future__ import annotations

import json
import subprocess
import time
from pathlib import Path
from typing import Callable, List, Optional, Tuple

BENCH_ROOT = Path(__file__).resolve().parent
RESULTS_DIR = BENCH_ROOT / "results"


def git_rev() -> str:
    """Short hash of the checked-out commit, or ``unknown`` outside git."""
    try:
        out = subprocess.run(
            ["git", "-C", str(BENCH_ROOT), "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


def sample_configs(family: str, n: int, seed: int) -> Tuple[list, object]:
    """``n`` uniform configs from ``family`` plus the space spec."""
    from repro import RandomSampler, space_by_name

    spec = space_by_name(family)
    return RandomSampler(spec, rng=seed).sample_batch(n), spec


def best_of(fn: Callable[[], object], repeat: int = 3) -> Tuple[float, object]:
    """Minimum wall time of ``repeat`` calls, with the last return value.

    Minimum (not mean) because the benchmarks run on shared machines and
    the slow tail is scheduler noise, not the code under test.
    """
    best = float("inf")
    result = None
    for _ in range(max(1, repeat)):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def write_result(
    name: str,
    *,
    params: dict,
    wall_s: float,
    per_item_us: float,
    cache_hit_rate: Optional[float],
    out_dir: "Path | str | None" = None,
    **extras,
) -> Tuple[Path, dict]:
    """Write ``BENCH_<name>.json`` and return ``(path, payload)``."""
    payload = {
        "name": name,
        "params": params,
        "wall_s": round(float(wall_s), 6),
        "per_item_us": round(float(per_item_us), 3),
        "cache_hit_rate": (
            None if cache_hit_rate is None else round(float(cache_hit_rate), 4)
        ),
        "git_rev": git_rev(),
    }
    payload.update(extras)
    out_dir = RESULTS_DIR if out_dir is None else Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path, payload


def summarize(payload: dict) -> str:
    """One status line for the ``python -m benchmarks`` summary."""
    parts: List[str] = [
        f"{payload['name']:<10} {payload['wall_s'] * 1e3:9.1f} ms",
        f"{payload['per_item_us']:9.1f} us/item",
    ]
    if payload.get("speedup") is not None:
        parts.append(f"{payload['speedup']:5.2f}x vs baseline")
    if payload.get("cache_hit_rate") is not None:
        parts.append(f"hit rate {payload['cache_hit_rate']:.0%}")
    return "  ".join(parts)
