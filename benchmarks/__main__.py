"""Run every benchmark: ``python -m benchmarks [--smoke] [--only NAME ...]``.

Writes one ``results/BENCH_<name>.json`` per benchmark and prints a
one-line summary each.  ``--smoke`` shrinks the workloads to a few
seconds total (the CI mode — it validates the harness, not the numbers);
``--out`` redirects the JSON records, e.g. to compare two working trees.
"""

from __future__ import annotations

import argparse
import sys

from . import (
    bench_campaign,
    bench_encode,
    bench_esm_loop,
    bench_fleet,
    bench_measure,
    bench_nas,
    bench_predictors,
    bench_search_fleet,
    bench_serve,
    bench_transfer,
)
from .common import RESULTS_DIR, summarize

BENCHES = {
    "measure": bench_measure.run,
    "campaign": bench_campaign.run,
    "fleet": bench_fleet.run,
    "encode": bench_encode.run,
    "esm_loop": bench_esm_loop.run,
    "nas": bench_nas.run,
    "predictors": bench_predictors.run,
    "search_fleet": bench_search_fleet.run,
    "serve": bench_serve.run,
    "transfer": bench_transfer.run,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m benchmarks",
        description="Hot-path performance benchmarks (see benchmarks/README.md).",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workloads: exercises the harness in seconds",
    )
    parser.add_argument(
        "--only",
        nargs="+",
        choices=sorted(BENCHES),
        help="run a subset of the benchmarks",
    )
    parser.add_argument(
        "--out",
        default=None,
        help=f"result directory (default: {RESULTS_DIR})",
    )
    args = parser.parse_args(argv)

    names = args.only or list(BENCHES)
    failures = 0
    for name in names:
        path, payload = BENCHES[name](smoke=args.smoke, out_dir=args.out)
        print(summarize(payload))
        print(f"  -> {path}")
        for flag in (
            "bit_identical",
            "resume_bit_identical",
            "equivalent",
            "parallel_matches_sequential",
        ):
            if payload.get(flag) is False:
                print(f"  !! {name}: {flag} is False")
                failures += 1
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
