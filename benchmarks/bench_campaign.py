"""End-to-end campaign wall clock: cached vs the pre-caching hot path.

A campaign re-resolves the same analytical latencies constantly — the QC
references are re-measured on every batch attempt and every sample stores
its ground truth — so the analytical cache is worth a large factor on the
whole pipeline, not just on microbenchmarks.  The baseline runs the same
200-config campaign with the cache disabled (the seed code path).

The parallel path (``workers > 1``) is timed too, with the host's CPU
count recorded next to the number: batches only overlap when there are
spare cores, so on a single-core runner the entry documents overhead, not
speedup.  Its dataset is compared against the sequential run's — the
latencies must match exactly regardless of worker count.
"""

from __future__ import annotations

import multiprocessing
import os
import shutil
import tempfile
import time
from pathlib import Path

from .common import sample_configs, write_result

FAMILY = "densenet"
DEVICE = "raspberrypi4"
CAMPAIGN_SEED = 5
PARALLEL_WORKERS = 4


def _run_campaign(configs, spec, *, batch_size, runs, cache_size, workers=1):
    from repro import (
        CampaignRunner,
        MeasurementProtocol,
        ReferenceSet,
        SimulatedDevice,
    )

    references = ReferenceSet.from_space(spec, k=3, rng=11)
    device = SimulatedDevice(DEVICE, cache_size=cache_size)
    mp_context = (
        "fork" if "fork" in multiprocessing.get_all_start_methods() else None
    )
    root = Path(tempfile.mkdtemp(prefix="bench_campaign_"))
    try:
        runner = CampaignRunner(
            device,
            configs,
            root / "campaign",
            references,
            protocol=MeasurementProtocol(runs=runs),
            batch_size=batch_size,
            seed=CAMPAIGN_SEED,
            workers=workers,
            mp_context=mp_context,
            sleep=lambda s: None,
        )
        t0 = time.perf_counter()
        result = runner.run()
        wall = time.perf_counter() - t0
    finally:
        shutil.rmtree(root, ignore_errors=True)
    return wall, result, device.cache_info()


def run(smoke: bool = False, out_dir=None):
    n, batch_size, runs = (30, 5, 25) if smoke else (200, 10, 150)
    configs, spec = sample_configs(FAMILY, n, seed=7)

    baseline_s, _, _ = _run_campaign(
        configs, spec, batch_size=batch_size, runs=runs, cache_size=0
    )
    wall_s, sequential, info = _run_campaign(
        configs, spec, batch_size=batch_size, runs=runs, cache_size=4096
    )
    parallel_s, parallel, _ = _run_campaign(
        configs,
        spec,
        batch_size=batch_size,
        runs=runs,
        cache_size=4096,
        workers=PARALLEL_WORKERS,
    )
    matches = [s.latency_s for s in sequential.dataset] == [
        s.latency_s for s in parallel.dataset
    ]

    return write_result(
        "campaign",
        params={
            "family": FAMILY,
            "device": DEVICE,
            "n_configs": n,
            "batch_size": batch_size,
            "runs": runs,
            "seed": CAMPAIGN_SEED,
            "smoke": smoke,
        },
        wall_s=wall_s,
        per_item_us=wall_s / n * 1e6,
        cache_hit_rate=info.hit_rate,
        out_dir=out_dir,
        baseline_wall_s=round(baseline_s, 6),
        speedup=round(baseline_s / wall_s, 2),
        parallel_wall_s=round(parallel_s, 6),
        parallel_workers=PARALLEL_WORKERS,
        parallel_matches_sequential=bool(matches),
        cpu_count=os.cpu_count(),
    )


if __name__ == "__main__":
    path, payload = run()
    print(path)
