"""Wall clock and dispersion of the many-seed `SearchFleet` driver.

Runs the same constrained evolutionary search under N seeds three ways —
parallel process pool, serial, and serial-resumed from the parallel run's
member results — and reports the hypervolume/front-size dispersion bands
plus two equivalence flags:

* ``bit_identical``: the parallel and serial fleets produced the same
  `FleetResult` JSON bytes (execution strategy never enters the result),
* ``resume_bit_identical``: a second fleet pointed at the first one's
  ``fleet_dir`` reproduced those bytes from the committed member results
  without re-running a single search.
"""

from __future__ import annotations

import multiprocessing
import tempfile
import time
from pathlib import Path

from .common import write_result

FAMILY = "resnet"
DEVICE = "rtx4090"


def _pool_context() -> str:
    """Fork when the platform has it: workers inherit the warm imports
    instead of paying a fresh interpreter + numpy import each."""
    if "fork" in multiprocessing.get_all_start_methods():
        return "fork"
    return "spawn"


def _workload(smoke: bool):
    if smoke:
        return {"population_size": 8, "generations": 3}, 4
    return {"population_size": 24, "generations": 8}, 8


def run(smoke: bool = False, out_dir=None):
    from repro import (
        DeviceOracle,
        SearchConstraints,
        SearchFleet,
        SimulatedDevice,
        SyntheticAccuracyProxy,
        space_by_name,
    )

    spec = space_by_name(FAMILY)
    device = SimulatedDevice(DEVICE, seed=0)
    oracle = DeviceOracle(device)
    proxy = SyntheticAccuracyProxy(spec, seed=0)
    params, n_seeds = _workload(smoke)
    constraints = SearchConstraints(max_latency_s=0.0009)
    mp_context = _pool_context()

    def fleet(**overrides):
        kwargs = dict(
            driver="evolutionary",
            search_params=params,
            n_seeds=n_seeds,
            constraints=constraints,
            mp_context=mp_context,
        )
        kwargs.update(overrides)
        return SearchFleet(spec, oracle, proxy, **kwargs)

    with tempfile.TemporaryDirectory(prefix="bench-fleet-") as tmp:
        fleet_dir = Path(tmp) / "fleet"

        t0 = time.perf_counter()
        parallel = fleet(workers=4, fleet_dir=fleet_dir).run()
        parallel_wall_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        resumed = fleet(fleet_dir=fleet_dir).run()
        resume_wall_s = time.perf_counter() - t0

        # Serial baseline checkpoints too (its own directory), so the two
        # walls differ only in execution strategy, not durability cost.
        t0 = time.perf_counter()
        serial = fleet(fleet_dir=Path(tmp) / "serial").run()
        serial_wall_s = time.perf_counter() - t0

    payload = parallel.to_dict()
    evaluations = sum(
        m["n_evaluations"] for m in payload["members"].values()
    )
    band = payload["dispersion"]

    cache_info = getattr(device, "cache_info", lambda: None)()
    return write_result(
        "search_fleet",
        params={
            "family": FAMILY,
            "device": DEVICE,
            "driver": "evolutionary",
            "n_seeds": n_seeds,
            **params,
            "max_latency_s": constraints.max_latency_s,
            "workers": 4,
            "mp_context": mp_context,
            "smoke": smoke,
        },
        wall_s=parallel_wall_s,
        per_item_us=parallel_wall_s / evaluations * 1e6,
        cache_hit_rate=None if cache_info is None else cache_info.hit_rate,
        out_dir=out_dir,
        serial_wall_s=round(serial_wall_s, 6),
        resume_wall_s=round(resume_wall_s, 6),
        speedup=round(serial_wall_s / parallel_wall_s, 4),
        total_evaluations=evaluations,
        feasible_median=band["n_feasible"]["median"],
        hypervolume_median=round(band["hypervolume"]["median"], 6),
        hypervolume_iqr=round(band["hypervolume"]["iqr"], 6),
        front_size_median=band["front_size"]["median"],
        degradations=[d["kind"] for d in payload["degradations"]],
        bit_identical=parallel.to_json() == serial.to_json(),
        resume_bit_identical=resumed.to_json() == parallel.to_json(),
    )
