"""Fit/predict throughput across the predictor zoo, plus switching overhead.

Times every registry member — ridge, CART, random forest, gradient
boosting, the MLP, and both LUT variants — on the same FCC-encoded
ResNet workload: seconds to fit, microseconds per predicted row, and the
held-out MAPE each one buys for that budget.  The adaptive switcher is
timed separately against its own winner's solo fit, which prices the
k-fold model selection (`overhead_x`: a 3-fold CV over five members costs
roughly 3x5 member fits plus the final refit).

Determinism is asserted, not assumed: every member must reproduce its
predictions bit for bit on a refit, and the record carries that flag.
"""

from __future__ import annotations

import time

import numpy as np

from .common import best_of, sample_configs, write_result

FAMILY = "resnet"
DEVICE = "rtx4090"
ENCODING = "fcc"
SEED = 1


def _members(smoke: bool):
    """Registry name -> constructor kwargs, shrunk for smoke mode."""
    if smoke:
        return {
            "ridge": {},
            "cart": {"max_depth": 4},
            "rf": {"n_estimators": 5},
            "gb": {"n_estimators": 10},
            "mlp": {"epochs": 30},
            "lut": {},
            "lut+bias": {},
            "as": {
                "zoo": ["ridge", "cart", "rf"],
                "zoo_params": {"rf": {"n_estimators": 5}},
                "cv_folds": 2,
            },
        }
    return {
        "ridge": {},
        "cart": {},
        "rf": {},
        "gb": {},
        "mlp": {"epochs": 600},
        "lut": {},
        "lut+bias": {},
        "as": {
            "zoo_params": {"mlp": {"epochs": 600}},
            "cv_folds": 3,
        },
    }


def run(smoke: bool = False, out_dir=None):
    from repro import SimulatedDevice, get_predictor, mape

    n_train = 60 if smoke else 400
    n_test = 200 if smoke else 2000
    configs, spec = sample_configs(FAMILY, n_train + n_test, SEED)
    device = SimulatedDevice(DEVICE, seed=0)
    from repro import get_encoding

    X = get_encoding(ENCODING).encode_batch(configs, spec)
    y = np.array([device.true_latency(c) for c in configs])
    X_train, y_train = X[:n_train], y[:n_train]
    X_test, y_test = X[n_train:], y[n_train:]

    members = _members(smoke)
    records = {}
    bit_identical = True
    total_wall = 0.0
    t_bench = time.perf_counter()
    for name, params in members.items():
        predictor = get_predictor(name, **params)
        t0 = time.perf_counter()
        predictor.fit(X_train, y_train)
        fit_s = time.perf_counter() - t0
        total_wall += fit_s
        predict_s, pred = best_of(lambda: predictor.predict(X_test), repeat=3)
        refit_pred = get_predictor(name, **params).fit(X_train, y_train).predict(X_test)
        identical = bool(np.array_equal(pred, refit_pred))
        bit_identical = bit_identical and identical
        records[name] = {
            "fit_ms": round(fit_s * 1e3, 3),
            "predict_us_per_row": round(predict_s / n_test * 1e6, 3),
            "held_out_mape_pct": round(float(mape(y_test, pred)), 4),
            "bit_identical_refit": identical,
        }
        if name == "as":
            records[name]["winner"] = predictor.winner_
            winner_solo = predictor._spawn(predictor.winner_)
            solo_s, _ = best_of(lambda: winner_solo.fit(X_train, y_train), repeat=1)
            records[name]["winner_solo_fit_ms"] = round(solo_s * 1e3, 3)
            records[name]["selection_overhead_x"] = (
                round(fit_s / solo_s, 2) if solo_s > 0 else None
            )
    bench_wall = time.perf_counter() - t_bench

    return write_result(
        "predictors",
        params={
            "family": FAMILY,
            "device": DEVICE,
            "encoding": ENCODING,
            "n_train": n_train,
            "n_test": n_test,
            "seed": SEED,
            "smoke": smoke,
        },
        wall_s=bench_wall,
        per_item_us=total_wall / (len(members) * n_train) * 1e6,
        cache_hit_rate=None,
        out_dir=out_dir,
        members=records,
        bit_identical=bit_identical,
    )
