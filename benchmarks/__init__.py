"""Performance benchmarks for the measurement and encoding hot paths.

Each ``bench_*.py`` module exposes ``run(smoke=False, out_dir=None)``,
times a before/after pair on the same seeded workload, and writes a
``results/BENCH_<name>.json`` record.  ``python -m benchmarks`` runs them
all; ``--smoke`` shrinks every workload so CI can exercise the harness in
seconds.  See README.md in this directory for the result schema.
"""
