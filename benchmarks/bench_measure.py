"""Repeated-config measurement: cached batch path vs the uncached loop.

The workload is the shape the ESM loop actually produces: a handful of
distinct architectures each measured many times (reference re-measurement,
protocol sweeps, repeated QC).  The baseline is the pre-caching hot path —
``measure_latency`` per config on a cache-disabled device, re-lowering the
network every call.  The optimised path feeds the same workload through
``measure_batch`` on a caching device.  Both consume one seeded generator
stream, so beyond timing them the benchmark asserts the results are
bit-identical.
"""

from __future__ import annotations

import time

import numpy as np

from .common import best_of, sample_configs, write_result

FAMILY = "densenet"
DEVICE = "rtx4090"
RNG_SEED = 123


def run(smoke: bool = False, out_dir=None):
    from repro import SimulatedDevice

    distinct, repeats, runs = (3, 5, 25) if smoke else (8, 25, 150)
    configs, _ = sample_configs(FAMILY, distinct, seed=1)
    workload = [configs[i % distinct] for i in range(distinct * repeats)]

    def baseline():
        device = SimulatedDevice(DEVICE, cache_size=0)
        rng = np.random.default_rng(RNG_SEED)
        return np.array(
            [device.measure_latency(c, runs=runs, rng=rng) for c in workload]
        )

    def optimised():
        device = SimulatedDevice(DEVICE)
        rng = np.random.default_rng(RNG_SEED)
        measured, _ = device.measure_batch(workload, runs=runs, rng=rng)
        return measured, device.cache_info()

    repeat = 1 if smoke else 3
    baseline_s, baseline_vals = best_of(baseline, repeat)
    wall_s, (measured, info) = best_of(optimised, repeat)

    return write_result(
        "measure",
        params={
            "family": FAMILY,
            "device": DEVICE,
            "distinct_configs": distinct,
            "repeats": repeats,
            "runs": runs,
            "rng_seed": RNG_SEED,
            "smoke": smoke,
        },
        wall_s=wall_s,
        per_item_us=wall_s / len(workload) * 1e6,
        cache_hit_rate=info.hit_rate,
        out_dir=out_dir,
        baseline_wall_s=round(baseline_s, 6),
        speedup=round(baseline_s / wall_s, 2),
        bit_identical=bool(np.array_equal(baseline_vals, measured)),
    )


if __name__ == "__main__":
    path, payload = run()
    print(path)
