"""Cross-device transfer: map-fit throughput and the budget-sweep cost.

Two layers:

* the `MonotoneLatencyMap` microbenchmark — PAVA fit plus interpolated
  apply over a large paired sample, priced per pair.  The map sits on
  the hot path of every transfer refit (the ESM loop refits it each
  extension round), so its throughput is worth watching;
* the experiment macro-run — the same seeded budget sweep the CI smoke
  step executes, timed end to end and re-run to assert the report is
  reproduced byte for byte (``bit_identical``).  The record carries the
  half-budget verdict so a quality regression (transfer no longer
  beating from-scratch on the golden pair) fails the benchmark gate,
  not just the test suite.
"""

from __future__ import annotations

import json
import time

import numpy as np

from .common import best_of, write_result

SEED = 1


def _map_workload(n_pairs: int, seed: int):
    """A noisy monotone relation, like proxy predictions vs target truth."""
    rng = np.random.default_rng(seed)
    proxy = np.sort(rng.uniform(0.1e-3, 5e-3, size=n_pairs))
    target = 3.0 * proxy**0.9 + rng.normal(scale=2e-4, size=n_pairs)
    return proxy, target


def run(smoke: bool = False, out_dir=None):
    from repro import MonotoneLatencyMap
    from repro.transfer.experiments import run_experiment

    # -- micro: PAVA fit + apply throughput ---------------------------- #
    n_pairs = 2_000 if smoke else 50_000
    proxy, target = _map_workload(n_pairs, SEED)
    fit_s, fitted = best_of(
        lambda: MonotoneLatencyMap().fit(proxy, target), repeat=3
    )
    queries = _map_workload(n_pairs, SEED + 1)[0]
    apply_s, _ = best_of(lambda: fitted.apply(queries), repeat=3)

    # -- macro: the seeded budget sweep, twice ------------------------- #
    if smoke:
        experiment = dict(
            devices=["rtx4090", "raspberrypi4"],
            budgets=[10, 25],
            smoke=True,
            seed=0,
        )
    else:
        # The exact config the CI smoke step and the golden trace lock.
        experiment = dict(smoke=True, seed=0)
    t0 = time.perf_counter()
    report = run_experiment(**experiment)
    experiment_s = time.perf_counter() - t0
    rerun = run_experiment(**experiment)
    bit_identical = json.dumps(report, sort_keys=True) == json.dumps(
        rerun, sort_keys=True
    )

    summary = report["summary"]
    golden = report["pairs"].get("rtx4090->raspberrypi4", {})
    return write_result(
        "transfer",
        params={
            "n_map_pairs": n_pairs,
            "experiment": {
                k: v for k, v in experiment.items() if k != "devices"
            },
            "n_experiment_pairs": summary["n_pairs"],
            "seed": SEED,
            "smoke": smoke,
        },
        wall_s=experiment_s,
        per_item_us=fit_s / n_pairs * 1e6,
        cache_hit_rate=None,
        out_dir=out_dir,
        map_fit_ms=round(fit_s * 1e3, 3),
        map_apply_us_per_row=round(apply_s / n_pairs * 1e6, 4),
        map_knots=fitted.n_knots,
        experiment_wall_s=round(experiment_s, 3),
        half_budget_wins=summary["n_half_budget_ok"],
        golden_pair_half_budget_ok=golden.get("half_budget_ok"),
        bit_identical=bit_identical,
    )
