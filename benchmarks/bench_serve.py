"""Prediction-server throughput: micro-batching vs one-request-one-predict.

Drives the `repro.serve` request path end to end — asyncio futures,
micro-batcher, encoder cache, vectorized predict — under a tight-loop
offered load of distinct configs, against the same server configured as
the naive baseline (``max_batch=1``: every request is its own
encode+predict, exactly what a service without batching would do).  Both
runs disable the prediction LRU so the numbers measure the batching win,
not cache hits; a third pass re-submits the workload with the cache on
to record the hit-rate path.

Recorded: sustained throughput (predictions/s), per-request p50/p99
latency under load, the speedup over the naive baseline, and the
`AdaptiveSwitchingPredictor.predict_one` fast path priced against its
winner's own 1-row batched predict.  Full mode asserts the acceptance
targets: >= 10k predictions/s single-core, micro-batched >= 5x naive,
predict_one within 2x of the winner's batch path.
"""

from __future__ import annotations

import asyncio
import time

import numpy as np

from .common import best_of, sample_configs, write_result

FAMILY = "resnet"
DEVICE = "raspberrypi4"
ENCODING = "fcc"
SEED = 7

THROUGHPUT_TARGET = 10_000  # predictions/s, single core, full mode
SPEEDUP_TARGET = 5.0  # micro-batched vs max_batch=1, full mode
PREDICT_ONE_TARGET = 2.0  # predict_one vs winner's own 1-row batch


def _make_server(model, *, max_batch, max_wait_s, cache_size):
    from repro import ModelRegistry, PredictionServer, ServeKey

    registry = ModelRegistry()
    registry.register(ServeKey(FAMILY, DEVICE, ENCODING), model)
    return PredictionServer(
        registry,
        max_batch=max_batch,
        max_wait_s=max_wait_s,
        cache_size=cache_size,
    )


def _serve_run(model, configs, *, max_batch, max_wait_s, repeats=1):
    """Push ``configs`` through a fresh server (LRU off) ``repeats`` times.

    Returns ``(wall_s, values, stats)``: wall is the best of the repeats
    (steady-state throughput, scheduler noise discarded), values/stats
    come from the last one.  No per-request instrumentation here — this
    is the clean number.
    """

    async def scenario(server):
        t_start = time.perf_counter()
        results = await server.predict_many(FAMILY, DEVICE, ENCODING, configs)
        return time.perf_counter() - t_start, results

    best_wall = float("inf")
    values = stats = None
    for _ in range(max(1, repeats)):
        server = _make_server(
            model, max_batch=max_batch, max_wait_s=max_wait_s, cache_size=0
        )
        wall, results = asyncio.run(scenario(server))
        if wall < best_wall:
            best_wall = wall
        values = np.array([r.latency_s for r in results])
        stats = server.stats()
    return best_wall, values, stats


def _latency_run(model, configs, *, max_batch, max_wait_s):
    """Per-request latency under sustained load (p50/p99).

    A separate pass from the throughput run (the ``perf_counter`` calls
    and done callbacks per request would tax the clean number), and
    paced: the submitter yields to the event loop after every
    ``max_batch`` submissions, like a front end interleaving reads and
    replies, so completion callbacks fire as each batch flushes.  A
    single tight loop would submit the whole workload before the loop
    runs once, timing the submitter instead of the service.
    """
    server = _make_server(
        model, max_batch=max_batch, max_wait_s=max_wait_s, cache_size=0
    )

    async def scenario():
        clock = time.perf_counter
        latencies = []
        futures = []
        for i, config in enumerate(configs):
            t0 = clock()
            future = server.submit(FAMILY, DEVICE, ENCODING, config)
            future.add_done_callback(
                lambda _f, t0=t0: latencies.append(clock() - t0)
            )
            futures.append(future)
            if (i + 1) % max_batch == 0:
                await asyncio.sleep(0)
        await asyncio.gather(*futures)
        return latencies

    return np.array(asyncio.run(scenario()))


def _cached_pass(model, configs):
    """Same workload twice through one server with the LRU on."""
    from repro import ModelRegistry, PredictionServer, ServeKey

    registry = ModelRegistry()
    registry.register(ServeKey(FAMILY, DEVICE, ENCODING), model)
    server = PredictionServer(registry, max_batch=256, max_wait_s=0.002)

    async def scenario():
        await server.predict_many(FAMILY, DEVICE, ENCODING, configs)
        t0 = time.perf_counter()
        await server.predict_many(FAMILY, DEVICE, ENCODING, configs)
        return time.perf_counter() - t0

    wall = asyncio.run(scenario())
    return wall, server.stats()


def _predict_one_ratio(X_train, y_train, X_probe, smoke):
    """Price `AdaptiveSwitchingPredictor.predict_one` against the winner."""
    from repro import AdaptiveSwitchingPredictor

    kwargs = (
        {"zoo": ["ridge", "cart", "rf"], "zoo_params": {"rf": {"n_estimators": 5}},
         "cv_folds": 2}
        if smoke
        else {"cv_folds": 3}
    )
    switcher = AdaptiveSwitchingPredictor(**kwargs).fit(X_train, y_train)
    winner = switcher.model  # the fitted winner itself

    rows = [np.ascontiguousarray(row) for row in X_probe]

    def via_predict_one():
        return [switcher.predict_one(row) for row in rows]

    def via_winner_batch1():
        return [float(winner.predict(row[None, :])[0]) for row in rows]

    one_s, one_vals = best_of(via_predict_one, repeat=3)
    batch1_s, batch1_vals = best_of(via_winner_batch1, repeat=3)
    assert one_vals == batch1_vals, "predict_one diverged from the winner"
    ratio = one_s / batch1_s if batch1_s > 0 else float("inf")
    return switcher.winner_, one_s, batch1_s, ratio


def run(smoke: bool = False, out_dir=None):
    from repro import MLPPredictor, SimulatedDevice, encoder_for

    n, n_base, n_train, n_probe = (
        (600, 150, 60, 100) if smoke else (20_000, 2_000, 400, 1_000)
    )
    max_batch, max_wait_s = 256, 0.002

    configs, spec = sample_configs(FAMILY, n, seed=SEED)
    train_configs, _ = sample_configs(FAMILY, n_train, seed=11)
    device = SimulatedDevice(DEVICE, seed=0)
    encoder = encoder_for(ENCODING, spec)
    X_train = encoder.encode_batch(train_configs, spec)
    y_train = np.array([device.true_latency(c) for c in train_configs])
    model = MLPPredictor(epochs=30 if smoke else 300).fit(X_train, y_train)

    # Naive baseline (the same server, one request = one encode+predict)
    # and the micro-batched path, LRU off in both.  The repeats are
    # interleaved so CPU-frequency / scheduler drift on a shared box
    # hits both paths alike instead of biasing whichever ran last; the
    # speedup is min-over-min, the same best-of discipline as `best_of`.
    base_wall = wall = float("inf")
    base_values = values = stats = None
    for _ in range(5):
        b, base_values, _ = _serve_run(
            model, configs[:n_base],
            max_batch=1, max_wait_s=max_wait_s,
        )
        w, values, stats = _serve_run(
            model, configs,
            max_batch=max_batch, max_wait_s=max_wait_s,
        )
        base_wall = min(base_wall, b)
        wall = min(wall, w)
    base_per_item = base_wall / n_base
    throughput = n / wall
    speedup = base_per_item / (wall / n)

    # Best-of-2 on the tail too: a single scheduler/GC stall on a shared
    # one-core box smears ~100ms over a whole batch of requests, which
    # says nothing about the server.  Same discipline as `best_of`.
    latencies = min(
        (
            _latency_run(
                model, configs, max_batch=max_batch, max_wait_s=max_wait_s
            )
            for _ in range(2)
        ),
        key=lambda lat: np.percentile(lat, 99),
    )
    p50_ms = float(np.percentile(latencies, 50) * 1e3)
    p99_ms = float(np.percentile(latencies, 99) * 1e3)

    # Same model, same configs: batched answers must match the naive ones
    # (allclose, not bytes — BLAS may group 1-row and n-row matmuls
    # differently).
    equivalent = bool(np.allclose(values[:n_base], base_values))

    cached_wall, cached_stats = _cached_pass(model, configs[:n_base])

    winner, one_s, batch1_s, ratio = _predict_one_ratio(
        X_train, y_train,
        encoder.encode_batch(configs[:n_probe], spec), smoke,
    )

    if not smoke:
        assert throughput >= THROUGHPUT_TARGET, (
            f"throughput {throughput:.0f}/s below the "
            f"{THROUGHPUT_TARGET}/s acceptance target"
        )
        assert speedup >= SPEEDUP_TARGET, (
            f"micro-batching speedup {speedup:.2f}x below "
            f"{SPEEDUP_TARGET}x vs one-request-one-predict"
        )
        assert ratio <= PREDICT_ONE_TARGET, (
            f"predict_one is {ratio:.2f}x the winner's 1-row batch path "
            f"(target <= {PREDICT_ONE_TARGET}x)"
        )

    return write_result(
        "serve",
        params={
            "family": FAMILY,
            "device": DEVICE,
            "encoding": ENCODING,
            "n_requests": n,
            "n_baseline": n_base,
            "max_batch": max_batch,
            "max_wait_ms": max_wait_s * 1e3,
            "seed": SEED,
            "smoke": smoke,
        },
        wall_s=wall,
        per_item_us=wall / n * 1e6,
        cache_hit_rate=cached_stats["cache_hit_rate"],
        out_dir=out_dir,
        baseline_wall_s=round(base_wall, 6),
        baseline_per_item_us=round(base_per_item * 1e6, 3),
        speedup=round(speedup, 2),
        throughput_per_s=round(throughput, 1),
        p50_ms=round(p50_ms, 4),
        p99_ms=round(p99_ms, 4),
        batches=stats["batches"],
        mean_batch=round(stats["mean_batch"], 1),
        largest_batch=stats["largest_batch"],
        cached_rerun_wall_s=round(cached_wall, 6),
        predict_one={
            "winner": winner,
            "us_per_row": round(one_s / n_probe * 1e6, 3),
            "winner_batch1_us_per_row": round(batch1_s / n_probe * 1e6, 3),
            "ratio_vs_winner": round(ratio, 3),
        },
        equivalent=equivalent,
    )


if __name__ == "__main__":
    path, payload = run()
    print(path)
