"""Wall clock of a full ESM loop run: Algorithm 1 to convergence.

Times a seeded `ESMLoop` — initial campaign, per-iteration MLP refits,
bin-wise evaluation, and extension campaigns — on the simulated RTX 4090
over the ResNet space, and reports per-iteration wall time next to the
run's convergence outcome.  A second pass re-runs the loop over the
finished run directory to time the *resume* path (every measurement batch
reused; only sampling/training/evaluation recomputed), which is the cost
a NAS consumer pays to rebuild the surrogate from provenance.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from pathlib import Path

from .common import write_result

FAMILY = "resnet"
DEVICE = "rtx4090"
SEED = 1


def _config(smoke: bool):
    from repro import ESMConfig

    if smoke:
        return ESMConfig(
            space=FAMILY,
            device=DEVICE,
            acc_th=75.0,
            n_bins=5,
            initial_size=40,
            extension_size=10,
            max_iterations=3,
            runs=9,
            n_references=2,
            batch_size=10,
            seed=SEED,
            predictor_params={"epochs": 150},
        )
    return ESMConfig(
        space=FAMILY,
        device=DEVICE,
        acc_th=82.0,
        n_bins=5,
        initial_size=120,
        extension_size=30,
        max_iterations=6,
        runs=15,
        n_references=2,
        batch_size=25,
        seed=SEED,
        predictor_params={"epochs": 600},
    )


def run(smoke: bool = False, out_dir=None):
    from repro import ESMLoop

    config = _config(smoke)
    root = Path(tempfile.mkdtemp(prefix="bench_esm_loop_"))
    try:
        loop = ESMLoop(config, root / "run", sleep=lambda s: None)
        t0 = time.perf_counter()
        result = loop.run()
        wall_s = time.perf_counter() - t0

        # Resume path: identical bytes, no re-measuring.
        resume_loop = ESMLoop(config, root / "run", sleep=lambda s: None)
        t0 = time.perf_counter()
        resumed = resume_loop.run()
        resume_wall_s = time.perf_counter() - t0

        report = result.report
        iterations = max(1, report.n_iterations)
        cache_info = getattr(loop.device, "cache_info", lambda: None)()
        return write_result(
            "esm_loop",
            params={
                "family": FAMILY,
                "device": DEVICE,
                "acc_th": config.acc_th,
                "initial_size": config.initial_size,
                "extension_size": config.extension_size,
                "max_iterations": config.max_iterations,
                "runs": config.runs,
                "epochs": config.predictor_params.get("epochs"),
                "seed": SEED,
                "smoke": smoke,
            },
            wall_s=wall_s,
            per_item_us=wall_s / iterations * 1e6,
            cache_hit_rate=None if cache_info is None else cache_info.hit_rate,
            out_dir=out_dir,
            converged=report.converged,
            iterations=report.n_iterations,
            final_dataset_size=report.final_dataset_size,
            samples_added=report.total_samples_added,
            resume_wall_s=round(resume_wall_s, 6),
            resume_speedup=round(wall_s / resume_wall_s, 2) if resume_wall_s else None,
            bit_identical=(
                report.to_dict() == resumed.report.to_dict()
                and result.dataset == resumed.dataset
            ),
        )
    finally:
        shutil.rmtree(root, ignore_errors=True)
