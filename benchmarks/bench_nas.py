"""Wall clock of the NAS search drivers over the simulated device.

Times a seeded `EvolutionarySearch` (NSGA-II selection, block-level
variation, true latency from the simulated RTX 4090, synthetic accuracy
proxy) against a `RandomSearch` given the *same evaluation budget*, and
reports per-evaluation cost plus the quality gap: the hypervolume of the
evolutionary front over the random front's, measured against a shared
reference point.  The second evolutionary run re-uses the device's warm
analytical cache, which is the cost profile the experiments CLI sees.
"""

from __future__ import annotations

import time

from .common import write_result

FAMILY = "resnet"
DEVICE = "rtx4090"
SEED = 3


def _budgets(smoke: bool):
    if smoke:
        return {"population_size": 8, "generations": 3}
    return {"population_size": 32, "generations": 12}


def run(smoke: bool = False, out_dir=None):
    from repro import (
        DeviceOracle,
        EvolutionarySearch,
        RandomSearch,
        SimulatedDevice,
        SyntheticAccuracyProxy,
        space_by_name,
    )

    spec = space_by_name(FAMILY)
    device = SimulatedDevice(DEVICE, seed=SEED)
    oracle = DeviceOracle(device)
    proxy = SyntheticAccuracyProxy(spec, seed=SEED)
    budgets = _budgets(smoke)
    budget = budgets["population_size"] * (budgets["generations"] + 1)

    t0 = time.perf_counter()
    evo = EvolutionarySearch(spec, oracle, proxy, seed=SEED, **budgets).run()
    evo_wall_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    rand = RandomSearch(spec, oracle, proxy, budget=budget, seed=SEED).run()
    rand_wall_s = time.perf_counter() - t0

    # Shared reference: strictly worse than anything either search saw.
    worst_latency = 1.1 * max(c.latency_s for c in evo.evaluated + rand.evaluated)
    ref_accuracy = proxy.floor - 1.0
    hv_evo = evo.front.hypervolume(worst_latency, ref_accuracy)
    hv_rand = rand.front.hypervolume(worst_latency, ref_accuracy)

    # Warm-cache repeat: the resume-style cost once latencies are cached.
    t0 = time.perf_counter()
    rerun = EvolutionarySearch(spec, oracle, proxy, seed=SEED, **budgets).run()
    warm_wall_s = time.perf_counter() - t0

    cache_info = getattr(device, "cache_info", lambda: None)()
    return write_result(
        "nas",
        params={
            "family": FAMILY,
            "device": DEVICE,
            "budget": budget,
            **budgets,
            "seed": SEED,
            "smoke": smoke,
        },
        wall_s=evo_wall_s,
        per_item_us=evo_wall_s / budget * 1e6,
        cache_hit_rate=None if cache_info is None else cache_info.hit_rate,
        out_dir=out_dir,
        random_wall_s=round(rand_wall_s, 6),
        warm_wall_s=round(warm_wall_s, 6),
        front_size_evolutionary=len(evo.front),
        front_size_random=len(rand.front),
        hypervolume_evolutionary=round(hv_evo, 6),
        hypervolume_random=round(hv_rand, 6),
        hypervolume_ratio=round(hv_evo / hv_rand, 4) if hv_rand else None,
        bit_identical=(
            [c.to_dict() for c in rerun.population]
            == [c.to_dict() for c in evo.population]
        ),
    )
