"""Batch encoding: vectorized ``encode_batch`` vs the per-config loop.

Times every registered encoding on the same sampled config batch against
``Encoding._encode_batch_loop`` (the preserved reference implementation)
and asserts the outputs agree — exactly for the index-scatter encoders,
to float tolerance for the statistical encoder, whose numpy reductions
sum in a different (pairwise) order than the sequential loop.
"""

from __future__ import annotations

import numpy as np

from .common import best_of, sample_configs, write_result

FAMILY = "resnet"


def run(smoke: bool = False, out_dir=None):
    from repro import get_encoding, list_encodings

    n = 300 if smoke else 2000
    configs, spec = sample_configs(FAMILY, n, seed=3)
    repeat = 1 if smoke else 3

    encoders = {}
    total_loop = 0.0
    total_vec = 0.0
    all_equivalent = True
    for name in list_encodings():
        encoding = get_encoding(name)
        loop_s, loop_out = best_of(
            lambda: encoding._encode_batch_loop(configs, spec), repeat
        )
        vec_s, vec_out = best_of(
            lambda: encoding.encode_batch(configs, spec), repeat
        )
        if name == "statistical":
            equivalent = np.allclose(loop_out, vec_out, rtol=1e-12, atol=1e-14)
        else:
            equivalent = np.array_equal(loop_out, vec_out)
        all_equivalent = all_equivalent and bool(equivalent)
        total_loop += loop_s
        total_vec += vec_s
        encoders[name] = {
            "loop_wall_s": round(loop_s, 6),
            "wall_s": round(vec_s, 6),
            "speedup": round(loop_s / vec_s, 2),
            "equivalent": bool(equivalent),
        }

    return write_result(
        "encode",
        params={"family": FAMILY, "n_configs": n, "smoke": smoke},
        wall_s=total_vec,
        per_item_us=total_vec / (n * len(encoders)) * 1e6,
        cache_hit_rate=None,
        out_dir=out_dir,
        baseline_wall_s=round(total_loop, 6),
        speedup=round(total_loop / total_vec, 2),
        equivalent=all_equivalent,
        encoders=encoders,
    )


if __name__ == "__main__":
    path, payload = run()
    print(path)
