"""Repo-root conftest: make ``src/`` importable for plain ``pytest`` runs.

The canonical invocation is ``PYTHONPATH=src python -m pytest -x -q``; this
keeps ``pytest`` working without the env var too.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
