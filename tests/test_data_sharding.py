"""`ShardedLatencyDataset`: atomic appends, digests, quarantine repair."""

import json

import pytest

from repro import (
    DatasetError,
    LatencyDataset,
    LatencySample,
    RandomSampler,
    ShardedLatencyDataset,
    ShardInfo,
    resnet_space,
)
from repro.data.sharding import SHARD_MANIFEST_VERSION, _sha256


@pytest.fixture(scope="module")
def samples():
    spec = resnet_space()
    configs = RandomSampler(spec, rng=11).sample_batch(25)
    return [
        LatencySample(config=c, latency_s=0.001 * (i + 1), device="quietsim")
        for i, c in enumerate(configs)
    ]


@pytest.fixture
def store(tmp_path, samples):
    return ShardedLatencyDataset.from_dataset(
        LatencyDataset(samples), tmp_path / "ds", shard_size=10
    )


class TestLayout:
    def test_create_is_idempotent(self, tmp_path):
        a = ShardedLatencyDataset.create(tmp_path / "ds")
        b = ShardedLatencyDataset.create(tmp_path / "ds")
        assert a.manifest_path == b.manifest_path
        assert len(a) == len(b) == 0
        assert a.shards == []

    def test_from_dataset_shards_by_size(self, store, samples):
        infos = store.shards
        assert [s.name for s in infos] == [
            "shard-00000.json", "shard-00001.json", "shard-00002.json",
        ]
        assert [s.n_samples for s in infos] == [10, 10, 5]
        assert len(store) == 25
        manifest = json.loads(store.manifest_path.read_text())
        assert manifest["manifest_version"] == SHARD_MANIFEST_VERSION
        assert manifest["n_samples"] == 25 and manifest["n_shards"] == 3

    def test_round_trip_preserves_order_and_content(self, store, samples):
        assert store.to_dataset() == LatencyDataset(samples)

    def test_streaming_iteration_matches(self, store, samples):
        assert list(store) == samples
        shard_lens = [len(s) for s in store.iter_shards()]
        assert shard_lens == [10, 10, 5]

    def test_append_validation(self, tmp_path, samples):
        store = ShardedLatencyDataset.create(tmp_path / "ds")
        with pytest.raises(ValueError):
            store.append_shard([])
        with pytest.raises(ValueError):
            store.extend(samples, shard_size=0)
        with pytest.raises(ValueError):
            ShardedLatencyDataset.from_dataset(
                LatencyDataset(samples), tmp_path / "ds2", shard_size=0
            )

    def test_extend_appends_consecutively(self, store, samples):
        store.extend(samples[:12], shard_size=10)
        assert [s.n_samples for s in store.shards] == [10, 10, 5, 10, 2]
        assert len(store) == 37

    def test_orphan_shard_from_a_torn_write_is_overwritten(
        self, store, samples
    ):
        """Crash between shard write and manifest commit: the orphan file
        must not confuse the next append — the manifest is the only truth."""
        orphan = store.shard_path("shard-00003.json")
        orphan.write_text("{torn garbage")
        assert len(store) == 25  # invisible to reads
        assert store.verify() == []
        info = store.append_shard(samples[:3])
        assert info.name == "shard-00003.json"
        assert store.read_shard(info).samples == samples[:3]


class TestIntegrity:
    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(DatasetError, match="does not exist"):
            ShardedLatencyDataset(tmp_path / "nope").shards

    def test_corrupt_manifest_raises(self, tmp_path):
        store = ShardedLatencyDataset.create(tmp_path / "ds")
        store.manifest_path.write_text("{not json")
        with pytest.raises(DatasetError, match="not valid JSON"):
            store.shards
        store.manifest_path.write_text('{"manifest_version": 99}')
        with pytest.raises(DatasetError, match="manifest_version 99"):
            store.shards

    def test_bit_flip_is_detected_and_named(self, store):
        info = store.shards[1]
        path = store.shard_path(info.name)
        path.write_text(path.read_text().replace("0.011", "0.099", 1))
        with pytest.raises(DatasetError) as excinfo:
            list(store)
        message = str(excinfo.value)
        # The error names the bad shard and both digests.
        assert info.name in message
        assert info.sha256 in message
        assert _sha256(path.read_text()) in message
        # The healthy shards before it streamed fine.
        assert len(store.read_shard(store.shards[0])) == 10

    def test_missing_shard_is_detected(self, store):
        store.shard_path("shard-00002.json").unlink()
        problems = store.verify()
        assert problems == ["shard shard-00002.json: missing from disk"]
        with pytest.raises(DatasetError, match="missing on disk"):
            store.to_dataset()

    def test_verify_reports_every_problem(self, store):
        store.shard_path("shard-00000.json").write_text("{bad")
        store.shard_path("shard-00002.json").unlink()
        problems = store.verify()
        assert len(problems) == 2
        assert any("sha256 mismatch" in p for p in problems)
        assert any("missing from disk" in p for p in problems)

    def test_schema_violation_names_the_sample_index(self, store, samples):
        """A shard that hashes clean but violates the schema points at the
        exact failing sample, not just the file."""
        info = store.shards[0]
        path = store.shard_path(info.name)
        payload = json.loads(path.read_text())
        payload["samples"][7]["latency_s"] = -1.0
        text = json.dumps(payload)
        path.write_text(text)
        # Keep the digest honest so the parse (not the hash) is what fails.
        doctored = [
            ShardInfo(info.name, info.n_samples, _sha256(text))
            if s.name == info.name else s
            for s in store.shards
        ]
        store._save_manifest(doctored)
        with pytest.raises(DatasetError) as excinfo:
            store.read_shard(doctored[0])
        message = str(excinfo.value)
        assert str(path) in message
        assert "sample 7" in message
        assert "-1.0" in message


class TestRepair:
    def corrupt(self, store):
        path = store.shard_path("shard-00001.json")
        path.write_text(path.read_text()[:-20])
        return path

    def test_strict_repair_refuses_and_lists(self, store):
        self.corrupt(store)
        with pytest.raises(DatasetError, match="strict=False"):
            store.repair()
        # Nothing was touched.
        assert len(store.shards) == 3
        assert store.shard_path("shard-00001.json").exists()

    def test_quarantine_repair_keeps_the_healthy_remainder(self, store, samples):
        path = self.corrupt(store)
        report = store.repair(strict=False)
        assert not report.healthy
        assert report.checked == 3
        assert report.dropped == ["shard-00001.json"]
        assert report.kept_samples == 15
        # The corrupt bytes are preserved for the post-mortem...
        assert not path.exists()
        assert path.with_suffix(".json.corrupt").exists()
        # ...and the dataset serves what survived, digest-checked.
        assert store.verify() == []
        assert list(store) == samples[:10] + samples[20:]

    def test_repair_of_a_missing_shard(self, store):
        store.shard_path("shard-00000.json").unlink()
        report = store.repair(strict=False)
        assert report.dropped == ["shard-00000.json"]
        assert len(store) == 15

    def test_repair_on_a_healthy_store_is_a_no_op(self, store, samples):
        before = store.manifest_path.read_bytes()
        report = store.repair()
        assert report.healthy and report.checked == 3
        assert report.kept_samples == 25
        assert store.manifest_path.read_bytes() == before
