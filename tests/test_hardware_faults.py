"""`FaultyDevice`: seeded injection of the failure modes QC must survive."""

import numpy as np
import pytest

from repro import (
    FaultPlan,
    FaultyDevice,
    MeasurementError,
    MeasurementProtocol,
    MeasurementTimeout,
    RandomSampler,
    SimulatedDevice,
    resnet_space,
)


@pytest.fixture(scope="module")
def sample_config():
    return RandomSampler(resnet_space(), rng=3).sample()


def make_device(plan, seed=0):
    return FaultyDevice(SimulatedDevice("rtx4090", seed=123), plan, seed=seed)


class TestFaultPlan:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"throttle_prob": -0.1},
            {"error_prob": 1.5},
            {"timeout_prob": 2.0},
            {"corrupt_prob": -1.0},
            {"throttle_factor": 0.0},
            {"corrupt_fraction": 0.0},
            {"corrupt_fraction": 1.5},
            {"straggler_prob": -0.1},
            {"straggler_prob": 1.5},
            {"straggler_factor": 0.5},
        ],
    )
    def test_bad_parameters_raise(self, kwargs):
        with pytest.raises(ValueError):
            FaultPlan(**kwargs)

    def test_default_plan_is_benign(self):
        plan = FaultPlan()
        assert plan.throttle_prob == plan.error_prob == 0.0
        assert plan.timeout_prob == plan.corrupt_prob == 0.0
        assert plan.straggler_prob == 0.0 and plan.straggler_factor == 4.0


class TestDelegation:
    def test_true_latency_and_profile_pass_through(self, sample_config):
        inner = SimulatedDevice("rtx4090", seed=0)
        faulty = FaultyDevice(inner, FaultPlan(), seed=0)
        assert faulty.true_latency(sample_config) == inner.true_latency(sample_config)
        assert faulty.profile.name == "rtx4090"

    def test_benign_plan_measures_positive_trace(self, sample_config):
        trace = make_device(FaultPlan()).measure(sample_config, runs=25)
        assert trace.shape == (25,)
        assert (trace > 0).all()


class TestThrottleSessions:
    def test_throttle_is_sustained_across_the_session(self, sample_config):
        plan = FaultPlan(throttle_prob=1.0, throttle_factor=1.4)
        clean = make_device(FaultPlan())
        throttled = make_device(plan)
        assert throttled.begin_session(np.random.default_rng(0)) is True
        assert throttled.session_throttled
        # Both wrappers consume the passed stream identically, so every
        # trace in the throttled session is exactly factor x the clean one.
        for call_seed in (7, 8):
            a = clean.measure(
                sample_config, runs=30, rng=np.random.default_rng(call_seed)
            )
            b = throttled.measure(
                sample_config, runs=30, rng=np.random.default_rng(call_seed)
            )
            np.testing.assert_allclose(b, 1.4 * a)

    def test_clean_session_leaves_trace_unscaled(self, sample_config):
        device = make_device(FaultPlan(throttle_prob=0.0, throttle_factor=2.0))
        assert device.begin_session(np.random.default_rng(0)) is False
        assert not device.session_throttled

    def test_session_draw_is_seeded(self):
        device = make_device(FaultPlan(throttle_prob=0.5))
        draws_a = [device.begin_session(np.random.default_rng(s)) for s in range(20)]
        draws_b = [device.begin_session(np.random.default_rng(s)) for s in range(20)]
        assert draws_a == draws_b
        assert any(draws_a) and not all(draws_a)


class TestStragglerSessions:
    """The fleet fault model: wall-clock skew that never touches bytes."""

    def test_fleet_session_draw_sets_the_factor(self, sample_config):
        device = make_device(FaultPlan(straggler_prob=1.0, straggler_factor=6.0))
        assert device.session_straggler_factor == 1.0  # before any draw
        factor = device.begin_fleet_session(np.random.default_rng(0))
        assert factor == 6.0 == device.session_straggler_factor
        assert device.session_straggling

    def test_zero_probability_never_straggles(self):
        device = make_device(FaultPlan(straggler_factor=9.0))
        for seed in range(10):
            assert device.begin_fleet_session(np.random.default_rng(seed)) == 1.0
        assert not device.session_straggling

    def test_draw_is_seeded_and_mixed(self):
        device = make_device(FaultPlan(straggler_prob=0.5))
        draws_a = [
            device.begin_fleet_session(np.random.default_rng(s)) for s in range(20)
        ]
        draws_b = [
            device.begin_fleet_session(np.random.default_rng(s)) for s in range(20)
        ]
        assert draws_a == draws_b
        assert 1.0 in draws_a and 4.0 in draws_a

    def test_straggling_does_not_change_measured_bytes(self, sample_config):
        clean = make_device(FaultPlan())
        straggler = make_device(
            FaultPlan(straggler_prob=1.0, straggler_factor=8.0)
        )
        straggler.begin_fleet_session(np.random.default_rng(0))
        a = clean.measure(sample_config, runs=20, rng=np.random.default_rng(3))
        b = straggler.measure(sample_config, runs=20, rng=np.random.default_rng(3))
        np.testing.assert_array_equal(a, b)


class TestTransientFaults:
    def test_error_injection(self, sample_config):
        device = make_device(FaultPlan(error_prob=1.0))
        with pytest.raises(MeasurementError):
            device.measure(sample_config, runs=10)

    def test_timeout_injection(self, sample_config):
        device = make_device(FaultPlan(timeout_prob=1.0))
        with pytest.raises(MeasurementTimeout):
            device.measure(sample_config, runs=10)

    def test_timeout_is_a_measurement_error(self):
        assert issubclass(MeasurementTimeout, MeasurementError)

    def test_corruption_rejected_by_protocol(self, sample_config):
        device = make_device(FaultPlan(corrupt_prob=1.0, corrupt_fraction=0.2))
        trace = device.measure(sample_config, runs=20)
        assert np.isnan(trace).any() or (trace <= 0).any()
        with pytest.raises(MeasurementError):
            MeasurementProtocol(runs=20).trimmed_mean(trace)
        with pytest.raises(MeasurementError):
            device.measure_latency(sample_config, runs=20)

    def test_fault_sequence_is_seeded(self, sample_config):
        plan = FaultPlan(error_prob=0.2, timeout_prob=0.2, corrupt_prob=0.3)

        def outcomes(seed):
            device = make_device(plan, seed=seed)
            result = []
            for _ in range(30):
                try:
                    result.append(round(device.measure_latency(
                        sample_config, runs=5
                    ), 12))
                except MeasurementTimeout:
                    result.append("timeout")
                except MeasurementError:
                    result.append("error")
            return result

        a, b = outcomes(9), outcomes(9)
        assert a == b
        kinds = set(type(x).__name__ for x in a)
        assert "str" in kinds and "float" in kinds  # both faults and successes
