"""End-to-end smoke test: the paper's headline encoding ordering.

Measures a small seeded ResNet dataset on the simulated RTX 4090, trains
the paper's MLP on the FCC and statistical encodings, and asserts the
qualitative result Figs. 8-9 hinge on: FCC (joint kernel-expand counts)
beats the HAT-style statistical summary, and both are usable (> 80%).
Everything is seeded, so this is a deterministic regression gate for the
whole pipeline: spaces -> simulator -> encodings -> predictor -> metrics.
"""

import numpy as np

from repro import (
    LatencyDataset,
    LatencySample,
    MLPPredictor,
    RandomSampler,
    SimulatedDevice,
    paper_accuracy,
    resnet_space,
    spearman,
)

N_CONFIGS = 300
TRAIN_FRACTION = 0.8


def _measure_dataset():
    spec = resnet_space()
    device = SimulatedDevice("rtx4090", seed=7)
    configs = RandomSampler(spec, rng=7).sample_batch(N_CONFIGS)
    measured, true = device.measure_batch(
        configs, runs=20, rng=np.random.default_rng(123)
    )
    dataset = LatencyDataset(
        [
            LatencySample(c, float(m), "rtx4090", float(t))
            for c, m, t in zip(configs, measured, true)
        ]
    )
    return spec, dataset


def test_fcc_beats_statistical_encoding_end_to_end():
    spec, dataset = _measure_dataset()
    train, test = dataset.split(TRAIN_FRACTION, rng=0)

    accuracy = {}
    for encoding in ("fcc", "statistical"):
        X_train = train.encode(encoding, spec)
        X_test = test.encode(encoding, spec)
        mlp = MLPPredictor(epochs=1500, seed=0).fit(X_train, train.latencies)
        pred = mlp.predict(X_test)
        accuracy[encoding] = paper_accuracy(test.latencies, pred)
        # Any usable surrogate must also rank architectures correctly.
        assert spearman(test.latencies, pred) > 0.9

    # The paper's headline ordering, as a regression gate.
    assert accuracy["fcc"] > accuracy["statistical"]
    assert accuracy["fcc"] > 80.0
    assert accuracy["statistical"] > 80.0
