"""Variation operators: children always satisfy their space's constraints.

Property-based over all three Table I spaces (satellite of the NAS PR):
every child produced from valid parents must respect the space's depth,
kernel, expand, and uniform-kernel constraints — `SpaceSpec.contains` is
the single source of truth.  Plus seeded-determinism and error cases.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import RandomSampler, SPACE_NAMES, crossover, mutate, space_by_name


class TestMutationValidity:
    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_child_is_member_of_space(self, data):
        spec = space_by_name(data.draw(st.sampled_from(SPACE_NAMES)))
        seed = data.draw(st.integers(min_value=0, max_value=2**32 - 1))
        p_depth = data.draw(st.floats(min_value=0.0, max_value=1.0))
        p_block = data.draw(st.floats(min_value=0.0, max_value=1.0))
        rng = np.random.default_rng(seed)
        parent = RandomSampler(spec, rng=rng).sample()
        child = mutate(parent, spec, rng, p_depth=p_depth, p_block=p_block)
        assert spec.contains(child)

    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_chained_mutation_stays_in_space(self, data):
        spec = space_by_name(data.draw(st.sampled_from(SPACE_NAMES)))
        seed = data.draw(st.integers(min_value=0, max_value=2**32 - 1))
        rng = np.random.default_rng(seed)
        config = RandomSampler(spec, rng=rng).sample()
        for _ in range(5):
            config = mutate(config, spec, rng, p_depth=0.5, p_block=0.5)
            assert spec.contains(config)

    def test_zero_probability_is_identity(self):
        spec = space_by_name("resnet")
        parent = RandomSampler(spec, rng=3).sample()
        child = mutate(parent, spec, np.random.default_rng(0), p_depth=0.0, p_block=0.0)
        assert child == parent

    def test_seeded_mutation_is_deterministic(self):
        spec = space_by_name("mobilenetv3")
        parent = RandomSampler(spec, rng=7).sample()
        a = mutate(parent, spec, np.random.default_rng(42))
        b = mutate(parent, spec, np.random.default_rng(42))
        assert a == b

    def test_certain_mutation_changes_something(self):
        spec = space_by_name("resnet")
        parent = RandomSampler(spec, rng=5).sample()
        children = {
            mutate(parent, spec, np.random.default_rng(s), p_depth=1.0, p_block=1.0)
            for s in range(8)
        }
        assert any(child != parent for child in children)

    def test_invalid_probability_rejected(self):
        spec = space_by_name("resnet")
        parent = RandomSampler(spec, rng=1).sample()
        with pytest.raises(ValueError, match="probabilities"):
            mutate(parent, spec, 0, p_depth=1.5)


class TestCrossoverValidity:
    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_children_are_members_of_space(self, data):
        spec = space_by_name(data.draw(st.sampled_from(SPACE_NAMES)))
        seed = data.draw(st.integers(min_value=0, max_value=2**32 - 1))
        rng = np.random.default_rng(seed)
        sampler = RandomSampler(spec, rng=rng)
        a, b = sampler.sample(), sampler.sample()
        first, second = crossover(a, b, spec, rng)
        assert spec.contains(first) and spec.contains(second)

    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_children_jointly_preserve_parental_units(self, data):
        spec = space_by_name(data.draw(st.sampled_from(SPACE_NAMES)))
        seed = data.draw(st.integers(min_value=0, max_value=2**32 - 1))
        rng = np.random.default_rng(seed)
        sampler = RandomSampler(spec, rng=rng)
        a, b = sampler.sample(), sampler.sample()
        first, second = crossover(a, b, spec, rng)
        for u in range(spec.num_units):
            assert {first.units[u], second.units[u]} == {a.units[u], b.units[u]}

    def test_seeded_crossover_is_deterministic(self):
        spec = space_by_name("densenet")
        sampler = RandomSampler(spec, rng=9)
        a, b = sampler.sample(), sampler.sample()
        assert crossover(a, b, spec, np.random.default_rng(5)) == crossover(
            a, b, spec, np.random.default_rng(5)
        )

    def test_foreign_parent_rejected(self):
        resnet, mbv3 = space_by_name("resnet"), space_by_name("mobilenetv3")
        a = RandomSampler(resnet, rng=0).sample()
        b = RandomSampler(mbv3, rng=0).sample()
        with pytest.raises(ValueError, match="parents"):
            crossover(a, b, resnet, 0)
