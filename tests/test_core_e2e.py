"""End-to-end: `FaultyDevice` -> `CampaignRunner` -> `ESMLoop`.

The whole stack under injected faults — transient errors, hangs, NaN
traces, sustained throttle sessions — must still produce a *deterministic*
convergence result: byte-identical ``report.json`` / ``dataset.json`` /
``predictor.json`` whether the campaigns run serially or on a process
pool, and whether or not the run was killed mid-extension and resumed.
"""

import multiprocessing

import numpy as np
import pytest

from repro import (
    ESMConfig,
    ESMLoop,
    FaultPlan,
    FaultyDevice,
    SimulatedDevice,
    load_run,
)
from repro.profiling import CampaignReport, CampaignRunner

ARTIFACTS = ("report.json", "dataset.json", "predictor.json")

E2E_CONFIG = ESMConfig(
    space="resnet",
    device="rtx4090",
    acc_th=82.0,
    n_bins=5,
    initial_size=120,
    extension_size=30,
    max_iterations=6,
    runs=15,
    n_references=2,
    batch_size=10,  # extensions span several batches -> resumable mid-way
    seed=3,
    predictor_params={"epochs": 600},
)

# Lively enough that every fault class fires across the run's campaigns,
# mild enough that the QC/retry machinery always recovers.
FAULTS = FaultPlan(
    throttle_prob=0.25,
    throttle_factor=1.3,
    error_prob=0.03,
    timeout_prob=0.02,
    corrupt_prob=0.03,
)


def make_loop(run_dir, **kwargs):
    device = FaultyDevice(
        SimulatedDevice(E2E_CONFIG.device, seed=E2E_CONFIG.seed),
        FAULTS,
        seed=E2E_CONFIG.seed,
    )
    return ESMLoop(
        E2E_CONFIG, run_dir, device=device, sleep=lambda s: None, **kwargs
    )


def artifact_bytes(run_dir):
    return {name: (run_dir / name).read_bytes() for name in ARTIFACTS}


def pool_context():
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


@pytest.fixture(scope="module")
def serial_run(tmp_path_factory):
    run_dir = tmp_path_factory.mktemp("esm-e2e") / "serial"
    return make_loop(run_dir).run()


class TestFaultyConvergence:
    def test_converges_despite_faults(self, serial_run):
        report = serial_run.report
        assert report.converged
        assert all(
            acc >= E2E_CONFIG.acc_th
            for acc in report.final_bin_accuracies.values()
        )

    def test_fault_machinery_actually_engaged(self, serial_run):
        """The fault plan must exercise the recovery paths, not idle."""
        campaign_dirs = sorted(serial_run.run_dir.glob("campaign-*"))
        assert len(campaign_dirs) == serial_run.report.n_iterations
        reports = [
            CampaignReport.load(d / "report.json") for d in campaign_dirs
        ]
        transient = sum(
            b.transient_retries for r in reports for b in r.batches
        )
        qc_rounds = sum(b.qc_retries for r in reports for b in r.batches)
        assert transient > 0, "no injected transient fault was retried"
        assert qc_rounds > 0, "no QC re-execution was triggered"

    def test_all_samples_recovered_clean(self, serial_run):
        # The retry budgets are generous enough here that every batch
        # eventually passed QC: no sample ships flagged.
        assert all(s.qc_passed for s in serial_run.dataset)


class TestByteIdentity:
    def test_workers_two_is_byte_identical(self, serial_run, tmp_path):
        parallel_dir = tmp_path / "parallel"
        make_loop(parallel_dir, workers=2, mp_context=pool_context()).run()
        assert artifact_bytes(parallel_dir) == artifact_bytes(
            serial_run.run_dir
        )

    def test_resume_after_mid_extension_kill_is_byte_identical(
        self, serial_run, tmp_path, monkeypatch
    ):
        resume_dir = tmp_path / "resumed"
        original = CampaignRunner.run
        fired = []

        def killed_mid_extension(self, max_batches=None):
            # First time the first *extension* campaign runs, complete one
            # batch (checkpointing it) and die like a SIGINT would.
            if "campaign-0001" in str(self.store.root) and not fired:
                fired.append(True)
                original(self, max_batches=1)
                raise KeyboardInterrupt("simulated kill mid-extension")
            return original(self, max_batches)

        monkeypatch.setattr(CampaignRunner, "run", killed_mid_extension)
        with pytest.raises(KeyboardInterrupt):
            make_loop(resume_dir).run()
        monkeypatch.undo()

        # The kill left a partial extension campaign behind ...
        shards = list((resume_dir / "campaign-0001" / "shards").glob("*.json"))
        assert len(shards) == 1
        # ... and the resumed run completes it to the exact same bytes.
        make_loop(resume_dir).run()
        assert artifact_bytes(resume_dir) == artifact_bytes(serial_run.run_dir)

    def test_rerun_over_finished_dir_reproduces_bytes(self, serial_run):
        before = artifact_bytes(serial_run.run_dir)
        again = make_loop(serial_run.run_dir).run()
        assert again.report.converged
        assert artifact_bytes(serial_run.run_dir) == before


class TestProvenanceRoundTrip:
    def test_load_run_restores_surrogate_and_provenance(self, serial_run):
        loaded = load_run(serial_run.run_dir)
        assert loaded.report.to_dict() == serial_run.report.to_dict()
        assert loaded.dataset == serial_run.dataset
        assert loaded.converged
        spec = make_loop(serial_run.run_dir / "na").spec
        X = serial_run.dataset.encode(E2E_CONFIG.encoding, spec)
        np.testing.assert_array_equal(
            loaded.predictor.predict(X), serial_run.predictor.predict(X)
        )
