"""Nightly fault matrix: fleet == serial bytes across a grid of faults.

Tier-1 asserts byte-identity for a handful of curated scenarios; this
sweep crosses fault plans with fleet shapes and asserts the invariant for
every cell.  It is deselected by default (`-m "not fault_matrix"` rides in
addopts) and run by the nightly CI job with `-m fault_matrix`.
"""

from pathlib import Path

import pytest

from repro import (
    CampaignError,
    CampaignRunner,
    DeviceProfile,
    FaultPlan,
    FaultyDevice,
    FleetRunner,
    MeasurementProtocol,
    RandomSampler,
    ReferenceSet,
    SimulatedDevice,
    resnet_space,
)

pytestmark = pytest.mark.fault_matrix

QUIET = DeviceProfile(
    name="quietsim",
    peak_flops=19.0e12,
    mem_bandwidth=384e9,
    cache_bytes=6e6,
    num_compute_units=48,
    wave_quantum=2_000_000,
    launch_overhead_s=3.5e-6,
    launch_exponent=0.74,
    cache_penalty=1.2,
    jitter_cv=0.004,
    outlier_prob=0.0,
    outlier_scale=0.1,
    warmup_factor=1.5,
    warmup_iters=3,
    session_sigma=0.002,
    throttle_prob=0.0,
    throttle_factor=1.0,
)

PLANS = {
    "clean": FaultPlan(),
    "throttle": FaultPlan(throttle_prob=0.5, throttle_factor=1.25),
    "transient": FaultPlan(error_prob=0.08, timeout_prob=0.05),
    "corrupt": FaultPlan(corrupt_prob=0.08),
    "stragglers": FaultPlan(straggler_prob=0.5, straggler_factor=10.0),
    "everything": FaultPlan(
        throttle_prob=0.35,
        throttle_factor=1.25,
        error_prob=0.03,
        timeout_prob=0.02,
        corrupt_prob=0.04,
        straggler_prob=0.5,
        straggler_factor=10.0,
    ),
}

FLEETS = {
    "small": dict(sessions=2, deadline_s=2.0, breaker_cooldown_s=2.0),
    "standard": dict(sessions=4, deadline_s=2.0, breaker_cooldown_s=2.0),
    "contended": dict(
        sessions=6, deadline_s=3.0, breaker_cooldown_s=1.0, contention=0.3
    ),
}

SEEDS = (42, 7)


@pytest.fixture(scope="module")
def spec():
    return resnet_space()


@pytest.fixture(scope="module")
def sweep_configs(spec):
    return RandomSampler(spec, rng=1).sample_batch(40)


def run_one(cls, directory, configs, spec, plan, seed, **kwargs):
    device = FaultyDevice(SimulatedDevice(QUIET, seed=0), plan, seed=0)
    runner = cls(
        device,
        configs,
        directory,
        ReferenceSet.from_space(spec, k=2, rng=7),
        protocol=MeasurementProtocol(runs=25),
        batch_size=5,
        seed=seed,
        sleep=lambda s: None,
        **kwargs,
    )
    runner.run()
    return runner


@pytest.mark.parametrize("plan_name", sorted(PLANS))
@pytest.mark.parametrize("fleet_name", sorted(FLEETS))
@pytest.mark.parametrize("seed", SEEDS)
def test_fleet_bytes_match_serial(
    sweep_configs, spec, tmp_path, plan_name, fleet_name, seed
):
    plan = PLANS[plan_name]
    serial = run_one(
        CampaignRunner, tmp_path / "serial", sweep_configs, spec, plan, seed
    )
    try:
        fleet = run_one(
            FleetRunner,
            tmp_path / "fleet",
            sweep_configs,
            spec,
            plan,
            seed,
            **FLEETS[fleet_name],
        )
    except CampaignError as error:
        # A cell where every session straggled to retirement is a valid
        # outcome — but only when the plan can actually produce it, and
        # whatever was committed first must still match the serial bytes.
        assert plan.straggler_prob > 0
        assert error.health.surviving == 0
        for index in range(serial.n_batches):
            shard = Path(tmp_path / "fleet" / "shards" / f"batch-{index:04d}.json")
            if shard.exists():
                ref = tmp_path / "serial" / "shards" / f"batch-{index:04d}.json"
                assert shard.read_bytes() == ref.read_bytes()
        return
    assert fleet.complete
    for index in range(serial.n_batches):
        a = (tmp_path / "serial" / "shards" / f"batch-{index:04d}.json").read_bytes()
        b = (tmp_path / "fleet" / "shards" / f"batch-{index:04d}.json").read_bytes()
        assert a == b, (
            f"shard {index} differs (plan={plan_name}, fleet={fleet_name}, "
            f"seed={seed})"
        )
    # The ledger must balance: every batch was completed by some session.
    assert sum(s.completions for s in fleet.health.sessions) == fleet.n_batches
