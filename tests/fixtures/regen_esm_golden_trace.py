"""Regenerate ``esm_golden_trace.json`` after an intentional change.

Run from the repo root::

    PYTHONPATH=src python tests/fixtures/regen_esm_golden_trace.py

The configuration must stay identical to ``GOLDEN_CONFIG`` in
``tests/test_core_golden.py`` — the test suite asserts the committed
fixture was produced by exactly that config, so drift between the two is
caught, not silently shipped.
"""

import hashlib
import json
import tempfile
from pathlib import Path

from repro import ESMConfig, ESMLoop

GOLDEN_CONFIG = ESMConfig(
    space="resnet",
    device="rtx4090",
    acc_th=82.0,
    n_bins=5,
    initial_size=120,
    extension_size=30,
    max_iterations=6,
    runs=15,
    n_references=2,
    batch_size=25,
    seed=1,
    predictor_params={"epochs": 600},
)


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        run_dir = Path(tmp) / "run"
        result = ESMLoop(GOLDEN_CONFIG, run_dir, sleep=lambda s: None).run()
        dataset_bytes = (run_dir / "dataset.json").read_bytes()
    fixture = {
        "format_version": 1,
        "kind": "esm_golden_trace",
        "config": GOLDEN_CONFIG.to_dict(),
        "report": result.report.to_dict(),
        "dataset_sha256": hashlib.sha256(dataset_bytes).hexdigest(),
        "dataset_size": len(result.dataset),
    }
    out = Path(__file__).parent / "esm_golden_trace.json"
    out.write_text(json.dumps(fixture, indent=2, sort_keys=True) + "\n")
    print(
        f"wrote {out} (converged={result.report.converged}, "
        f"iterations={result.report.n_iterations}, "
        f"final size={len(result.dataset)})"
    )


if __name__ == "__main__":
    main()
