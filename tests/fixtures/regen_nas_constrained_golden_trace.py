"""Regenerate ``nas_constrained_golden_trace.json`` after an intentional change.

Run from the repo root::

    PYTHONPATH=src python tests/fixtures/regen_nas_constrained_golden_trace.py

Same contract as ``regen_nas_golden_trace.py``: the search parameters must
stay identical to ``GOLDEN_PARAMS`` below, which the test suite asserts
against the committed fixture.  On top of the population/front lock, this
fixture also records the constraint violations of every evaluated
candidate and the constrained-dominance rank of the final population, so
a regression in Deb's rule shows up as a rank diff — not just a changed
trajectory.
"""

import json
from pathlib import Path

from repro import (
    DeviceOracle,
    EvolutionarySearch,
    SearchConstraints,
    SimulatedDevice,
    SyntheticAccuracyProxy,
    space_by_name,
)
from repro.nas.pareto import constrained_non_dominated_rank

GOLDEN_PARAMS = {
    "space": "resnet",
    "device": "rtx4090",
    "device_seed": 0,
    "proxy_seed": 0,
    "population_size": 10,
    "generations": 4,
    "tournament_size": 2,
    "crossover_prob": 0.9,
    "p_depth": 0.25,
    "p_block": 0.2,
    "seed": 7,
    "max_latency_s": 0.0009,
    "max_params": 6.0e7,
}


def golden_constraints():
    return SearchConstraints(
        max_latency_s=GOLDEN_PARAMS["max_latency_s"],
        max_params=GOLDEN_PARAMS["max_params"],
    )


def run_golden_search():
    spec = space_by_name(GOLDEN_PARAMS["space"])
    device = SimulatedDevice(
        GOLDEN_PARAMS["device"], seed=GOLDEN_PARAMS["device_seed"]
    )
    proxy = SyntheticAccuracyProxy(spec, seed=GOLDEN_PARAMS["proxy_seed"])
    search = EvolutionarySearch(
        spec,
        DeviceOracle(device),
        proxy,
        population_size=GOLDEN_PARAMS["population_size"],
        generations=GOLDEN_PARAMS["generations"],
        tournament_size=GOLDEN_PARAMS["tournament_size"],
        crossover_prob=GOLDEN_PARAMS["crossover_prob"],
        p_depth=GOLDEN_PARAMS["p_depth"],
        p_block=GOLDEN_PARAMS["p_block"],
        seed=GOLDEN_PARAMS["seed"],
        constraints=golden_constraints(),
    )
    return search.run()


def population_ranks(result):
    """Constrained-dominance ranks of the final population, in order."""
    constraints = golden_constraints()
    points = [c.point() for c in result.population]
    violations = constraints.violations(
        [c.config for c in result.population],
        [c.latency_s for c in result.population],
    )
    return [int(r) for r in constrained_non_dominated_rank(points, violations)]


def main() -> None:
    result = run_golden_search()
    fixture = {
        "format_version": 1,
        "kind": "nas_constrained_golden_trace",
        "params": GOLDEN_PARAMS,
        "n_evaluations": result.n_evaluations,
        "n_feasible": result.feasible_evaluations,
        "population": [c.to_dict() for c in result.population],
        "violations": [float(v) for v in result.violations()],
        "population_ranks": population_ranks(result),
        "front": result.front.to_dict(),
    }
    out = Path(__file__).parent / "nas_constrained_golden_trace.json"
    out.write_text(json.dumps(fixture, indent=2, sort_keys=True) + "\n")
    print(
        f"wrote {out} (evaluations={result.n_evaluations}, "
        f"feasible={result.feasible_evaluations}, "
        f"front size={len(result.front)})"
    )


if __name__ == "__main__":
    main()
