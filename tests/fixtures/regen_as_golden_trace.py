"""Regenerate ``as_golden_trace.json`` after an intentional change.

Run from the repo root::

    PYTHONPATH=src python tests/fixtures/regen_as_golden_trace.py

The configuration must stay identical to ``AS_GOLDEN_CONFIG`` in
``tests/test_switching_golden.py`` — the test suite asserts the committed
fixture was produced by exactly that config, so drift between the two is
caught, not silently shipped.

The config is tuned so the winner genuinely changes across iterations
(gradient boosting leads on the small early datasets, the MLP takes over
as the loop grows them): ridge is deliberately left out of the zoo because
latency is near-additive in FCC counts and ridge would win every round,
which locks nothing about the switching machinery.
"""

import hashlib
import json
import tempfile
from pathlib import Path

from repro import ESMConfig, ESMLoop

AS_GOLDEN_CONFIG = ESMConfig(
    space="resnet",
    device="rtx4090",
    encoding="fcc",
    predictor="as",
    predictor_params={
        "zoo": ["cart", "rf", "gb", "mlp"],
        "zoo_params": {
            "rf": {"n_estimators": 15},
            "gb": {"n_estimators": 50},
            "mlp": {"epochs": 800},
        },
        "cv_folds": 3,
    },
    acc_th=85.0,
    n_bins=5,
    initial_size=120,
    extension_size=30,
    max_iterations=6,
    runs=15,
    n_references=2,
    batch_size=25,
    seed=1,
)


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        run_dir = Path(tmp) / "run"
        result = ESMLoop(AS_GOLDEN_CONFIG, run_dir, sleep=lambda s: None).run()
        dataset_bytes = (run_dir / "dataset.json").read_bytes()
    report = result.report
    fixture = {
        "format_version": 1,
        "kind": "as_golden_trace",
        "config": AS_GOLDEN_CONFIG.to_dict(),
        "report": report.to_dict(),
        "winners": report.predictor_models(),
        "dataset_sha256": hashlib.sha256(dataset_bytes).hexdigest(),
        "dataset_size": len(result.dataset),
    }
    out = Path(__file__).parent / "as_golden_trace.json"
    out.write_text(json.dumps(fixture, indent=2, sort_keys=True) + "\n")
    print(
        f"wrote {out} (converged={report.converged}, "
        f"iterations={report.n_iterations}, "
        f"winners={report.predictor_models()}, "
        f"final size={len(result.dataset)})"
    )


if __name__ == "__main__":
    main()
