"""Regenerate ``nas_golden_trace.json`` after an intentional change.

Run from the repo root::

    PYTHONPATH=src python tests/fixtures/regen_nas_golden_trace.py

The search parameters must stay identical to ``GOLDEN_PARAMS`` in
``tests/test_nas_golden.py`` — the test suite asserts the committed
fixture was produced by exactly those parameters, so drift between the
two is caught, not silently shipped.
"""

import json
from pathlib import Path

from repro import (
    DeviceOracle,
    EvolutionarySearch,
    SimulatedDevice,
    SyntheticAccuracyProxy,
    space_by_name,
)

GOLDEN_PARAMS = {
    "space": "resnet",
    "device": "rtx4090",
    "device_seed": 0,
    "proxy_seed": 0,
    "population_size": 10,
    "generations": 4,
    "tournament_size": 2,
    "crossover_prob": 0.9,
    "p_depth": 0.25,
    "p_block": 0.2,
    "seed": 7,
}


def run_golden_search():
    spec = space_by_name(GOLDEN_PARAMS["space"])
    device = SimulatedDevice(
        GOLDEN_PARAMS["device"], seed=GOLDEN_PARAMS["device_seed"]
    )
    proxy = SyntheticAccuracyProxy(spec, seed=GOLDEN_PARAMS["proxy_seed"])
    search = EvolutionarySearch(
        spec,
        DeviceOracle(device),
        proxy,
        population_size=GOLDEN_PARAMS["population_size"],
        generations=GOLDEN_PARAMS["generations"],
        tournament_size=GOLDEN_PARAMS["tournament_size"],
        crossover_prob=GOLDEN_PARAMS["crossover_prob"],
        p_depth=GOLDEN_PARAMS["p_depth"],
        p_block=GOLDEN_PARAMS["p_block"],
        seed=GOLDEN_PARAMS["seed"],
    )
    return search.run()


def main() -> None:
    result = run_golden_search()
    fixture = {
        "format_version": 1,
        "kind": "nas_golden_trace",
        "params": GOLDEN_PARAMS,
        "n_evaluations": result.n_evaluations,
        "population": [c.to_dict() for c in result.population],
        "front": result.front.to_dict(),
    }
    out = Path(__file__).parent / "nas_golden_trace.json"
    out.write_text(json.dumps(fixture, indent=2, sort_keys=True) + "\n")
    print(
        f"wrote {out} (evaluations={result.n_evaluations}, "
        f"front size={len(result.front)})"
    )


if __name__ == "__main__":
    main()
