"""Regenerate ``transfer_golden_trace.json`` after an intentional change.

Run from the repo root::

    PYTHONPATH=src python tests/fixtures/regen_transfer_golden_trace.py

Same contract as the other regen scripts: the parameters must stay
identical to ``GOLDEN_PARAMS`` below, which the test suite asserts
against the committed fixture (and against the experiment module's own
smoke settings, so the CI smoke step runs exactly this config).  The
fixture locks three layers of the transfer pipeline:

* the monotone map's knots on the golden pair at the golden budget —
  a PAVA regression moves a knot before it moves a headline metric,
* the per-budget transfer/scratch MAPE + Kendall-tau table, and the
  half-budget verdict the EXPERIMENTS.md claim rests on,
* the sha256 of the full 12-pair smoke report — the transfer stack is
  pure numpy end to end (CART base, count encodings, analytic
  simulator; no BLAS anywhere), so the canonical JSON bytes are
  platform-stable and lockable exactly.
"""

import hashlib
import json
from pathlib import Path

from repro.profiling.protocol import MeasurementProtocol
from repro.transfer.experiments import (
    _settings,
    fit_proxy_surrogate,
    run_experiment,
    run_pair,
)
from repro.archspace.spaces import space_by_name

GOLDEN_PARAMS = {
    "space": "resnet",
    "encoding": "fcc",
    "base": "cart",
    "proxy_device": "rtx4090",
    "target_device": "raspberrypi4",
    "seed": 0,
    "budgets": [10, 25, 50],
    "golden_budget": 25,
    "n_proxy_samples": 120,
    "n_eval": 160,
    "protocol_runs": 8,
}


def smoke_settings_match() -> bool:
    """The golden params are the experiment's smoke config, verbatim."""
    smoke = _settings(smoke=True)
    return (
        list(smoke["budgets"]) == GOLDEN_PARAMS["budgets"]
        and smoke["n_proxy_samples"] == GOLDEN_PARAMS["n_proxy_samples"]
        and smoke["n_eval"] == GOLDEN_PARAMS["n_eval"]
        and smoke["protocol_runs"] == GOLDEN_PARAMS["protocol_runs"]
    )


def run_golden_pair() -> dict:
    """The golden (proxy, target) pair with full map detail."""
    spec = space_by_name(GOLDEN_PARAMS["space"])
    protocol = MeasurementProtocol(runs=GOLDEN_PARAMS["protocol_runs"])
    proxy = fit_proxy_surrogate(
        spec,
        GOLDEN_PARAMS["encoding"],
        GOLDEN_PARAMS["proxy_device"],
        base=GOLDEN_PARAMS["base"],
        n_proxy_samples=GOLDEN_PARAMS["n_proxy_samples"],
        protocol=protocol,
        seed=GOLDEN_PARAMS["seed"],
    )
    return run_pair(
        proxy,
        GOLDEN_PARAMS["proxy_device"],
        GOLDEN_PARAMS["target_device"],
        spec=spec,
        encoding=GOLDEN_PARAMS["encoding"],
        base=GOLDEN_PARAMS["base"],
        budgets=GOLDEN_PARAMS["budgets"],
        n_eval=GOLDEN_PARAMS["n_eval"],
        protocol=protocol,
        seed=GOLDEN_PARAMS["seed"],
        detail=True,
    )


def run_smoke_report() -> dict:
    """The full 12-pair smoke report the CI step reproduces."""
    return run_experiment(
        base=GOLDEN_PARAMS["base"],
        space=GOLDEN_PARAMS["space"],
        encoding=GOLDEN_PARAMS["encoding"],
        seed=GOLDEN_PARAMS["seed"],
        smoke=True,
    )


def report_sha256(report: dict) -> str:
    """Hash of the canonical JSON string the CLI writes to disk."""
    return hashlib.sha256(
        json.dumps(report, sort_keys=True).encode()
    ).hexdigest()


def main() -> None:
    assert smoke_settings_match(), (
        "GOLDEN_PARAMS no longer matches the experiment smoke settings; "
        "update both together"
    )
    pair = run_golden_pair()
    report = run_smoke_report()
    golden = str(GOLDEN_PARAMS["golden_budget"])
    fixture = {
        "format_version": 1,
        "kind": "transfer_golden_trace",
        "params": GOLDEN_PARAMS,
        "pair": pair,
        "map_knots": pair["table"][golden]["transfer"]["map_knots"],
        "report_sha256": report_sha256(report),
        "summary": report["summary"],
    }
    out = Path(__file__).parent / "transfer_golden_trace.json"
    out.write_text(json.dumps(fixture, indent=2, sort_keys=True) + "\n")
    print(
        f"wrote {out} (match_budget={pair['match_budget']}, "
        f"knots@{golden}={len(fixture['map_knots']['x'])}, "
        f"half-budget wins={report['summary']['n_half_budget_ok']}"
        f"/{report['summary']['n_pairs']}, "
        f"sha256={fixture['report_sha256'][:12]}...)"
    )


if __name__ == "__main__":
    main()
