"""The top-level `repro` namespace exposes the full pipeline surface."""

import repro


def test_version():
    assert isinstance(repro.__version__, str)


def test_spaces_exposed():
    for name in ("resnet_space", "mobilenetv3_space", "densenet_space", "space_by_name"):
        assert callable(getattr(repro, name))


def test_simulator_exposed():
    device = repro.SimulatedDevice(repro.device_by_name("rtx4090"), seed=0)
    assert device.profile.name == "rtx4090"


def test_all_five_encodings_exposed():
    assert set(repro.list_encodings()) == {"onehot", "feature", "statistical", "fc", "fcc"}
    for name in repro.list_encodings():
        assert isinstance(repro.get_encoding(name), repro.Encoding)


def test_predictors_exposed():
    assert isinstance(repro.get_predictor("mlp"), repro.MLPPredictor)
    assert isinstance(repro.get_predictor("lut"), repro.LookupTableSurrogate)
    assert isinstance(repro.get_predictor("lut+bias"), repro.LookupTableSurrogate)


def test_metrics_exposed():
    assert repro.paper_accuracy([1.0], [1.0]) == 100.0
    assert repro.rmse([1.0], [1.0]) == 0.0
    assert callable(repro.binwise_accuracy)
    assert callable(repro.mape)
    assert callable(repro.spearman)


def test_everything_in_all_is_importable():
    for name in repro.__all__:
        assert hasattr(repro, name), name
