"""Encodings: registry, vector lengths, and the FCC/FC count invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    RandomSampler,
    SPACE_NAMES,
    get_encoding,
    list_encodings,
    space_by_name,
)

ALL_ENCODINGS = ("onehot", "feature", "statistical", "fc", "fcc")


def test_registry_lists_all_five():
    assert set(list_encodings()) == set(ALL_ENCODINGS)


def test_unknown_encoding_raises():
    with pytest.raises(KeyError):
        get_encoding("gcn")


@pytest.mark.parametrize("family", SPACE_NAMES)
@pytest.mark.parametrize("name", ALL_ENCODINGS)
def test_vector_length_matches_spec(family, name):
    spec = space_by_name(family)
    encoding = get_encoding(name)
    for config in RandomSampler(spec, rng=0).sample_batch(10):
        assert encoding.encode(config, spec).shape == (encoding.length(spec),)


def test_expected_lengths_resnet(resnet_spec):
    # U=4, D=7 depth choices, Dmax=7, K=3, E=3.
    assert get_encoding("onehot").length(resnet_spec) == 4 * (7 + 7 * 9)
    assert get_encoding("feature").length(resnet_spec) == 4 * (1 + 2 * 7)
    assert get_encoding("statistical").length(resnet_spec) == 4 * 5
    assert get_encoding("fc").length(resnet_spec) == 4 * (3 + 3)
    assert get_encoding("fcc").length(resnet_spec) == 4 * 9


def test_expected_lengths_densenet(densenet_spec):
    # U=5, K=5, no expansion dimension.
    assert get_encoding("fc").length(densenet_spec) == 5 * 5
    assert get_encoding("fcc").length(densenet_spec) == 5 * 5
    assert get_encoding("statistical").length(densenet_spec) == 5 * 5


@pytest.mark.parametrize("family", SPACE_NAMES)
def test_fcc_counts_sum_to_unit_depths(family):
    spec = space_by_name(family)
    encoding = get_encoding("fcc")
    per_unit = encoding.length(spec) // spec.num_units
    for config in RandomSampler(spec, rng=1).sample_batch(20):
        vec = encoding.encode(config, spec).reshape(spec.num_units, per_unit)
        assert tuple(int(s) for s in vec.sum(axis=1)) == config.depths


@pytest.mark.parametrize("family", SPACE_NAMES)
def test_fc_counts_sum_to_unit_depths_per_feature(family):
    spec = space_by_name(family)
    encoding = get_encoding("fc")
    n_kernel = len(spec.kernel_choices)
    per_unit = encoding.length(spec) // spec.num_units
    for config in RandomSampler(spec, rng=2).sample_batch(20):
        vec = encoding.encode(config, spec).reshape(spec.num_units, per_unit)
        kernel_sums = vec[:, :n_kernel].sum(axis=1)
        assert tuple(int(s) for s in kernel_sums) == config.depths
        if spec.expand_choices is not None:
            expand_sums = vec[:, n_kernel:].sum(axis=1)
            assert tuple(int(s) for s in expand_sums) == config.depths


def test_fcc_determines_fc(resnet_spec):
    """FC is the marginalisation of FCC: summing joint counts over one axis
    must reproduce the marginal counts exactly."""
    spec = resnet_spec
    fcc, fc = get_encoding("fcc"), get_encoding("fc")
    n_k, n_e = len(spec.kernel_choices), len(spec.expand_choices)
    for config in RandomSampler(spec, rng=3).sample_batch(20):
        joint = fcc.encode(config, spec).reshape(spec.num_units, n_k, n_e)
        marginal = fc.encode(config, spec).reshape(spec.num_units, n_k + n_e)
        np.testing.assert_array_equal(joint.sum(axis=2), marginal[:, :n_k])
        np.testing.assert_array_equal(joint.sum(axis=1), marginal[:, n_k:])


def test_onehot_is_injective(resnet_spec):
    encoding = get_encoding("onehot")
    configs = RandomSampler(resnet_spec, rng=4).sample_batch(200)
    distinct = set(configs)
    vectors = {tuple(encoding.encode(c, resnet_spec)) for c in distinct}
    assert len(vectors) == len(distinct)


def test_statistical_collides_joint_permutations(resnet_spec):
    """Re-pairing kernels and expands within a unit preserves the marginal
    summary — the information loss the paper's FCC encoding avoids."""
    spec = resnet_spec
    a = spec.make_config([2] * 4, [[3, 7]] * 4, [[0.2, 0.35]] * 4)
    b = spec.make_config([2] * 4, [[3, 7]] * 4, [[0.35, 0.2]] * 4)
    stat = get_encoding("statistical")
    np.testing.assert_allclose(stat.encode(a, spec), stat.encode(b, spec))
    fcc = get_encoding("fcc")
    assert not np.array_equal(fcc.encode(a, spec), fcc.encode(b, spec))


def test_encode_batch_stacks_rows(resnet_spec):
    encoding = get_encoding("fcc")
    configs = RandomSampler(resnet_spec, rng=5).sample_batch(7)
    X = encoding.encode_batch(configs, resnet_spec)
    assert X.shape == (7, encoding.length(resnet_spec))
    np.testing.assert_array_equal(X[3], encoding.encode(configs[3], resnet_spec))


def test_encoding_rejects_foreign_config(resnet_spec, densenet_spec):
    config = RandomSampler(densenet_spec, rng=0).sample()
    with pytest.raises(ValueError):
        get_encoding("fcc").encode(config, resnet_spec)


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_property_count_invariants(data):
    """Hypothesis: for any sampled config of any family, FCC/FC counts sum
    to the blocks per unit."""
    spec = space_by_name(data.draw(st.sampled_from(SPACE_NAMES)))
    seed = data.draw(st.integers(min_value=0, max_value=2**32 - 1))
    config = RandomSampler(spec, rng=seed).sample()
    fcc_vec = get_encoding("fcc").encode(config, spec)
    per_unit = fcc_vec.size // spec.num_units
    sums = fcc_vec.reshape(spec.num_units, per_unit).sum(axis=1)
    assert tuple(int(s) for s in sums) == config.depths
    assert int(fcc_vec.sum()) == config.total_blocks


@pytest.mark.parametrize("family", SPACE_NAMES)
@pytest.mark.parametrize("name", ALL_ENCODINGS)
def test_encode_batch_matches_loop(family, name):
    """The vectorized encode_batch must agree with the per-config loop.

    Exactly for the index-scatter encoders; to float tolerance for the
    statistical one, whose numpy reductions sum in pairwise rather than
    sequential order.
    """
    spec = space_by_name(family)
    configs = RandomSampler(spec, rng=33).sample_batch(64)
    encoding = get_encoding(name)
    loop = encoding._encode_batch_loop(configs, spec)
    vec = encoding.encode_batch(configs, spec)
    assert vec.shape == loop.shape
    assert vec.dtype == loop.dtype
    if name == "statistical":
        np.testing.assert_allclose(vec, loop, rtol=1e-12, atol=1e-14)
    else:
        np.testing.assert_array_equal(vec, loop)


@pytest.mark.parametrize("name", ALL_ENCODINGS)
def test_encode_batch_empty(name):
    spec = space_by_name("resnet")
    encoding = get_encoding(name)
    out = encoding.encode_batch([], spec)
    assert out.shape == (0, encoding.length(spec))


@pytest.mark.parametrize("name", ALL_ENCODINGS)
def test_encode_batch_rejects_foreign_config(name):
    resnet = space_by_name("resnet")
    densenet = space_by_name("densenet")
    batch = RandomSampler(resnet, rng=5).sample_batch(3)
    foreign = RandomSampler(densenet, rng=5).sample()
    encoding = get_encoding(name)
    with pytest.raises(ValueError):
        encoding.encode_batch(batch + [foreign], resnet)


class TestEncoderCache:
    """`encoder_for` shares one encoder instance per (encoding, space)."""

    def test_same_pair_returns_same_instance(self):
        from repro import clear_encoder_cache, encoder_for

        clear_encoder_cache()
        spec = space_by_name("resnet")
        first = encoder_for("fcc", spec)
        assert encoder_for("fcc", spec) is first
        # A different space or encoding gets its own instance.
        assert encoder_for("fcc", space_by_name("densenet")) is not first
        assert encoder_for("fc", spec) is not first

    def test_instance_passthrough(self):
        from repro import encoder_for

        spec = space_by_name("resnet")
        mine = get_encoding("fcc")
        assert encoder_for(mine, spec) is mine

    def test_cached_encoder_encodes_identically(self):
        from repro import clear_encoder_cache, encoder_for

        clear_encoder_cache()
        spec = space_by_name("mobilenetv3")
        batch = RandomSampler(spec, rng=3).sample_batch(8)
        fresh = get_encoding("fcc").encode_batch(batch, spec)
        for _ in range(2):  # second call exercises the cached instance
            np.testing.assert_array_equal(
                encoder_for("fcc", spec).encode_batch(batch, spec), fresh
            )

    def test_dataset_and_oracle_reuse_cached_encoder(self):
        from repro import clear_encoder_cache, encoder_for
        from repro.predictors import PredictorOracle, RidgePredictor

        clear_encoder_cache()
        spec = space_by_name("resnet")
        shared = encoder_for("fcc", spec)
        oracle = PredictorOracle(RidgePredictor(), "fcc", spec)
        assert oracle.encoding is shared
