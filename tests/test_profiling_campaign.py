"""Measurement campaigns: reference QC, fault recovery, checkpoint/resume.

The seeded scenarios use a *quiet* device profile (no natural throttling,
tiny session noise) so that every QC verdict is attributable to the
injected faults, not the simulator's own background noise model.
"""

import os
from pathlib import Path

import numpy as np
import pytest

from repro import (
    CampaignError,
    CampaignReport,
    CampaignRunner,
    DatasetError,
    DeviceProfile,
    FakeClock,
    FaultPlan,
    FaultyDevice,
    LatencyDataset,
    MeasurementProtocol,
    RandomSampler,
    ReferenceSet,
    SimulatedDevice,
    resnet_space,
)
from repro.profiling import CampaignStore

QUIET = DeviceProfile(
    name="quietsim",
    peak_flops=19.0e12,
    mem_bandwidth=384e9,
    cache_bytes=6e6,
    num_compute_units=48,
    wave_quantum=2_000_000,
    launch_overhead_s=3.5e-6,
    launch_exponent=0.74,
    cache_penalty=1.2,
    jitter_cv=0.004,
    outlier_prob=0.0,
    outlier_scale=0.1,
    warmup_factor=1.5,
    warmup_iters=3,
    session_sigma=0.002,
    throttle_prob=0.0,
    throttle_factor=1.0,
)

# With campaign seed 42 this plan corrupts batches 1 and 2 on their first
# attempt (sustained throttle sessions) and sprinkles transient faults;
# both batches recover on re-execution.
FAULT_PLAN = FaultPlan(
    throttle_prob=0.35,
    throttle_factor=1.25,
    error_prob=0.03,
    timeout_prob=0.02,
    corrupt_prob=0.04,
)

PROTOCOL = MeasurementProtocol(runs=25)


@pytest.fixture(scope="module")
def spec():
    return resnet_space()


@pytest.fixture(scope="module")
def sweep_configs(spec):
    return RandomSampler(spec, rng=1).sample_batch(20)


def make_runner(device, campaign_dir, configs, spec, seed=42, **kwargs):
    kwargs.setdefault("references", ReferenceSet.from_space(spec, k=2, rng=7))
    kwargs.setdefault("protocol", PROTOCOL)
    kwargs.setdefault("batch_size", 5)
    kwargs.setdefault("sleep", lambda s: None)
    return CampaignRunner(device, configs, campaign_dir, seed=seed, **kwargs)


def shard_bytes(campaign_dir, n_batches):
    return [
        (Path(campaign_dir) / "shards" / f"batch-{i:04d}.json").read_bytes()
        for i in range(n_batches)
    ]


class TestReferenceSet:
    def test_from_space_is_seeded(self, spec):
        a = ReferenceSet.from_space(spec, k=3, rng=0)
        b = ReferenceSet.from_space(spec, k=3, rng=0)
        assert a.configs == b.configs
        assert len(a) == 3 and not a.enrolled

    def test_enroll_then_check(self, spec):
        refs = ReferenceSet.from_space(spec, k=2, rng=0)
        refs.enroll(lambda config: 1.0)
        assert refs.enrolled and refs.baselines == [1.0, 1.0]
        ok = refs.check([1.02, 0.99], threshold=0.03)
        assert ok.passed and ok.max_drift == pytest.approx(0.02)
        bad = refs.check([1.05, 1.0], threshold=0.03)
        assert not bad.passed and bad.max_drift == pytest.approx(0.05)

    def test_check_before_enroll_raises(self, spec):
        with pytest.raises(RuntimeError):
            ReferenceSet.from_space(spec, k=1, rng=0).check([1.0], threshold=0.03)

    def test_invalid_inputs(self, spec):
        refs = ReferenceSet.from_space(spec, k=2, rng=0)
        with pytest.raises(ValueError):
            ReferenceSet([])
        with pytest.raises(ValueError):
            ReferenceSet(refs.configs, baselines=[1.0])  # length mismatch
        with pytest.raises(ValueError):
            ReferenceSet(refs.configs, baselines=[1.0, -1.0])
        refs.enroll(lambda config: 1.0)
        with pytest.raises(ValueError):
            refs.check([1.0, 1.0], threshold=0.0)
        with pytest.raises(ValueError):
            refs.check([1.0], threshold=0.03)

    def test_dict_round_trip(self, spec):
        refs = ReferenceSet.from_space(spec, k=2, rng=0)
        refs.enroll(lambda config: 0.5)
        clone = ReferenceSet.from_dict(refs.to_dict())
        assert clone.configs == refs.configs
        assert clone.baselines == refs.baselines


class TestCleanCampaign:
    @pytest.fixture(scope="class")
    def result(self, sweep_configs, spec, tmp_path_factory):
        runner = make_runner(
            SimulatedDevice(QUIET, seed=0),
            tmp_path_factory.mktemp("clean"),
            sweep_configs,
            spec,
        )
        return runner.run()

    def test_gate_does_not_fire_on_a_clean_device(self, result):
        report = result.report
        assert report.all_qc_passed
        assert report.total_qc_retries == 0
        assert report.max_drift < 0.03
        assert all(b.n_attempts == 1 for b in report.batches)

    def test_dataset_contents(self, result, sweep_configs):
        # 4 batches x (5 sweep configs + 2 references).
        assert len(result.dataset) == 28
        assert len(result.measurements) == 20
        assert [s.config for s in result.measurements] == sweep_configs
        assert all(s.qc_passed for s in result.dataset)
        assert all(s.is_reference for s in result.dataset if s.config not in sweep_configs)
        assert all(s.device == "quietsim" for s in result.dataset)
        assert all(s.true_latency_s is not None for s in result.dataset)

    def test_report_round_trips_through_json(self, result, tmp_path):
        path = tmp_path / "report.json"
        result.report.save(path)
        clone = CampaignReport.load(path)
        assert clone.to_dict() == result.report.to_dict()


class TestFaultyCampaign:
    def run_faulty(self, directory, sweep_configs, spec, device_seed=0, **kwargs):
        device = FaultyDevice(
            SimulatedDevice(QUIET, seed=0), FAULT_PLAN, seed=device_seed
        )
        return make_runner(device, directory, sweep_configs, spec, **kwargs)

    def test_gate_fires_and_recovers_under_injected_throttle(
        self, sweep_configs, spec, tmp_path
    ):
        report = self.run_faulty(tmp_path, sweep_configs, spec).run().report
        first_attempt_failures = [
            b for b in report.batches if not b.attempts[0].qc_passed
        ]
        assert len(first_attempt_failures) >= 1
        assert report.total_qc_retries >= 1
        # Every corrupted batch drifted by ~ the injected throttle factor
        # and recovered on a re-execution.
        for batch in first_attempt_failures:
            assert batch.attempts[0].max_drift > 0.03
            assert batch.qc_passed
            assert batch.attempts[-1].qc_passed
        assert report.all_qc_passed

    def test_backoff_between_qc_attempts(self, sweep_configs, spec, tmp_path):
        sleeps = []
        runner = self.run_faulty(
            tmp_path,
            sweep_configs,
            spec,
            sleep=sleeps.append,
            backoff_s=0.1,
            backoff_factor=2.0,
            backoff_jitter=0.0,
        )
        report = runner.run().report
        # One exponential backoff per failed attempt that had retries left.
        expected = []
        for batch in report.batches:
            for attempt in batch.attempts[:-1]:
                expected.append(0.1 * 2.0**attempt.attempt)
        assert sleeps == expected
        assert len(sleeps) == report.total_qc_retries >= 1

    def test_backoff_jitter_is_seeded(self, sweep_configs, spec, tmp_path):
        """The default jitter desynchronises retries but replays exactly:
        every sleep matches the per-(batch, attempt) jitter stream."""
        from repro.profiling.campaign import _JITTER_SLOT

        def jittered_run(directory):
            sleeps = []
            report = self.run_faulty(
                tmp_path / directory,
                sweep_configs,
                spec,
                sleep=sleeps.append,
                backoff_s=0.1,
                backoff_factor=2.0,
                backoff_jitter=0.25,
            ).run().report
            return sleeps, report

        sleeps, report = jittered_run("a")
        expected = []
        for batch in report.batches:
            for attempt in batch.attempts[:-1]:
                base = 0.1 * 2.0**attempt.attempt
                u = np.random.default_rng(
                    [42, _JITTER_SLOT, batch.index + 1, attempt.attempt]
                ).random()
                expected.append(base * (1.0 + 0.25 * (2.0 * u - 1.0)))
        assert sleeps == expected
        assert any(s != 0.1 * 2.0**i for i, s in enumerate(sleeps))
        # The attempt record carries the jittered value it actually slept.
        recorded = [
            a.backoff_s
            for b in report.batches
            for a in b.attempts
            if a.backoff_s > 0
        ]
        assert recorded == sleeps
        # ...and an identical campaign replays the identical schedule.
        assert jittered_run("b")[0] == sleeps

    def test_jitter_does_not_change_shard_bytes(self, sweep_configs, spec, tmp_path):
        self.run_faulty(tmp_path / "jit", sweep_configs, spec,
                        backoff_jitter=0.9).run()
        self.run_faulty(tmp_path / "nojit", sweep_configs, spec,
                        backoff_jitter=0.0).run()
        assert shard_bytes(tmp_path / "jit", 4) == shard_bytes(tmp_path / "nojit", 4)

    def test_backoff_jitter_validation(self, sweep_configs, spec, tmp_path):
        for bad in (-0.1, 1.0, 1.5):
            with pytest.raises(ValueError):
                self.run_faulty(tmp_path, sweep_configs, spec, backoff_jitter=bad)

    def test_fake_clock_absorbs_backoff_sleeps(self, sweep_configs, spec, tmp_path):
        """With an injected `FakeClock` the campaign never really sleeps —
        the clock just records the schedule and advances virtual time."""
        clock = FakeClock()
        report = self.run_faulty(
            tmp_path, sweep_configs, spec,
            sleep=None, clock=clock, backoff_s=30.0,
        ).run().report
        assert report.total_qc_retries >= 1
        assert len(clock.sleeps) == report.total_qc_retries
        assert clock.monotonic() == pytest.approx(sum(clock.sleeps))
        assert all(s >= 30.0 * (1 - 0.1) for s in clock.sleeps)

    def test_exhausted_retries_flag_but_keep_the_batch(
        self, sweep_configs, spec, tmp_path
    ):
        # Enroll baselines on the clean device, then measure everything on
        # a permanently-throttled one: every attempt fails QC.
        clean = SimulatedDevice(QUIET, seed=0)
        refs = ReferenceSet.from_space(spec, k=2, rng=7)
        refs.enroll(lambda c: clean.measure_latency(c, protocol=PROTOCOL, rng=0))
        device = FaultyDevice(
            SimulatedDevice(QUIET, seed=0),
            FaultPlan(throttle_prob=1.0, throttle_factor=1.3),
            seed=0,
        )
        configs = sweep_configs[:6]
        runner = make_runner(
            device, tmp_path, configs, spec,
            references=refs, batch_size=3, max_qc_retries=1,
        )
        result = runner.run()
        report = result.report
        assert report.n_qc_failed_batches == report.n_batches == 2
        assert all(b.n_attempts == 2 for b in report.batches)
        # Kept, never dropped — but every sample carries the flag.
        assert len(result.dataset) == 6 + 2 * 2
        assert all(not s.qc_passed for s in result.dataset)
        # The flag survives the shard round trip by construction (the
        # dataset above was read back from the shards).
        reloaded = LatencyDataset.load(Path(tmp_path) / "shards" / "batch-0000.json")
        assert all(not s.qc_passed for s in reloaded)

    def test_resume_is_byte_identical_and_matches_clean_device(
        self, sweep_configs, spec, tmp_path
    ):
        """The acceptance scenario: corruption, detection, re-execution,
        kill, resume, and a final dataset the QC gate can vouch for."""
        clean_result = make_runner(
            SimulatedDevice(QUIET, seed=0), tmp_path / "clean", sweep_configs, spec
        ).run()

        # Uninterrupted faulty campaign.
        full = self.run_faulty(tmp_path / "full", sweep_configs, spec).run()

        # Interrupted twin: killed after 2 batches...
        partial_runner = self.run_faulty(tmp_path / "twin", sweep_configs, spec)
        partial_runner.run(max_batches=2)
        assert not partial_runner.complete
        done = sorted(p.name for p in (tmp_path / "twin" / "shards").iterdir())
        assert done == ["batch-0000.json", "batch-0001.json"]

        # ...and resumed by a fresh process: new runner, new device whose
        # *own* seed differs — campaign draws come from the campaign seed.
        resumed_runner = self.run_faulty(
            tmp_path / "twin", sweep_configs, spec, device_seed=999
        )
        resumed = resumed_runner.run()
        assert resumed_runner.complete

        # Byte-identical shards, so resuming re-measured nothing new and
        # lost nothing.
        assert shard_bytes(tmp_path / "twin", 4) == shard_bytes(tmp_path / "full", 4)

        # The first two batches were inherited, not re-run.
        assert [b.resumed for b in resumed.report.batches] == [
            True, True, False, False,
        ]

        # The QC gate caught the corrupted batches and re-executed them;
        # the report remembers every retry.
        assert resumed.report.total_qc_retries >= 1
        assert any(not b.attempts[0].qc_passed for b in resumed.report.batches)
        assert resumed.report.all_qc_passed

        # Final faulty-device latencies agree with the clean device within
        # the QC threshold.
        faulty_lat = resumed.measurements.latencies
        clean_lat = clean_result.measurements.latencies
        assert np.abs(faulty_lat / clean_lat - 1.0).max() < 0.03

    def test_crash_between_shard_and_manifest_is_recovered(
        self, sweep_configs, spec, tmp_path
    ):
        runner = self.run_faulty(tmp_path, sweep_configs, spec)
        runner.run()
        before = shard_bytes(tmp_path, 4)
        # Simulate a crash window: shard 2 on disk, manifest never updated.
        store = CampaignStore(tmp_path)
        manifest = store.load_manifest()
        del manifest["batches"]["2"]
        store.save_manifest(manifest)
        resumed = self.run_faulty(tmp_path, sweep_configs, spec, device_seed=5)
        result = resumed.run()
        assert shard_bytes(tmp_path, 4) == before
        assert len(result.dataset) == 28


class TestCampaignGuards:
    def test_fingerprint_mismatch_is_refused(self, sweep_configs, spec, tmp_path):
        make_runner(
            SimulatedDevice(QUIET, seed=0), tmp_path, sweep_configs, spec
        ).run(max_batches=1)
        other = make_runner(
            SimulatedDevice(QUIET, seed=0), tmp_path, sweep_configs[:10], spec
        )
        with pytest.raises(CampaignError):
            other.run()

    def test_constructor_validation(self, sweep_configs, spec, tmp_path):
        device = SimulatedDevice(QUIET, seed=0)
        refs = ReferenceSet.from_space(spec, k=1, rng=0)
        with pytest.raises(ValueError):
            CampaignRunner(device, [], tmp_path, refs)
        with pytest.raises(ValueError):
            CampaignRunner(device, sweep_configs, tmp_path, refs, batch_size=0)
        with pytest.raises(ValueError):
            CampaignRunner(device, sweep_configs, tmp_path, refs, max_qc_retries=-1)

    def test_device_without_profile_needs_explicit_name(
        self, sweep_configs, spec, tmp_path
    ):
        class Bare:
            pass

        refs = ReferenceSet.from_space(spec, k=1, rng=0)
        with pytest.raises(ValueError):
            CampaignRunner(Bare(), sweep_configs, tmp_path, refs)

    def test_exhausted_transient_budget_raises(self, sweep_configs, spec, tmp_path):
        device = FaultyDevice(
            SimulatedDevice(QUIET, seed=0), FaultPlan(error_prob=1.0), seed=0
        )
        runner = make_runner(
            device, tmp_path, sweep_configs[:2], spec, max_transient_retries=2
        )
        with pytest.raises(CampaignError):
            runner.run()

    def test_corrupt_manifest_raises_dataset_error(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.manifest_path.write_text("{not json")
        with pytest.raises(DatasetError):
            store.load_manifest()
        store.manifest_path.write_text('{"manifest_version": 99}')
        with pytest.raises(DatasetError):
            store.load_manifest()


class TestParallelCampaign:
    """workers=N must change wall-clock strategy only, never bytes."""

    @staticmethod
    def _context():
        import multiprocessing

        methods = multiprocessing.get_all_start_methods()
        return "fork" if "fork" in methods else "spawn"

    def _run(self, campaign_dir, sweep_configs, spec, **kwargs):
        device = SimulatedDevice(QUIET, seed=0)
        runner = make_runner(device, campaign_dir, sweep_configs, spec, **kwargs)
        return runner, runner.run()

    def test_parallel_shards_byte_identical_to_sequential(
        self, sweep_configs, spec, tmp_path
    ):
        seq, seq_result = self._run(tmp_path / "seq", sweep_configs, spec)
        par, par_result = self._run(
            tmp_path / "par",
            sweep_configs,
            spec,
            workers=2,
            mp_context=self._context(),
        )
        assert seq.n_batches == par.n_batches == 4
        for index in range(seq.n_batches):
            a = seq.store.shard_path(index).read_bytes()
            b = par.store.shard_path(index).read_bytes()
            assert a == b, f"shard {index} differs between workers=1 and 2"
        assert [s.latency_s for s in seq_result.dataset] == [
            s.latency_s for s in par_result.dataset
        ]
        # The manifests agree too, modulo wall-clock timings: same
        # fingerprint, same per-batch records in the same on-disk order.
        seq_manifest = seq.store.load_manifest()
        par_manifest = par.store.load_manifest()
        assert seq_manifest["fingerprint"] == par_manifest["fingerprint"]

        def untimed(batches):
            return {
                key: {
                    **record,
                    "attempts": [
                        {k: v for k, v in attempt.items() if k != "wall_clock_s"}
                        for attempt in record["attempts"]
                    ],
                }
                for key, record in batches.items()
            }

        assert untimed(seq_manifest["batches"]) == untimed(
            par_manifest["batches"]
        )
        assert list(seq_manifest["batches"]) == list(par_manifest["batches"])

    def test_interrupted_sequential_resumes_in_parallel(
        self, sweep_configs, spec, tmp_path
    ):
        device = SimulatedDevice(QUIET, seed=0)
        make_runner(device, tmp_path / "mix", sweep_configs, spec).run(
            max_batches=2
        )
        mix, mix_result = self._run(
            tmp_path / "mix",
            sweep_configs,
            spec,
            workers=2,
            mp_context=self._context(),
        )
        seq, seq_result = self._run(tmp_path / "ref", sweep_configs, spec)
        for index in range(seq.n_batches):
            assert (
                mix.store.shard_path(index).read_bytes()
                == seq.store.shard_path(index).read_bytes()
            )

    def test_unknown_mp_context_falls_back_to_serial(
        self, sweep_configs, spec, tmp_path
    ):
        seq, seq_result = self._run(tmp_path / "seq", sweep_configs, spec)
        fb, fb_result = self._run(
            tmp_path / "fb",
            sweep_configs,
            spec,
            workers=4,
            mp_context="no-such-start-method",
        )
        for index in range(seq.n_batches):
            assert (
                fb.store.shard_path(index).read_bytes()
                == seq.store.shard_path(index).read_bytes()
            )
        # The fallback is provenance, not a silent apology.
        kinds = [d["kind"] for d in fb_result.report.degradations]
        assert kinds == ["pool_unavailable"]
        assert not seq_result.report.degradations

    def test_workers_do_not_enter_the_fingerprint(
        self, sweep_configs, spec, tmp_path
    ):
        device = SimulatedDevice(QUIET, seed=0)
        a = make_runner(device, tmp_path / "a", sweep_configs, spec)
        b = make_runner(
            device, tmp_path / "b", sweep_configs, spec, workers=8,
            mp_context="fork",
        )
        assert a.fingerprint() == b.fingerprint()

    def test_invalid_workers_rejected(self, sweep_configs, spec, tmp_path):
        device = SimulatedDevice(QUIET, seed=0)
        with pytest.raises(ValueError):
            make_runner(device, tmp_path, sweep_configs, spec, workers=0)


_PARENT_PID = os.getpid()


class WorkerKillingDevice:
    """Hard-kills any process-pool worker that tries to measure with it.

    In the parent process it delegates to a clean `SimulatedDevice`; in a
    pool worker (any other pid) the first measurement calls ``os._exit``,
    which the executor surfaces as `BrokenProcessPool` — the closest a test
    can get to a segfaulting or OOM-killed measurement worker.
    """

    def __init__(self, profile, seed=0):
        self.inner = SimulatedDevice(profile, seed=seed)
        self.profile = self.inner.profile

    def measure(self, target, runs, rng=None):
        if os.getpid() != _PARENT_PID:
            os._exit(1)
        return self.inner.measure(target, runs=runs, rng=rng)

    def true_latency(self, config):
        return self.inner.true_latency(config)


class TestBrokenPoolRecovery:
    """A pool whose workers die mid-campaign must degrade, not abort."""

    def test_dead_workers_fall_back_to_serial(self, sweep_configs, spec, tmp_path):
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable on this platform")
        reference = make_runner(
            SimulatedDevice(QUIET, seed=0), tmp_path / "ref", sweep_configs, spec
        )
        reference.run()
        runner = make_runner(
            WorkerKillingDevice(QUIET, seed=0),
            tmp_path / "pool",
            sweep_configs,
            spec,
            workers=2,
            mp_context="fork",
        )
        result = runner.run()
        # The campaign completed anyway, serially, in the parent.
        assert runner.complete
        assert len(result.dataset) == 28
        # ...byte-identical to a never-pooled run on the same device.
        assert shard_bytes(tmp_path / "pool", 4) == shard_bytes(tmp_path / "ref", 4)
        # The report (and the manifest under it) remember what happened.
        degraded = [
            d for d in result.report.degradations
            if d["kind"] == "broken_process_pool"
        ]
        assert len(degraded) == 1
        assert degraded[0]["pending"]  # the batches that fell back
        assert "BrokenProcessPool" in degraded[0]["error"]
        # Degradations survive the JSON round trip and a later resume.
        reloaded = CampaignReport.load(runner.store.report_path)
        assert reloaded.degradations == result.report.degradations
