"""ModelRegistry: keyed lookup, hot-swap versioning, watch/reload atomicity."""

import os

import numpy as np
import pytest

from repro import (
    MLPPredictor,
    ModelRegistry,
    RidgePredictor,
    ServeKey,
)

KEY = ServeKey("resnet", "raspberrypi4", "fcc")


@pytest.fixture(scope="module")
def toy():
    rng = np.random.default_rng(3)
    X = rng.integers(0, 5, size=(60, 7)).astype(float)
    y = X @ rng.uniform(0.5, 2.0, size=7) + 1.0
    return X, y


@pytest.fixture()
def ridge(toy):
    X, y = toy
    return RidgePredictor().fit(X, y)


class TestRegisterAndGet:
    def test_register_and_get(self, ridge):
        registry = ModelRegistry()
        entry = registry.register(KEY, ridge)
        assert entry.version == 1 and entry.predictor is ridge
        assert registry.get(KEY) is entry
        assert registry.get(("resnet", "raspberrypi4", "fcc")) is entry  # tuple ok
        assert KEY in registry and len(registry) == 1
        assert registry.keys() == (KEY,)

    def test_unknown_key_names_known_ones(self, ridge):
        registry = ModelRegistry()
        registry.register(KEY, ridge)
        with pytest.raises(KeyError, match="resnet/raspberrypi4/fcc"):
            registry.get(ServeKey("densenet", "rtx4090", "fc"))

    def test_unfitted_predictor_rejected(self):
        with pytest.raises(ValueError, match="unfitted"):
            ModelRegistry().register(KEY, RidgePredictor())

    def test_describe(self, ridge, toy, tmp_path):
        X, y = toy
        registry = ModelRegistry()
        registry.register(KEY, ridge)
        path = tmp_path / "m.json"
        MLPPredictor(epochs=5).fit(X, y).save(path)
        registry.load(ServeKey("densenet", "rtx4090", "fc"), path)
        rows = registry.describe()
        assert [r["key"] for r in rows] == [
            "densenet/rtx4090/fc",
            "resnet/raspberrypi4/fcc",
        ]
        assert rows[0]["kind"] == "mlp" and rows[0]["fingerprint"]
        assert rows[1]["path"] is None


class TestHotSwap:
    def test_swap_bumps_version_and_flips_pointer(self, toy, ridge):
        X, y = toy
        registry = ModelRegistry()
        registry.register(KEY, ridge)
        old = registry.get(KEY)
        replacement = RidgePredictor().fit(X, y * 2)
        entry = registry.swap(KEY, replacement)
        assert entry.version == 2 and registry.swaps == 1
        assert registry.get(KEY).predictor is replacement
        # The old entry is an immutable snapshot: holders keep a
        # consistent (predictor, version) pair across the swap.
        assert old.predictor is ridge and old.version == 1

    def test_swap_unregistered_key_rejected(self, ridge):
        with pytest.raises(KeyError, match="no model registered"):
            ModelRegistry().swap(KEY, ridge)

    def test_subscribers_run_after_flip(self, toy, ridge):
        X, y = toy
        registry = ModelRegistry()
        seen = []
        registry.subscribe(
            lambda key, entry: seen.append((key, entry.version, registry.get(key)))
        )
        registry.register(KEY, ridge)
        registry.swap(KEY, RidgePredictor().fit(X, y * 2))
        assert [(k, v) for k, v, _ in seen] == [(KEY, 1), (KEY, 2)]
        # Subscriber observed the *new* entry already installed.
        assert seen[1][2].version == 2

    def test_same_payload_swap_is_byte_identical(self, toy, tmp_path):
        """Acceptance: swapping in the same model payload changes nothing
        about the predictions, bit for bit — only the version moves."""
        X, y = toy
        path = tmp_path / "model.json"
        MLPPredictor(epochs=10).fit(X, y).save(path)

        registry = ModelRegistry()
        registry.load(KEY, path)
        before = registry.get(KEY).predictor.predict(X)

        registry.swap(KEY, type(registry.get(KEY).predictor).load(path))
        after = registry.get(KEY).predictor.predict(X)
        np.testing.assert_array_equal(before, after)
        assert after.tobytes() == before.tobytes()
        assert registry.get(KEY).version == 2


class TestWatchReload:
    def test_load_watch_poll_cycle(self, toy, tmp_path):
        X, y = toy
        path = tmp_path / "model.json"
        RidgePredictor().fit(X, y).save(path)

        registry = ModelRegistry()
        registry.load(KEY, path, watch=True)
        assert registry.watched() == {KEY: path}
        assert registry.poll() == []  # unchanged bytes: no churn

        retrained = RidgePredictor().fit(X, y * 3)
        retrained.save(path)  # atomic overwrite, like a real retrain job
        assert registry.poll() == [KEY]
        entry = registry.get(KEY)
        assert entry.version == 2
        np.testing.assert_array_equal(
            entry.predictor.predict(X), retrained.predict(X)
        )
        assert registry.poll() == []  # converged again

    def test_poll_reloads_across_kinds(self, toy, tmp_path):
        """The watch path goes through `load_predictor`: a retrain that
        switches predictor kind (mlp -> ridge) hot-swaps cleanly."""
        X, y = toy
        path = tmp_path / "model.json"
        MLPPredictor(epochs=5).fit(X, y).save(path)
        registry = ModelRegistry()
        registry.load(KEY, path, watch=True)
        RidgePredictor().fit(X, y).save(path)
        assert registry.poll() == [KEY]
        assert registry.get(KEY).predictor.KIND == "ridge"

    def test_crash_mid_save_leaves_model_live(self, toy, tmp_path, monkeypatch):
        """A trainer dying mid-save must not disturb the served model:
        the atomic-save contract leaves the old bytes in place, so the
        fingerprint matches and poll is a no-op."""
        X, y = toy
        path = tmp_path / "model.json"
        RidgePredictor().fit(X, y).save(path)
        registry = ModelRegistry()
        registry.load(KEY, path, watch=True)
        before_bytes = path.read_bytes()
        before_pred = registry.get(KEY).predictor.predict(X)

        def boom(*args, **kwargs):
            raise OSError("simulated crash during rename")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError, match="simulated crash"):
            RidgePredictor().fit(X, y * 5).save(path)
        monkeypatch.undo()

        assert path.read_bytes() == before_bytes
        assert registry.poll() == []
        entry = registry.get(KEY)
        assert entry.version == 1
        np.testing.assert_array_equal(entry.predictor.predict(X), before_pred)

    def test_poll_skips_missing_file(self, toy, tmp_path):
        X, y = toy
        path = tmp_path / "model.json"
        RidgePredictor().fit(X, y).save(path)
        registry = ModelRegistry()
        registry.load(KEY, path, watch=True)
        path.unlink()
        assert registry.poll() == []  # keeps answering from the loaded model
        assert registry.get(KEY).version == 1
