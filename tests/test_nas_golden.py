"""Golden-trace regression test for `EvolutionarySearch`.

A small seeded NSGA-II run (ResNet space, true latency from the simulated
RTX 4090, synthetic accuracy proxy) is re-executed and locked against the
committed fixture ``tests/fixtures/nas_golden_trace.json``:

* the final population — every architecture, in order, compared exactly;
  latencies and accuracies at 1e-9 relative tolerance (BLAS summation
  order may differ across CPU generations),
* the Pareto front coordinates, same tolerance,
* the fixture schema itself, like the ESM golden trace.

Regenerate after an *intentional* behaviour change with::

    PYTHONPATH=src python tests/fixtures/regen_nas_golden_trace.py
"""

import json
import sys
from pathlib import Path

import pytest

FIXTURES = Path(__file__).parent / "fixtures"
FIXTURE_PATH = FIXTURES / "nas_golden_trace.json"

sys.path.insert(0, str(FIXTURES))
from regen_nas_golden_trace import GOLDEN_PARAMS, run_golden_search  # noqa: E402

sys.path.pop(0)


@pytest.fixture(scope="module")
def fixture_raw():
    assert FIXTURE_PATH.exists(), "committed NAS golden-trace fixture missing"
    return json.loads(FIXTURE_PATH.read_text())


@pytest.fixture(scope="module")
def golden_result():
    return run_golden_search()


class TestFixtureSchema:
    """Schema lock: the fixture's shape is part of the contract."""

    def test_header(self, fixture_raw):
        assert fixture_raw["format_version"] == 1
        assert fixture_raw["kind"] == "nas_golden_trace"
        assert set(fixture_raw) == {
            "format_version",
            "kind",
            "params",
            "n_evaluations",
            "population",
            "front",
        }

    def test_params_match_the_regen_constant(self, fixture_raw):
        assert fixture_raw["params"] == GOLDEN_PARAMS

    def test_candidate_schema(self, fixture_raw):
        assert len(fixture_raw["population"]) == GOLDEN_PARAMS["population_size"]
        for entry in fixture_raw["population"]:
            assert set(entry) == {"config", "latency_s", "accuracy"}
            assert entry["config"]["family"] == GOLDEN_PARAMS["space"]
            assert entry["latency_s"] > 0
        front = fixture_raw["front"]
        assert set(front) == {"size", "points"}
        assert front["size"] == len(front["points"])


class TestGoldenTrace:
    def test_evaluation_budget(self, golden_result, fixture_raw):
        expected = GOLDEN_PARAMS["population_size"] * (
            GOLDEN_PARAMS["generations"] + 1
        )
        assert golden_result.n_evaluations == expected
        assert fixture_raw["n_evaluations"] == expected

    def test_population_matches_fixture(self, golden_result, fixture_raw):
        produced = [c.to_dict() for c in golden_result.population]
        expected = fixture_raw["population"]
        assert len(produced) == len(expected)
        for i, (got, want) in enumerate(zip(produced, expected)):
            # The discrete architecture trajectory is exact ...
            assert got["config"] == want["config"], f"population[{i}]"
            # ... objective values allow BLAS-level float drift.
            assert got["latency_s"] == pytest.approx(want["latency_s"], rel=1e-9)
            assert got["accuracy"] == pytest.approx(want["accuracy"], rel=1e-9)

    def test_front_matches_fixture(self, golden_result, fixture_raw):
        produced = golden_result.front.to_dict()
        expected = fixture_raw["front"]
        assert produced["size"] == expected["size"]
        for got, want in zip(produced["points"], expected["points"]):
            assert got == pytest.approx(want, rel=1e-9)

    def test_front_is_non_dominated_within_evaluations(self, golden_result):
        points = [c.point() for c in golden_result.evaluated]
        for p in golden_result.front:
            assert not any(q.dominates(p) for q in points)
