"""`SyntheticAccuracyProxy`: determinism, bounds, and capacity ordering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import RandomSampler, SPACE_NAMES, SyntheticAccuracyProxy, space_by_name
from repro.archspace.config import ArchConfig


class TestDeterminismAndBounds:
    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_accuracy_within_noise_padded_bounds(self, data):
        spec = space_by_name(data.draw(st.sampled_from(SPACE_NAMES)))
        seed = data.draw(st.integers(min_value=0, max_value=2**32 - 1))
        proxy = SyntheticAccuracyProxy(spec, seed=data.draw(st.integers(0, 100)))
        config = RandomSampler(spec, rng=seed).sample()
        acc = proxy.accuracy(config)
        assert proxy.floor - proxy.noise_pp <= acc <= proxy.ceiling + proxy.noise_pp

    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_same_seed_same_accuracy(self, data):
        spec = space_by_name(data.draw(st.sampled_from(SPACE_NAMES)))
        config = RandomSampler(spec, rng=data.draw(st.integers(0, 10_000))).sample()
        a = SyntheticAccuracyProxy(spec, seed=5).accuracy(config)
        b = SyntheticAccuracyProxy(spec, seed=5).accuracy(config)
        assert a == b

    def test_different_seeds_change_noise(self):
        spec = space_by_name("resnet")
        configs = RandomSampler(spec, rng=0).sample_batch(16)
        a = SyntheticAccuracyProxy(spec, seed=0).accuracy_batch(configs)
        b = SyntheticAccuracyProxy(spec, seed=1).accuracy_batch(configs)
        assert not np.allclose(a, b)
        # ... but only the bounded noise moves, never the capacity curve.
        assert np.max(np.abs(a - b)) <= 2 * SyntheticAccuracyProxy(spec).noise_pp

    def test_batch_matches_scalar(self):
        spec = space_by_name("mobilenetv3")
        proxy = SyntheticAccuracyProxy(spec, seed=3)
        configs = RandomSampler(spec, rng=3).sample_batch(8)
        batch = proxy.accuracy_batch(configs)
        assert batch.tolist() == [proxy.accuracy(c) for c in configs]


class TestCapacityOrdering:
    def test_bigger_architecture_is_more_accurate(self):
        # With noise off, the maximal config must beat the minimal one by
        # the full floor->ceiling sweep.
        for name in SPACE_NAMES:
            spec = space_by_name(name)
            proxy = SyntheticAccuracyProxy(spec, noise_pp=0.0)
            smallest = spec.make_config(
                depths=[spec.min_depth] * spec.num_units,
                kernels=[min(spec.kernel_choices)] * spec.num_units,
                expands=(
                    [min(spec.expand_choices)] * spec.num_units
                    if spec.expand_choices
                    else None
                ),
            )
            largest = spec.make_config(
                depths=[spec.max_depth] * spec.num_units,
                kernels=[max(spec.kernel_choices)] * spec.num_units,
                expands=(
                    [max(spec.expand_choices)] * spec.num_units
                    if spec.expand_choices
                    else None
                ),
            )
            lo, hi = proxy.accuracy(smallest), proxy.accuracy(largest)
            assert lo < hi
            assert hi == pytest.approx(proxy.ceiling)

    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_capacity_increases_with_depth(self, data):
        spec = space_by_name(data.draw(st.sampled_from(SPACE_NAMES)))
        proxy = SyntheticAccuracyProxy(spec, noise_pp=0.0)
        config = RandomSampler(
            spec, rng=data.draw(st.integers(0, 10_000))
        ).sample()
        # Append a copy of each unit's first block where depth allows
        # (depth choices are contiguous, so depth+1 stays in the space).
        new_units, changed = [], False
        for blocks in config.units:
            if len(blocks) < spec.max_depth:
                blocks = blocks + (blocks[0],)
                changed = True
            new_units.append(blocks)
        if not changed:
            return  # already maximal everywhere
        deeper = ArchConfig(family=config.family, units=tuple(new_units))
        assert spec.contains(deeper)
        assert proxy.capacity(deeper) > proxy.capacity(config)


class TestValidation:
    def test_out_of_space_config_rejected(self):
        resnet = space_by_name("resnet")
        mbv3 = space_by_name("mobilenetv3")
        config = RandomSampler(mbv3, rng=0).sample()
        proxy = SyntheticAccuracyProxy(resnet)
        with pytest.raises(ValueError, match="not a member"):
            proxy.accuracy(config)

    def test_bad_parameters_rejected(self):
        spec = space_by_name("resnet")
        with pytest.raises(ValueError, match="ceiling"):
            SyntheticAccuracyProxy(spec, floor=95.0, ceiling=90.0)
        with pytest.raises(ValueError, match="noise_pp"):
            SyntheticAccuracyProxy(spec, noise_pp=-0.1)
        with pytest.raises(ValueError, match="curvature"):
            SyntheticAccuracyProxy(spec, curvature=0.0)
