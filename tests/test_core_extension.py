"""Property tests for Algorithm 1's extension arithmetic and depth bins.

`extension_weights` / `extension_plan` are pure functions, so Hypothesis
can hammer their invariants directly: weights normalise, every failing
bin receives at least one sample, passing bins never appear, and a fully
passing evaluation extends nothing.  The depth-bin helpers are checked
for the round trip the loop relies on (`assign_depth_bin` inverts
`depth_bins` membership for every valid total depth).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    BalancedSampler,
    assign_depth_bin,
    densenet_space,
    depth_bins,
    extension_plan,
    extension_weights,
    failing_bins,
    resnet_space,
)

# Bin-accuracy tables: up to 12 bins, accuracies anywhere in [0, 100].
accuracy_tables = st.dictionaries(
    keys=st.integers(min_value=0, max_value=11),
    values=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    min_size=1,
    max_size=12,
)
thresholds = st.floats(min_value=0.5, max_value=100.0, allow_nan=False)
extension_sizes = st.integers(min_value=1, max_value=200)


class TestExtensionWeights:
    @given(accuracy_tables, thresholds)
    def test_weights_normalise(self, accuracies, acc_th):
        weights = extension_weights(accuracies, acc_th)
        if weights:
            assert sum(weights.values()) == pytest.approx(1.0)
            assert all(w > 0 for w in weights.values())

    @given(accuracy_tables, thresholds)
    def test_weights_cover_exactly_the_failing_bins(self, accuracies, acc_th):
        weights = extension_weights(accuracies, acc_th)
        assert sorted(weights) == failing_bins(accuracies, acc_th)

    @given(accuracy_tables, thresholds)
    def test_larger_deficit_never_gets_less_weight(self, accuracies, acc_th):
        weights = extension_weights(accuracies, acc_th)
        for a, wa in weights.items():
            for b, wb in weights.items():
                if accuracies[a] < accuracies[b]:
                    assert wa >= wb

    def test_passing_everywhere_is_empty(self):
        assert extension_weights({0: 95.0, 1: 92.0}, 90.0) == {}

    def test_empty_accuracies_rejected(self):
        with pytest.raises(ValueError):
            extension_weights({}, 90.0)


class TestExtensionPlan:
    @given(accuracy_tables, thresholds, extension_sizes)
    def test_failing_bins_always_receive_a_sample(
        self, accuracies, acc_th, extension_size
    ):
        plan = extension_plan(accuracies, acc_th, extension_size)
        failing = failing_bins(accuracies, acc_th)
        assert sorted(plan) == failing
        assert all(plan[b] >= 1 for b in failing)

    @given(accuracy_tables, thresholds, extension_sizes)
    def test_plan_total_is_exact(self, accuracies, acc_th, extension_size):
        plan = extension_plan(accuracies, acc_th, extension_size)
        failing = failing_bins(accuracies, acc_th)
        if failing:
            assert sum(plan.values()) == max(extension_size, len(failing))
        else:
            assert plan == {}

    @given(accuracy_tables, thresholds, extension_sizes)
    def test_plan_is_deterministic(self, accuracies, acc_th, extension_size):
        a = extension_plan(accuracies, acc_th, extension_size)
        b = extension_plan(dict(reversed(list(accuracies.items()))), acc_th,
                           extension_size)
        assert a == b

    def test_passing_everywhere_yields_no_extension(self):
        assert extension_plan({0: 99.0, 1: 90.0}, 90.0, 50) == {}

    def test_invalid_extension_size_rejected(self):
        with pytest.raises(ValueError):
            extension_plan({0: 50.0}, 90.0, 0)

    def test_known_apportionment(self):
        # Deficits 20 and 10 -> weights 2/3 and 1/3 over 9 spare samples
        # (after the two floors): 1+6 and 1+3.
        plan = extension_plan({0: 70.0, 1: 80.0, 2: 95.0}, 90.0, 11)
        assert plan == {0: 7, 1: 4}


@pytest.mark.parametrize("make_spec", [resnet_space, densenet_space])
class TestDepthBinRoundTrip:
    @given(data=st.data())
    @settings(max_examples=40)
    def test_assign_depth_bin_round_trips(self, make_spec, data):
        spec = make_spec()
        span = spec.max_total_depth - spec.min_total_depth + 1
        n_bins = data.draw(st.integers(min_value=1, max_value=span))
        bins = depth_bins(spec, n_bins)
        depth = data.draw(
            st.integers(spec.min_total_depth, spec.max_total_depth)
        )
        index = assign_depth_bin(depth, bins)
        lo, hi = bins[index]
        assert lo <= depth <= hi
        # Bins partition the range: exactly one bin contains the depth.
        assert [b for b, (l, h) in enumerate(bins) if l <= depth <= h] == [index]

    @given(data=st.data())
    @settings(max_examples=20, deadline=None)
    def test_sample_counts_lands_in_requested_bins(self, make_spec, data):
        spec = make_spec()
        n_bins = data.draw(st.integers(min_value=2, max_value=5))
        sampler = BalancedSampler(spec, rng=7, n_bins=n_bins)
        counts = data.draw(
            st.dictionaries(
                keys=st.integers(0, n_bins - 1),
                values=st.integers(0, 3),
                max_size=n_bins,
            )
        )
        configs = sampler.sample_counts(counts)
        assert len(configs) == sum(counts.values())
        expected = [b for b in sorted(counts) for _ in range(counts[b])]
        for config, bin_index in zip(configs, expected):
            lo, hi = sampler.bins[bin_index]
            assert lo <= config.total_blocks <= hi
            assert spec.contains(config)

    def test_negative_count_rejected(self, make_spec):
        sampler = BalancedSampler(make_spec(), rng=0, n_bins=3)
        with pytest.raises(ValueError):
            sampler.sample_counts({0: -1})
