"""Dataset layer: JSON round trips and the format_version 1 schema lock."""

import json

import numpy as np
import pytest

from repro import (
    DatasetError,
    LatencyDataset,
    LatencySample,
    RandomSampler,
    SimulatedDevice,
    resnet_space,
)


@pytest.fixture(scope="module")
def tiny_dataset():
    spec = resnet_space()
    device = SimulatedDevice("rtx4090", seed=0)
    configs = RandomSampler(spec, rng=0).sample_batch(6)
    measured, true = device.measure_batch(configs, runs=5, rng=np.random.default_rng(1))
    return LatencyDataset(
        [
            LatencySample(c, float(m), "rtx4090", float(t), is_reference=(i == 0))
            for i, (c, m, t) in enumerate(zip(configs, measured, true))
        ]
    )


class TestContainer:
    def test_len_iter_getitem(self, tiny_dataset):
        assert len(tiny_dataset) == 6
        assert len(list(tiny_dataset)) == 6
        assert isinstance(tiny_dataset[0], LatencySample)
        assert isinstance(tiny_dataset[1:3], LatencyDataset)
        assert len(tiny_dataset[1:3]) == 2

    def test_array_views(self, tiny_dataset):
        assert tiny_dataset.latencies.shape == (6,)
        assert (tiny_dataset.latencies > 0).all()
        assert tiny_dataset.total_depths.shape == (6,)

    def test_encode(self, tiny_dataset):
        X = tiny_dataset.encode("fcc", resnet_space())
        assert X.shape == (6, 36)

    def test_split_is_seeded_and_exhaustive(self, tiny_dataset):
        a_train, a_test = tiny_dataset.split(0.5, rng=3)
        b_train, b_test = tiny_dataset.split(0.5, rng=3)
        assert [s.latency_s for s in a_train] == [s.latency_s for s in b_train]
        assert len(a_train) + len(a_test) == len(tiny_dataset)
        merged = {id(s) for s in a_train.samples} | {id(s) for s in a_test.samples}
        assert len(merged) == len(tiny_dataset)

    def test_split_rejects_degenerate_fraction(self, tiny_dataset):
        with pytest.raises(ValueError):
            tiny_dataset.split(1.0)


class TestRoundTrip:
    def test_dict_round_trip_is_lossless(self, tiny_dataset):
        clone = LatencyDataset.from_dict(tiny_dataset.to_dict())
        assert clone.to_dict() == tiny_dataset.to_dict()
        assert clone[0].config == tiny_dataset[0].config
        assert clone[0].is_reference and not clone[1].is_reference

    def test_file_round_trip(self, tiny_dataset, tmp_path):
        path = tmp_path / "ds.json"
        tiny_dataset.save(path)
        clone = LatencyDataset.load(path)
        assert clone.to_dict() == tiny_dataset.to_dict()

    def test_unsupported_format_version_raises(self):
        with pytest.raises(ValueError):
            LatencyDataset.from_dict({"format_version": 2, "samples": []})
        with pytest.raises(ValueError):
            LatencyDataset.from_dict({"samples": []})

    def test_qc_flag_round_trips_and_is_omitted_when_true(self, tiny_dataset):
        sample = tiny_dataset[0]
        assert "qc_passed" not in sample.to_dict()
        flagged = LatencySample(**{**sample.__dict__, "qc_passed": False})
        assert flagged.to_dict()["qc_passed"] is False
        clone = LatencySample.from_dict(flagged.to_dict())
        assert not clone.qc_passed
        assert LatencySample.from_dict(sample.to_dict()).qc_passed


class TestAtomicSave:
    def test_save_leaves_no_temp_files(self, tiny_dataset, tmp_path):
        path = tmp_path / "ds.json"
        tiny_dataset.save(path)
        tiny_dataset.save(path)  # overwrite in place
        assert [p.name for p in tmp_path.iterdir()] == ["ds.json"]
        assert LatencyDataset.load(path).to_dict() == tiny_dataset.to_dict()

    def test_failed_serialisation_preserves_existing_file(self, tiny_dataset, tmp_path):
        from repro.utils import atomic_write_text

        path = tmp_path / "ds.json"
        tiny_dataset.save(path)
        before = path.read_bytes()

        with pytest.raises(TypeError):
            atomic_write_text(path, object())  # not writable text
        assert path.read_bytes() == before
        assert [p.name for p in tmp_path.iterdir()] == ["ds.json"]


class TestLoadErrors:
    """Every load failure mode names the file and the problem."""

    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError, match="does not exist"):
            LatencyDataset.load(tmp_path / "nope.json")

    def test_truncated_json(self, tiny_dataset, tmp_path):
        path = tmp_path / "ds.json"
        tiny_dataset.save(path)
        path.write_text(path.read_text()[:-20])
        with pytest.raises(DatasetError, match="not valid JSON"):
            LatencyDataset.load(path)

    def test_non_object_payload(self, tmp_path):
        path = tmp_path / "ds.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(DatasetError, match="expected a JSON object"):
            LatencyDataset.load(path)

    def test_schema_violation_names_file(self, tmp_path):
        path = tmp_path / "ds.json"
        path.write_text(json.dumps({"format_version": 1, "samples": [{"bad": 1}]}))
        with pytest.raises(DatasetError, match="ds.json"):
            LatencyDataset.load(path)

    def test_dataset_error_is_a_value_error(self):
        assert issubclass(DatasetError, ValueError)

    @pytest.mark.parametrize("latency", [0.0, -0.2, float("nan"), float("inf")])
    def test_nonpositive_latency_rejected(self, tiny_dataset, latency):
        d = tiny_dataset[0].to_dict()
        d["latency_s"] = latency
        with pytest.raises(DatasetError, match="latency_s"):
            LatencySample.from_dict(d)


class TestCommittedFixture:
    """Lock the schema against the committed benchmarks/_cache dataset."""

    @pytest.fixture(scope="class")
    def fixture_raw(self, densenet_fixture_path):
        return json.loads(densenet_fixture_path.read_text())

    @pytest.fixture(scope="class")
    def fixture_dataset(self, fixture_raw):
        return LatencyDataset.from_dict(fixture_raw)

    def test_loads_with_expected_size(self, fixture_dataset):
        assert len(fixture_dataset) == 7000

    def test_schema_fields(self, fixture_raw):
        assert fixture_raw["format_version"] == 1
        sample = fixture_raw["samples"][0]
        assert set(sample) == {
            "config",
            "latency_s",
            "device",
            "true_latency_s",
            "is_reference",
        }
        assert set(sample["config"]) == {"family", "units"}
        block = sample["config"]["units"][0][0]
        assert set(block) == {"kernel_size", "expand_ratio"}

    def test_densenet_semantics(self, fixture_dataset):
        from repro import densenet_space

        spec = densenet_space()
        for sample in fixture_dataset[:50]:
            assert sample.config.family == "densenet"
            assert sample.device == "rtx3080maxq"
            assert sample.latency_s > 0
            # No expansion dimension: expand_ratio is null throughout.
            assert all(b.expand_ratio is None for _, b in sample.config.iter_blocks())
            assert spec.contains(sample.config)

    def test_round_trip_preserves_fixture_exactly(self, fixture_raw, fixture_dataset):
        assert fixture_dataset.to_dict() == fixture_raw
