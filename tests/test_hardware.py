"""Simulated devices: profiles, determinism, noise model, trimmed means."""

import numpy as np
import pytest

from repro import (
    DEVICE_NAMES,
    RandomSampler,
    SimulatedDevice,
    build_network,
    device_by_name,
    resnet_space,
)


@pytest.fixture(scope="module")
def sample_config():
    return RandomSampler(resnet_space(), rng=9).sample()


class TestProfiles:
    def test_all_four_paper_devices_exist(self):
        assert set(DEVICE_NAMES) == {
            "rtx4090",
            "rtx3080maxq",
            "threadripper5975wx",
            "raspberrypi4",
        }

    def test_unknown_device_raises(self):
        with pytest.raises(KeyError):
            device_by_name("tpu")

    def test_gpu_flag(self):
        assert device_by_name("rtx4090").is_gpu
        assert not device_by_name("raspberrypi4").is_gpu


class TestTrueLatency:
    def test_positive_and_deterministic(self, sample_config):
        device = SimulatedDevice("rtx4090")
        a = device.true_latency(sample_config)
        b = device.true_latency(sample_config)
        assert a > 0
        assert a == b

    def test_accepts_prebuilt_network(self, sample_config):
        device = SimulatedDevice("rtx4090")
        net = build_network(sample_config)
        assert device.true_latency(net) == device.true_latency(sample_config)

    def test_device_speed_ordering(self, sample_config):
        latency = {
            name: SimulatedDevice(name).true_latency(sample_config)
            for name in DEVICE_NAMES
        }
        assert latency["rtx4090"] < latency["rtx3080maxq"]
        assert latency["rtx3080maxq"] < latency["threadripper5975wx"]
        assert latency["threadripper5975wx"] < latency["raspberrypi4"]


class TestMeasurement:
    def test_trace_shape_and_positivity(self, sample_config):
        trace = SimulatedDevice("rtx4090", seed=0).measure(sample_config, runs=40)
        assert trace.shape == (40,)
        assert (trace > 0).all()

    def test_seeded_determinism(self, sample_config):
        a = SimulatedDevice("rtx4090", seed=3).measure(sample_config, runs=30)
        b = SimulatedDevice("rtx4090", seed=3).measure(sample_config, runs=30)
        np.testing.assert_array_equal(a, b)

    def test_different_sessions_differ(self, sample_config):
        device = SimulatedDevice("rtx4090", seed=3)
        a = device.measure(sample_config, runs=30)
        b = device.measure(sample_config, runs=30)
        assert not np.array_equal(a, b)

    def test_warmup_transient(self, sample_config):
        trace = SimulatedDevice("rtx4090", seed=1).measure(sample_config, runs=100)
        steady = trace[10:].mean()
        assert trace[0] > 1.3 * steady

    def test_trimmed_mean_close_to_truth(self, sample_config):
        device = SimulatedDevice("rtx4090", seed=2)
        true = device.true_latency(sample_config)
        measured = device.measure_latency(sample_config, runs=150)
        assert abs(measured / true - 1.0) < 0.05

    def test_trimmed_mean_within_trace_range(self, sample_config):
        device = SimulatedDevice("raspberrypi4", seed=4)
        trace = SimulatedDevice("raspberrypi4", seed=4).measure(sample_config, runs=50)
        value = device.measure_latency(sample_config, runs=50)
        assert trace.min() <= value <= trace.max()

    def test_measure_batch_deterministic(self, sample_config):
        device = SimulatedDevice("rtx4090")
        configs = RandomSampler(resnet_space(), rng=2).sample_batch(5)
        m1, t1 = device.measure_batch(configs, runs=10, rng=np.random.default_rng(0))
        m2, t2 = device.measure_batch(configs, runs=10, rng=np.random.default_rng(0))
        np.testing.assert_array_equal(m1, m2)
        np.testing.assert_array_equal(t1, t2)
        assert (np.abs(m1 / t1 - 1.0) < 0.25).all()

    def test_invalid_runs_raises(self, sample_config):
        with pytest.raises(ValueError):
            SimulatedDevice("rtx4090").measure(sample_config, runs=0)
