"""Property-based tests for the constrained/warm-started/resumable search.

Four families of invariants, each driven by hypothesis:

* `constrained_dominates` is a strict partial order (irreflexive,
  asymmetric, transitive) for arbitrary objective vectors and violation
  totals — the precondition for NSGA-II front peeling to terminate and
  produce a unique ranking,
* a feasible candidate always beats an infeasible one, and with all-zero
  violations the constrained rank *is* the plain non-dominated rank,
* warm-start members always occupy the head of generation 0, whatever
  subset of a previous front is handed over,
* a checkpointed search killed after an arbitrary number of steps and
  resumed by a fresh driver instance produces byte-identical
  `SearchResult` JSON to the uninterrupted run.

Search-driver properties run tiny searches (population 6 or budget ~12)
against the simulated device, so example counts are kept deliberately
small; the pure-function dominance properties afford hundreds.
"""

import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    DeviceOracle,
    EvolutionarySearch,
    RandomSearch,
    SearchConstraints,
    SimulatedDevice,
    SyntheticAccuracyProxy,
    space_by_name,
)
from repro.archspace import RandomSampler
from repro.nas.pareto import (
    ParetoPoint,
    constrained_dominates,
    constrained_non_dominated_rank,
    non_dominated_rank,
)

# --------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------- #

finite = st.floats(
    min_value=0.0, max_value=10.0, allow_nan=False, allow_infinity=False
)
# Violation totals: mostly feasible (exactly 0.0) with a band of strictly
# positive excesses, which is what a budget boundary actually produces.
violation = st.one_of(st.just(0.0), st.floats(min_value=1e-6, max_value=5.0))

scored_points = st.lists(
    st.tuples(finite, finite, violation), min_size=1, max_size=12
).map(
    lambda rows: (
        [ParetoPoint(lat, acc) for lat, acc, _ in rows],
        np.array([v for _, _, v in rows]),
    )
)


# --------------------------------------------------------------------- #
# Constrained dominance is a strict partial order
# --------------------------------------------------------------------- #


class TestConstrainedDominanceOrder:
    @given(scored_points)
    @settings(max_examples=200, deadline=None)
    def test_irreflexive(self, scored):
        points, v = scored
        for p, vp in zip(points, v):
            assert not constrained_dominates(p, p, vp, vp)

    @given(scored_points)
    @settings(max_examples=200, deadline=None)
    def test_asymmetric(self, scored):
        points, v = scored
        for i, (p, vp) in enumerate(zip(points, v)):
            for q, vq in zip(points[i + 1 :], v[i + 1 :]):
                assert not (
                    constrained_dominates(p, q, vp, vq)
                    and constrained_dominates(q, p, vq, vp)
                )

    @given(scored_points)
    @settings(max_examples=100, deadline=None)
    def test_transitive(self, scored):
        points, v = scored
        n = len(points)
        dom = [
            [
                constrained_dominates(points[i], points[j], v[i], v[j])
                for j in range(n)
            ]
            for i in range(n)
        ]
        for i in range(n):
            for j in range(n):
                if not dom[i][j]:
                    continue
                for k in range(n):
                    if dom[j][k]:
                        assert dom[i][k], (i, j, k)

    @given(scored_points)
    @settings(max_examples=100, deadline=None)
    def test_feasible_always_beats_infeasible(self, scored):
        points, v = scored
        for p, vp in zip(points, v):
            for q, vq in zip(points, v):
                if vp == 0.0 and vq > 0.0:
                    assert constrained_dominates(p, q, vp, vq)
                    assert not constrained_dominates(q, p, vq, vp)

    @given(scored_points)
    @settings(max_examples=100, deadline=None)
    def test_reduces_to_plain_dominance_when_feasible(self, scored):
        points, _ = scored
        zeros = np.zeros(len(points))
        for p, vp in zip(points, zeros):
            for q, vq in zip(points, zeros):
                assert constrained_dominates(p, q, vp, vq) == p.dominates(q)


class TestConstrainedRank:
    @given(scored_points)
    @settings(max_examples=100, deadline=None)
    def test_all_zero_violations_reduce_to_plain_rank(self, scored):
        points, v = scored
        plain = non_dominated_rank(points)
        assert np.array_equal(
            constrained_non_dominated_rank(points, np.zeros_like(v)), plain
        )
        assert np.array_equal(
            constrained_non_dominated_rank(points, None), plain
        )

    @given(scored_points)
    @settings(max_examples=100, deadline=None)
    def test_rank_zero_is_undominated_and_complete(self, scored):
        points, v = scored
        ranks = constrained_non_dominated_rank(points, v)
        assert (ranks >= 0).all()
        n = len(points)
        for i in range(n):
            dominated = any(
                constrained_dominates(points[j], points[i], v[j], v[i])
                for j in range(n)
            )
            if ranks[i] == 0:
                assert not dominated
            else:
                # A non-zero rank means someone in an earlier front wins.
                assert any(
                    ranks[j] < ranks[i]
                    and constrained_dominates(points[j], points[i], v[j], v[i])
                    for j in range(n)
                )

    @given(scored_points)
    @settings(max_examples=100, deadline=None)
    def test_feasible_points_rank_ahead_of_infeasible(self, scored):
        points, v = scored
        if not (v == 0.0).any() or not (v > 0.0).any():
            return
        ranks = constrained_non_dominated_rank(points, v)
        worst_feasible = max(r for r, vi in zip(ranks, v) if vi == 0.0)
        best_infeasible = min(r for r, vi in zip(ranks, v) if vi > 0.0)
        assert worst_feasible < best_infeasible


# --------------------------------------------------------------------- #
# Search-driver properties (tiny searches, few examples)
# --------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def harness():
    spec = space_by_name("resnet")
    device = SimulatedDevice("rtx4090", seed=0)
    return spec, DeviceOracle(device), SyntheticAccuracyProxy(spec, seed=0)


class TestWarmStartProperty:
    @given(seed=st.integers(0, 2**16), n_warm=st.integers(1, 6))
    @settings(max_examples=10, deadline=None)
    def test_warm_members_lead_generation_zero(self, harness, seed, n_warm):
        spec, oracle, proxy = harness
        warm = RandomSampler(spec, rng=seed + 1).sample_batch(n_warm)
        search = EvolutionarySearch(
            spec,
            oracle,
            proxy,
            population_size=6,
            generations=1,
            seed=seed,
            warm_start=warm,
        )
        result = search.run()
        expected = warm[: search.population_size]
        head = [c.config for c in result.evaluated[: len(expected)]]
        assert head == expected

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=5, deadline=None)
    def test_front_warm_start_round_trip(self, harness, seed):
        """A previous result's front seeds the next search verbatim."""
        spec, oracle, proxy = harness
        first = RandomSearch(
            spec, oracle, proxy, budget=8, seed=seed
        ).run()
        second = EvolutionarySearch(
            spec,
            oracle,
            proxy,
            population_size=6,
            generations=1,
            seed=seed,
            warm_start=first,
        )
        result = second.run()
        expected = first.front_configs[: second.population_size]
        head = [c.config for c in result.evaluated[: len(expected)]]
        assert head == expected


class TestResumeProperty:
    @given(seed=st.integers(0, 2**16), kill_after=st.integers(0, 3))
    @settings(max_examples=6, deadline=None)
    def test_evolutionary_kill_anywhere_resume_identical(
        self, harness, seed, kill_after
    ):
        spec, oracle, proxy = harness
        params = dict(population_size=6, generations=3, seed=seed)
        baseline = EvolutionarySearch(spec, oracle, proxy, **params).run()
        with tempfile.TemporaryDirectory() as tmp:
            ckpt = Path(tmp) / "ckpt"
            EvolutionarySearch(
                spec, oracle, proxy, checkpoint_dir=ckpt, **params
            ).run(max_generations=kill_after)
            resumed = EvolutionarySearch(
                spec, oracle, proxy, checkpoint_dir=ckpt, **params
            ).run()
        assert resumed.to_json() == baseline.to_json()

    @given(seed=st.integers(0, 2**16), kill_after=st.integers(0, 4))
    @settings(max_examples=6, deadline=None)
    def test_random_kill_anywhere_resume_identical(
        self, harness, seed, kill_after
    ):
        spec, oracle, proxy = harness
        cons = SearchConstraints(max_latency_s=0.0009)
        params = dict(budget=12, seed=seed, constraints=cons)
        baseline = RandomSearch(spec, oracle, proxy, **params).run()
        with tempfile.TemporaryDirectory() as tmp:
            ckpt = Path(tmp) / "ckpt"
            RandomSearch(
                spec,
                oracle,
                proxy,
                checkpoint_dir=ckpt,
                checkpoint_every=3,
                **params,
            ).run(max_chunks=kill_after)
            resumed = RandomSearch(
                spec,
                oracle,
                proxy,
                checkpoint_dir=ckpt,
                checkpoint_every=3,
                **params,
            ).run()
        assert resumed.to_json() == baseline.to_json()
