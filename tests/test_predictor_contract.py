"""The predictor contract, enforced over every registered implementation.

One parametrized suite runs the whole zoo — MLP, both LUT variants, ridge,
CART, random forest, gradient boosting, the adaptive switcher, and the
cross-device transfer wrapper — against the exact protocol `ESMLoop`,
`PredictorOracle`, and run provenance rely on:

* ``fit`` returns ``self``; ``predict`` yields a float64 1-D array, one
  finite value per row, and ``predict_one`` agrees with it,
* seeded determinism: refits of identically-constructed predictors are
  bit-identical; different seeds genuinely differ where stochastic,
* ``save`` -> ``load`` -> ``predict`` round-trips bit for bit, both via
  the concrete class and via the kind-dispatching `load_predictor`,
* predict/save before fit are refused,
* ``get_params`` round-trips through JSON *and* through the constructor,
* saves are atomic: a crash mid-save leaves the previous file untouched
  and no temp litter behind.

Adding a predictor to the registry without passing this suite is a bug by
definition; new zoo members only need an entry in ``CONTRACT_PREDICTORS``.
"""

import json
import os

import numpy as np
import pytest

from repro import Predictor, get_predictor, load_predictor

# Registry name -> fast constructor kwargs.  Every entry must stay cheap:
# the whole suite runs each of these dozens of times.
_FAST_AS_ZOO = {
    "zoo": ["ridge", "cart", "rf"],
    "zoo_params": {"rf": {"n_estimators": 8}},
    "cv_folds": 3,
}
CONTRACT_PREDICTORS = {
    "mlp": {"epochs": 40},
    "lut": {},
    "lut+bias": {},
    "ridge": {},
    "cart": {},
    "rf": {"n_estimators": 10},
    "gb": {"n_estimators": 30},
    "as": _FAST_AS_ZOO,
    # Self-calibration mode: fits the ridge base on the data, then the
    # monotone map on its own predictions.  The frozen-proxy mode gets
    # its own dedicated suite in test_transfer_predictor.py.
    "transfer": {"base": "ridge"},
}

# Members whose fit consumes randomness; the rest are exact solvers where
# "different seed" is *allowed* to coincide.
STOCHASTIC = ("mlp", "rf")


@pytest.fixture(params=sorted(CONTRACT_PREDICTORS), ids=str)
def name(request):
    return request.param


def make(name, **overrides):
    return get_predictor(name, **{**CONTRACT_PREDICTORS[name], **overrides})


@pytest.fixture(scope="module")
def toy():
    """Latency-shaped toy data: positive targets, count-style features."""
    rng = np.random.default_rng(7)
    X = rng.integers(0, 5, size=(90, 8)).astype(float)
    w = rng.uniform(0.5, 2.0, size=8)
    y = X @ w + 0.2 * X.sum(axis=1) ** 1.3 + rng.normal(0, 0.1, 90) + 3.0
    return X, y


class TestFitPredict:
    def test_fit_returns_self(self, name, toy):
        X, y = toy
        predictor = make(name)
        assert predictor.fit(X, y) is predictor

    def test_predict_shape_and_dtype(self, name, toy):
        X, y = toy
        pred = make(name).fit(X, y).predict(X[:17])
        assert isinstance(pred, np.ndarray)
        assert pred.shape == (17,)
        assert pred.dtype == np.float64
        assert np.isfinite(pred).all()

    def test_predict_one_matches_batch(self, name, toy):
        X, y = toy
        predictor = make(name).fit(X, y)
        assert predictor.predict_one(X[3]) == pytest.approx(
            float(predictor.predict(X[3:4])[0])
        )

    def test_satisfies_protocol(self, name):
        assert isinstance(make(name), Predictor)

    def test_malformed_inputs_rejected(self, name, toy):
        X, y = toy
        with pytest.raises(ValueError):
            make(name).fit(X, y[:-1])  # length mismatch
        with pytest.raises(ValueError):
            make(name).fit(X[0], y[:1])  # 1-D design matrix

    def test_empty_batch_predicts_empty(self, name, toy):
        """A 0-row batch (a micro-batcher flushing nothing) must not crash."""
        X, y = toy
        pred = make(name).fit(X, y).predict(np.empty((0, X.shape[1])))
        assert isinstance(pred, np.ndarray)
        assert pred.shape == (0,)
        assert pred.dtype == np.float64

    def test_wrong_feature_width_rejected(self, name, toy):
        X, y = toy
        predictor = make(name).fit(X, y)
        assert predictor.n_features_in_ == X.shape[1]
        with pytest.raises(ValueError, match="features"):
            predictor.predict(np.zeros((3, X.shape[1] + 2)))
        with pytest.raises(ValueError, match="features"):
            predictor.predict(np.zeros((3, X.shape[1] - 1)))
        with pytest.raises(ValueError, match="2-D"):
            predictor.predict(np.zeros(X.shape[1]))  # 1-D row, not a batch


class TestUnfitRejection:
    def test_predict_before_fit_raises(self, name):
        with pytest.raises(RuntimeError, match="not fitted"):
            make(name).predict(np.zeros((2, 8)))

    def test_save_before_fit_raises(self, name, tmp_path):
        with pytest.raises(RuntimeError, match="unfitted"):
            make(name).save(tmp_path / "p.json")


class TestSeededDeterminism:
    def test_identical_construction_is_bit_identical(self, name, toy):
        X, y = toy
        a = make(name).fit(X, y).predict(X)
        b = make(name).fit(X, y).predict(X)
        np.testing.assert_array_equal(a, b)

    def test_refit_of_same_instance_is_bit_identical(self, name, toy):
        X, y = toy
        predictor = make(name)
        a = predictor.fit(X, y).predict(X)
        b = predictor.fit(X, y).predict(X)
        np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize("stochastic", STOCHASTIC)
    def test_different_seeds_differ(self, stochastic, toy):
        X, y = toy
        a = make(stochastic, seed=1).fit(X, y).predict(X)
        b = make(stochastic, seed=2).fit(X, y).predict(X)
        assert not np.array_equal(a, b)


class TestPersistence:
    def test_save_load_predict_bit_identical(self, name, toy, tmp_path):
        X, y = toy
        predictor = make(name).fit(X, y)
        path = tmp_path / "predictor.json"
        predictor.save(path)
        clone = type(predictor).load(path)
        np.testing.assert_array_equal(clone.predict(X), predictor.predict(X))
        # Fresh inputs too, not just the training matrix.
        X_new = np.random.default_rng(11).integers(0, 5, size=(25, 8)).astype(float)
        np.testing.assert_array_equal(
            clone.predict(X_new), predictor.predict(X_new)
        )

    def test_load_predictor_dispatches_on_kind(self, name, toy, tmp_path):
        X, y = toy
        predictor = make(name).fit(X, y)
        path = tmp_path / "predictor.json"
        predictor.save(path)
        clone = load_predictor(path)
        assert type(clone) is type(predictor)
        np.testing.assert_array_equal(clone.predict(X), predictor.predict(X))

    def test_save_twice_is_deterministic(self, name, toy, tmp_path):
        X, y = toy
        predictor = make(name).fit(X, y)
        predictor.save(tmp_path / "a.json")
        predictor.save(tmp_path / "b.json")
        assert (tmp_path / "a.json").read_bytes() == (
            tmp_path / "b.json"
        ).read_bytes()

    def test_loaded_params_match(self, name, toy, tmp_path):
        X, y = toy
        predictor = make(name).fit(X, y)
        predictor.save(tmp_path / "p.json")
        assert load_predictor(tmp_path / "p.json").get_params() == (
            predictor.get_params()
        )

    def test_wrong_kind_rejected(self, name, toy, tmp_path):
        X, y = toy
        predictor = make(name).fit(X, y)
        path = tmp_path / "p.json"
        predictor.save(path)
        payload = json.loads(path.read_text())
        payload["kind"] = "definitely-not-a-predictor"
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="kind"):
            load_predictor(path)


class TestAtomicSave:
    """A crash mid-save must leave the previous file bytes untouched."""

    def test_crash_mid_save_preserves_previous_file(
        self, name, toy, tmp_path, monkeypatch
    ):
        X, y = toy
        path = tmp_path / "predictor.json"
        make(name).fit(X, y).save(path)
        before = path.read_bytes()

        # Refit changes the bytes a save would write; crash the swap.
        predictor = make(name).fit(X[:60], y[:60])

        def boom(*args, **kwargs):
            raise OSError("simulated crash during rename")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError, match="simulated crash"):
            predictor.save(path)
        assert path.read_bytes() == before
        assert list(tmp_path.glob("*.tmp")) == [], "temp litter left behind"


class TestParamsJsonRoundTrip:
    def test_params_survive_json(self, name):
        predictor = make(name)
        params = predictor.get_params()
        decoded = json.loads(json.dumps(params))
        assert decoded == params

    def test_constructor_round_trip(self, name):
        predictor = make(name)
        rebuilt = type(predictor)(**json.loads(json.dumps(predictor.get_params())))
        assert rebuilt.get_params() == predictor.get_params()

    def test_fit_does_not_mutate_params(self, name, toy):
        X, y = toy
        predictor = make(name)
        before = json.dumps(predictor.get_params(), sort_keys=True)
        predictor.fit(X, y)
        assert json.dumps(predictor.get_params(), sort_keys=True) == before


class TestFitDataset:
    def test_fit_dataset_equals_manual_encode(
        self, name, small_resnet_dataset, resnet_spec
    ):
        dataset = small_resnet_dataset[:60]
        direct = make(name).fit(
            dataset.encode("fcc", resnet_spec), dataset.latencies
        )
        via_dataset = make(name).fit_dataset(dataset, "fcc", resnet_spec)
        X = dataset.encode("fcc", resnet_spec)
        np.testing.assert_array_equal(
            via_dataset.predict(X), direct.predict(X)
        )
