"""`ParetoFront` and displacement metrics: properties and known values.

The hypothesis suite locks the front's defining invariants (satellite of
the NAS PR): no returned point is dominated by any input point, the front
is invariant under permutation and duplication of its inputs, and the
hypervolume is monotone under adding a dominating point.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ParetoFront, ParetoPoint, displacement_metrics
from repro.nas.pareto import crowding_distance, non_dominated_rank

# Latencies/accuracies drawn from a coarse grid so dominance ties and
# duplicates actually occur instead of being measure-zero events.
coords = st.tuples(
    st.integers(min_value=1, max_value=8).map(lambda v: v / 4.0),
    st.integers(min_value=80, max_value=96).map(float),
)
point_lists = st.lists(coords, min_size=1, max_size=30).map(
    lambda pairs: [ParetoPoint(lat, acc) for lat, acc in pairs]
)


class TestFrontProperties:
    @settings(max_examples=100, deadline=None)
    @given(points=point_lists)
    def test_no_front_point_dominated_by_any_input(self, points):
        front = ParetoFront.from_points(points)
        assert len(front) >= 1
        for p in front:
            assert not any(q.dominates(p) for q in points)

    @settings(max_examples=100, deadline=None)
    @given(points=point_lists, data=st.data())
    def test_invariant_under_permutation_and_duplicates(self, points, data):
        front = ParetoFront.from_points(points)
        shuffled = data.draw(st.permutations(points))
        duplicated = shuffled + data.draw(
            st.lists(st.sampled_from(points), max_size=10)
        )
        assert ParetoFront.from_points(duplicated) == front

    @settings(max_examples=100, deadline=None)
    @given(points=point_lists, data=st.data())
    def test_hypervolume_monotone_under_dominating_point(self, points, data):
        target = data.draw(st.sampled_from(points))
        dominating = ParetoPoint(target.latency_s / 2.0, target.accuracy + 1.0)
        ref_latency, ref_accuracy = 4.0, 60.0  # worse than any drawn point
        before = ParetoFront.from_points(points).hypervolume(
            ref_latency, ref_accuracy
        )
        after = ParetoFront.from_points(points + [dominating]).hypervolume(
            ref_latency, ref_accuracy
        )
        assert after >= before - 1e-12

    @settings(max_examples=50, deadline=None)
    @given(points=point_lists)
    def test_front_points_are_mutually_non_dominating(self, points):
        front = ParetoFront.from_points(points)
        for p in front:
            assert not any(q.dominates(p) for q in front)


class TestFrontBasics:
    def test_single_point_front(self):
        front = ParetoFront.from_points([ParetoPoint(1.0, 90.0)])
        assert len(front) == 1
        assert front.to_dict() == {"size": 1, "points": [[1.0, 90.0]]}

    def test_dominated_points_removed_and_sorted(self):
        points = [
            ParetoPoint(2.0, 91.0),
            ParetoPoint(1.0, 90.0),
            ParetoPoint(1.5, 89.0),  # dominated by (1.0, 90.0)
        ]
        front = ParetoFront.from_points(points)
        assert [(p.latency_s, p.accuracy) for p in front] == [
            (1.0, 90.0),
            (2.0, 91.0),
        ]

    def test_hypervolume_known_value(self):
        # Two steps against ref (4, 80): (1,90) covers 10x3, (2,92) adds 2x2.
        front = ParetoFront.from_points(
            [ParetoPoint(1.0, 90.0), ParetoPoint(2.0, 92.0)]
        )
        assert front.hypervolume(4.0, 80.0) == pytest.approx(34.0)

    def test_hypervolume_empty_front_is_zero(self):
        assert ParetoFront([]).hypervolume(1.0, 0.0) == 0.0

    def test_tight_reference_clips_at_zero(self):
        front = ParetoFront.from_points([ParetoPoint(2.0, 90.0)])
        assert front.hypervolume(1.0, 95.0) == 0.0


class TestRankAndCrowding:
    def test_ranks_peel_fronts(self):
        points = [
            ParetoPoint(1.0, 90.0),  # front 0
            ParetoPoint(2.0, 92.0),  # front 0
            ParetoPoint(2.0, 91.0),  # behind front 0 -> front 1
            ParetoPoint(3.0, 90.0),  # also behind (2.0, 91.0) -> front 2
        ]
        assert non_dominated_rank(points).tolist() == [0, 0, 1, 2]

    def test_crowding_boundaries_are_infinite(self):
        points = [
            ParetoPoint(1.0, 90.0),
            ParetoPoint(2.0, 92.0),
            ParetoPoint(3.0, 93.0),
        ]
        d = crowding_distance(points)
        assert np.isinf(d[0]) and np.isinf(d[2])
        assert np.isfinite(d[1]) and d[1] > 0

    def test_crowding_empty(self):
        assert crowding_distance([]).size == 0


class TestDisplacementMetrics:
    def test_identical_fronts_have_zero_displacement(self):
        front = ParetoFront.from_points(
            [ParetoPoint(1.0, 90.0), ParetoPoint(2.0, 93.0)]
        )
        metrics = displacement_metrics(front, front)
        assert metrics["gd"] == 0.0
        assert metrics["igd"] == 0.0
        assert metrics["displacement"] == 0.0
        assert metrics["jaccard"] == 1.0
        assert metrics["hypervolume_deficit"] == 0.0

    def test_displaced_front_scores_worse(self):
        true = ParetoFront.from_points(
            [ParetoPoint(1.0, 90.0), ParetoPoint(2.0, 93.0)]
        )
        near = ParetoFront.from_points(
            [ParetoPoint(1.1, 90.0), ParetoPoint(2.0, 92.8)]
        )
        far = ParetoFront.from_points([ParetoPoint(3.0, 89.0)])
        d_near = displacement_metrics(true, near)
        d_far = displacement_metrics(true, far)
        assert 0.0 < d_near["displacement"] < d_far["displacement"]
        assert d_far["hypervolume_deficit"] > d_near["hypervolume_deficit"]

    def test_empty_front_rejected(self):
        front = ParetoFront.from_points([ParetoPoint(1.0, 90.0)])
        with pytest.raises(ValueError, match="non-empty"):
            displacement_metrics(front, ParetoFront([]))

    def test_degenerate_single_point_fronts(self):
        a = ParetoFront.from_points([ParetoPoint(1.0, 90.0)])
        b = ParetoFront.from_points([ParetoPoint(1.5, 90.0)])
        metrics = displacement_metrics(a, b)
        assert np.isfinite(metrics["displacement"])
        assert metrics["jaccard"] == 0.0


class TestHypervolumeEdgeCases:
    """Regression lock for the single-point and degenerate references."""

    def test_single_point_is_one_rectangle(self):
        front = ParetoFront.from_points([ParetoPoint(1.0, 90.0)])
        assert front.hypervolume(3.0, 80.0) == pytest.approx(20.0)

    def test_single_point_on_the_reference_is_zero(self):
        front = ParetoFront.from_points([ParetoPoint(2.0, 85.0)])
        assert front.hypervolume(2.0, 85.0) == 0.0

    def test_duplicate_objective_points_add_no_volume(self):
        once = ParetoFront([ParetoPoint(1.0, 90.0)])
        twice = ParetoFront([ParetoPoint(1.0, 90.0), ParetoPoint(1.0, 90.0)])
        ref = (4.0, 80.0)
        assert twice.hypervolume(*ref) == pytest.approx(once.hypervolume(*ref))


class TestCrowdingDuplicateCollapse:
    def test_default_keeps_historic_behaviour(self):
        points = [
            ParetoPoint(1.0, 90.0),
            ParetoPoint(1.0, 90.0),
            ParetoPoint(2.0, 95.0),
        ]
        d = crowding_distance(points)
        # The clone's gap is computed against its own duplicate, handing
        # it a non-zero distance: the historic wart the opt-in flag fixes.
        assert np.isinf(d[0]) and np.isinf(d[2])
        assert d[1] > 0.0

    def test_collapse_zeroes_every_clone_after_the_first(self):
        points = [
            ParetoPoint(1.0, 90.0),
            ParetoPoint(1.0, 90.0),
            ParetoPoint(2.0, 95.0),
            ParetoPoint(1.0, 90.0),
        ]
        d = crowding_distance(points, collapse_duplicates=True)
        assert np.isinf(d[0])
        assert d[1] == 0.0 and d[3] == 0.0
        assert np.isinf(d[2])

    def test_collapse_is_noop_without_duplicates(self):
        points = [
            ParetoPoint(1.0, 90.0),
            ParetoPoint(2.0, 93.0),
            ParetoPoint(3.0, 95.0),
        ]
        plain = crowding_distance(points)
        collapsed = crowding_distance(points, collapse_duplicates=True)
        assert np.array_equal(plain, collapsed)


class TestFrontSerialisation:
    def test_round_trip_without_configs(self):
        front = ParetoFront.from_points(
            [ParetoPoint(1.0, 90.0), ParetoPoint(2.0, 95.0)]
        )
        rebuilt = ParetoFront.from_dict(front.to_dict())
        assert rebuilt == front

    def test_default_shape_is_the_locked_two_key_form(self):
        front = ParetoFront.from_points([ParetoPoint(1.0, 90.0)])
        assert set(front.to_dict()) == {"size", "points"}

    def test_round_trip_with_configs(self):
        from repro.archspace import RandomSampler
        from repro import space_by_name

        spec = space_by_name("resnet")
        configs = RandomSampler(spec, rng=0).sample_batch(2)
        front = ParetoFront.from_points(
            [
                ParetoPoint(1.0, 90.0, configs[0]),
                ParetoPoint(2.0, 95.0, configs[1]),
            ]
        )
        payload = front.to_dict(include_configs=True)
        assert set(payload) == {"size", "points", "configs"}
        rebuilt = ParetoFront.from_dict(payload)
        assert rebuilt == front
        assert [p.config for p in rebuilt] == configs

    def test_misaligned_configs_rejected(self):
        with pytest.raises(ValueError, match="misaligned"):
            ParetoFront.from_dict(
                {"size": 2, "points": [[1.0, 90.0], [2.0, 95.0]], "configs": [None]}
            )
