"""Adaptive switching: k-fold invariants, winner selection, delegation.

The hypothesis suites pin down the two pure functions the switcher is
built from — `kfold_indices` (validation folds partition the index set,
disjointly, seed-stably) and `select_winner` (argmin of CV losses with
deterministic tie-breaking) — and the unit tests check the
`AdaptiveSwitchingPredictor` wiring on real data: the fitted delegate is
the recorded winner, rigged zoos pick the obviously-right member, and the
nested save/load round-trips.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    AdaptiveSwitchingPredictor,
    RidgePredictor,
    kfold_indices,
    select_winner,
)

# ---------------------------------------------------------------------- #
# kfold_indices properties
# ---------------------------------------------------------------------- #

nk_seed = st.integers(2, 120).flatmap(
    lambda n: st.tuples(
        st.just(n), st.integers(2, n), st.integers(0, 2**32 - 1)
    )
)


class TestKFoldProperties:
    @given(nk_seed)
    @settings(max_examples=60, deadline=None)
    def test_validation_folds_partition_the_index_set(self, nks):
        n, k, seed = nks
        folds = kfold_indices(n, k, seed)
        assert len(folds) == k
        all_val = np.concatenate([val for _, val in folds])
        assert sorted(all_val.tolist()) == list(range(n))  # union + disjoint

    @given(nk_seed)
    @settings(max_examples=60, deadline=None)
    def test_train_is_the_complement_of_validation(self, nks):
        n, k, seed = nks
        for train, val in kfold_indices(n, k, seed):
            assert np.intersect1d(train, val).size == 0
            assert train.size + val.size == n
            assert np.array_equal(
                np.union1d(train, val), np.arange(n)
            )

    @given(nk_seed)
    @settings(max_examples=60, deadline=None)
    def test_fold_sizes_differ_by_at_most_one(self, nks):
        n, k, seed = nks
        sizes = [val.size for _, val in kfold_indices(n, k, seed)]
        assert max(sizes) - min(sizes) <= 1
        assert min(sizes) >= 1

    @given(nk_seed)
    @settings(max_examples=40, deadline=None)
    def test_seed_stability(self, nks):
        n, k, seed = nks
        a = kfold_indices(n, k, seed)
        b = kfold_indices(n, k, seed)
        for (ta, va), (tb, vb) in zip(a, b):
            np.testing.assert_array_equal(ta, tb)
            np.testing.assert_array_equal(va, vb)

    def test_different_seeds_shuffle_differently(self):
        # With 40 samples the chance two seeds agree is negligible; pin
        # two specific seeds so the test is deterministic.
        a = kfold_indices(40, 4, seed=1)
        b = kfold_indices(40, 4, seed=2)
        assert any(
            not np.array_equal(va, vb) for (_, va), (_, vb) in zip(a, b)
        )

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError, match="k must be >= 2"):
            kfold_indices(10, 1, seed=0)
        with pytest.raises(ValueError, match="at least k"):
            kfold_indices(3, 4, seed=0)


# ---------------------------------------------------------------------- #
# select_winner properties
# ---------------------------------------------------------------------- #

loss_maps = st.lists(
    st.tuples(
        st.text(min_size=1, max_size=8),
        st.floats(allow_nan=True, allow_infinity=True, width=32),
    ),
    min_size=1,
    max_size=8,
    unique_by=lambda pair: pair[0],
)


class TestSelectWinnerProperties:
    @given(loss_maps)
    @settings(max_examples=100, deadline=None)
    def test_winner_is_argmin_of_finite_losses(self, pairs):
        order = [name for name, _ in pairs]
        losses = dict(pairs)
        winner = select_winner(losses, order)
        assert winner in order
        finite = {n: l for n, l in losses.items() if np.isfinite(l)}
        if finite:
            assert losses[winner] == min(finite.values())
        else:
            assert winner == order[0]  # all diverged: deterministic fallback

    @given(loss_maps)
    @settings(max_examples=100, deadline=None)
    def test_ties_break_to_the_earliest_zoo_entry(self, pairs):
        order = [name for name, _ in pairs]
        losses = dict(pairs)
        winner = select_winner(losses, order)
        finite = [n for n in order if np.isfinite(losses[n])]
        if finite:
            best = min(losses[n] for n in finite)
            assert winner == next(n for n in order if losses[n] == best)

    @given(loss_maps)
    @settings(max_examples=50, deadline=None)
    def test_selection_is_order_sensitive_only_on_ties(self, pairs):
        order = [name for name, _ in pairs]
        losses = dict(pairs)
        finite_losses = [losses[n] for n in order if np.isfinite(losses[n])]
        if len(set(finite_losses)) == len(finite_losses) and finite_losses:
            # No ties: reversing the zoo order must not change the winner.
            assert select_winner(losses, order) == select_winner(
                losses, list(reversed(order))
            )

    def test_empty_zoo_rejected(self):
        with pytest.raises(ValueError, match="empty zoo"):
            select_winner({}, [])


# ---------------------------------------------------------------------- #
# AdaptiveSwitchingPredictor wiring
# ---------------------------------------------------------------------- #


def _toy(n=120, d=6, seed=0, noise=0.05):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d))
    w = rng.uniform(0.5, 1.5, size=d)
    return X, X @ w + 10.0 + rng.normal(0, noise, n)


FAST_ZOO = dict(
    zoo=["ridge", "cart", "rf"],
    zoo_params={"rf": {"n_estimators": 8}},
    cv_folds=3,
    seed=0,
)


class TestAdaptiveSwitching:
    def test_winner_is_argmin_of_recorded_cv_losses(self):
        X, y = _toy()
        switcher = AdaptiveSwitchingPredictor(**FAST_ZOO).fit(X, y)
        assert set(switcher.cv_losses_) == set(switcher.zoo)
        assert switcher.winner_ == select_winner(
            switcher.cv_losses_, switcher.zoo
        )

    def test_linear_data_picks_the_linear_member(self):
        X, y = _toy(noise=0.01)
        switcher = AdaptiveSwitchingPredictor(**FAST_ZOO).fit(X, y)
        assert switcher.winner_ == "ridge"
        assert isinstance(switcher.model, RidgePredictor)

    def test_delegate_predictions_match_a_direct_winner_refit(self):
        X, y = _toy()
        switcher = AdaptiveSwitchingPredictor(**FAST_ZOO).fit(X, y)
        direct = switcher._spawn(switcher.winner_).fit(X, y)
        np.testing.assert_array_equal(
            switcher.predict(X), direct.predict(X)
        )

    def test_seeded_refit_determinism(self):
        X, y = _toy()
        a = AdaptiveSwitchingPredictor(**FAST_ZOO).fit(X, y)
        b = AdaptiveSwitchingPredictor(**FAST_ZOO).fit(X, y)
        assert a.winner_ == b.winner_
        assert a.cv_losses_ == b.cv_losses_
        np.testing.assert_array_equal(a.predict(X), b.predict(X))

    def test_nested_save_load_restores_winner_and_losses(self, tmp_path):
        X, y = _toy()
        switcher = AdaptiveSwitchingPredictor(**FAST_ZOO).fit(X, y)
        switcher.save(tmp_path / "as.json")
        clone = AdaptiveSwitchingPredictor.load(tmp_path / "as.json")
        assert clone.winner_ == switcher.winner_
        assert clone.cv_losses_ == switcher.cv_losses_
        np.testing.assert_array_equal(clone.predict(X), switcher.predict(X))

    def test_rmse_metric_is_accepted(self):
        X, y = _toy(n=40)
        switcher = AdaptiveSwitchingPredictor(
            zoo=["ridge", "cart"], cv_folds=2, cv_metric="rmse"
        ).fit(X, y)
        assert switcher.winner_ in ("ridge", "cart")

    def test_folds_shrink_to_the_sample_count(self):
        # cv_folds=5 but only 3 samples: CV degrades to 3-fold, not a crash.
        X = np.arange(6, dtype=float).reshape(3, 2)
        y = np.array([1.0, 2.0, 3.0])
        switcher = AdaptiveSwitchingPredictor(
            zoo=["ridge"], cv_folds=5
        ).fit(X, y)
        assert switcher.winner_ == "ridge"

    def test_invalid_construction_rejected(self):
        with pytest.raises(ValueError, match="cv_folds"):
            AdaptiveSwitchingPredictor(cv_folds=1)
        with pytest.raises(ValueError, match="cv_metric"):
            AdaptiveSwitchingPredictor(cv_metric="r2")
        with pytest.raises(ValueError, match="at least one"):
            AdaptiveSwitchingPredictor(zoo=[])
        with pytest.raises(ValueError, match="cannot include itself"):
            AdaptiveSwitchingPredictor(zoo=["ridge", "as"])
        with pytest.raises(ValueError, match="not in the zoo"):
            AdaptiveSwitchingPredictor(
                zoo=["ridge"], zoo_params={"mlp": {"epochs": 5}}
            )

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError, match="at least 2 samples"):
            AdaptiveSwitchingPredictor(zoo=["ridge"]).fit(
                np.ones((1, 2)), np.ones(1)
            )


class TestPredictOneFastPath:
    """Single queries route straight through the winner's vectorized predict."""

    def test_predict_one_matches_winner_batch_path(self):
        X, y = _toy()
        switcher = AdaptiveSwitchingPredictor(zoo=["ridge", "cart"]).fit(X, y)
        winner = switcher.model
        for row in X[:5]:
            assert switcher.predict_one(row) == float(winner.predict(row[None, :])[0])

    def test_predict_one_delegates_without_meta_layer(self):
        X, y = _toy()
        switcher = AdaptiveSwitchingPredictor(zoo=["ridge"]).fit(X, y)
        calls = []
        original = switcher.model.predict

        def spy(batch):
            calls.append(np.asarray(batch).shape)
            return original(batch)

        switcher._model.predict = spy
        switcher.predict_one(X[0])
        # Exactly one 1-row batch hits the winner; the meta-layer adds none.
        assert calls == [(1, X.shape[1])]

    def test_predict_one_before_fit_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            AdaptiveSwitchingPredictor(zoo=["ridge"]).predict_one(np.zeros(4))
