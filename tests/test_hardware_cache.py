"""Analytical-latency caching and the vectorized noise model.

The cache tests pin down the accounting contract (hit/miss counters,
LRU bound, profile-swap invalidation, ``cache_size=0`` opt-out).  The
bit-identity tests replicate the original scalar noise model verbatim
and assert ``measure`` / ``measure_batch`` reproduce it bit for bit from
the same seeded stream: the vectorization must not move a single draw.
"""

import numpy as np
import pytest

from repro import (
    AnalyticalCache,
    RandomSampler,
    SimulatedDevice,
    build_network,
    densenet_space,
    device_by_name,
    resnet_space,
    space_by_name,
)


@pytest.fixture(scope="module")
def configs():
    return RandomSampler(resnet_space(), rng=21).sample_batch(6)


# ---------------------------------------------------------------------- #
# AnalyticalCache in isolation
# ---------------------------------------------------------------------- #


class TestAnalyticalCache:
    def test_hit_miss_accounting(self):
        cache = AnalyticalCache(maxsize=8)
        assert cache.get("a") is None
        cache.put("a", 1.0)
        assert cache.get("a") == 1.0
        assert cache.get("a") == 1.0
        info = cache.info()
        assert (info.hits, info.misses, info.size) == (2, 1, 1)
        assert info.hit_rate == pytest.approx(2 / 3)

    def test_hit_rate_zero_before_any_lookup(self):
        assert AnalyticalCache().info().hit_rate == 0.0

    def test_eviction_is_least_recently_used(self):
        cache = AnalyticalCache(maxsize=2)
        cache.put("a", 1.0)
        cache.put("b", 2.0)
        cache.get("a")  # refresh: "b" is now the LRU entry
        cache.put("c", 3.0)
        assert "b" not in cache
        assert cache.get("a") == 1.0
        assert cache.get("c") == 3.0
        assert len(cache) == 2

    def test_put_refreshes_existing_key(self):
        cache = AnalyticalCache(maxsize=2)
        cache.put("a", 1.0)
        cache.put("b", 2.0)
        cache.put("a", 1.5)  # overwrite refreshes, so "b" gets evicted next
        cache.put("c", 3.0)
        assert "b" not in cache
        assert cache.get("a") == 1.5

    def test_zero_maxsize_disables_storage(self):
        cache = AnalyticalCache(maxsize=0)
        cache.put("a", 1.0)
        assert cache.get("a") is None
        assert len(cache) == 0
        assert cache.info().misses == 1

    def test_clear_drops_entries_keeps_counters(self):
        cache = AnalyticalCache()
        cache.put("a", 1.0)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        info = cache.info()
        assert (info.hits, info.misses) == (1, 0)

    def test_negative_maxsize_rejected(self):
        with pytest.raises(ValueError):
            AnalyticalCache(maxsize=-1)


class TestCacheKey:
    def test_equal_configs_share_key(self, configs):
        clone = RandomSampler(resnet_space(), rng=21).sample_batch(6)
        for a, b in zip(configs, clone):
            assert a.cache_key() == b.cache_key()

    def test_distinct_configs_get_distinct_keys(self, configs):
        keys = {c.cache_key() for c in configs}
        assert len(keys) == len(configs)

    def test_key_is_hashable_and_family_scoped(self):
        resnet = RandomSampler(resnet_space(), rng=0).sample()
        densenet = RandomSampler(densenet_space(), rng=0).sample()
        assert hash(resnet.cache_key()) is not None
        assert resnet.cache_key() != densenet.cache_key()


# ---------------------------------------------------------------------- #
# The cache wired into SimulatedDevice
# ---------------------------------------------------------------------- #


class TestDeviceCache:
    def test_repeat_lookups_hit(self, configs):
        device = SimulatedDevice("rtx4090")
        values = [device.true_latency(c) for c in configs]
        info = device.cache_info()
        assert (info.hits, info.misses, info.size) == (0, 6, 6)
        again = [device.true_latency(c) for c in configs]
        info = device.cache_info()
        assert (info.hits, info.misses) == (6, 6)
        assert values == again

    def test_cached_equals_uncached(self, configs):
        cached = SimulatedDevice("raspberrypi4")
        uncached = SimulatedDevice("raspberrypi4", cache_size=0)
        for config in configs:
            cached.true_latency(config)  # warm
            assert cached.true_latency(config) == uncached.true_latency(config)
        assert cached.cache_info().hits == len(configs)
        assert uncached.cache_info().hits == 0

    def test_cache_is_bounded(self, configs):
        device = SimulatedDevice("rtx4090", cache_size=2)
        for config in configs:
            device.true_latency(config)
        info = device.cache_info()
        assert info.size == 2
        assert info.maxsize == 2

    def test_profile_swap_invalidates(self, configs):
        device = SimulatedDevice("rtx4090")
        fast = device.true_latency(configs[0])
        device.profile = device_by_name("raspberrypi4")
        slow = device.true_latency(configs[0])
        assert slow > fast  # not the stale rtx4090 entry
        assert slow == SimulatedDevice("raspberrypi4").true_latency(configs[0])

    def test_network_targets_bypass_cache(self, configs):
        device = SimulatedDevice("rtx4090")
        net = build_network(configs[0])
        direct = device.true_latency(net)
        info = device.cache_info()
        assert (info.hits, info.misses, info.size) == (0, 0, 0)
        assert direct == device.true_latency(configs[0])

    def test_measure_batch_populates_cache(self, configs):
        device = SimulatedDevice("rtx4090")
        device.measure_batch(configs * 3, runs=5, rng=np.random.default_rng(0))
        info = device.cache_info()
        assert info.misses == len(configs)
        assert info.hits == 2 * len(configs)


# ---------------------------------------------------------------------- #
# Bit-identity of the vectorized noise model
# ---------------------------------------------------------------------- #


def _legacy_measure(device, target, runs, rng):
    """The original scalar noise model, verbatim: the regression oracle."""
    p = device.profile
    base = device.true_latency(target)

    session = float(np.exp(rng.normal(0.0, p.session_sigma)))
    if rng.random() < p.throttle_prob:
        session *= p.throttle_factor

    trace = base * session * np.exp(rng.normal(0.0, p.jitter_cv, size=runs))

    idx = np.arange(min(p.warmup_iters, runs))
    trace[: idx.size] *= 1.0 + (p.warmup_factor - 1.0) * 0.5**idx

    spikes = rng.random(runs) < p.outlier_prob
    if spikes.any():
        trace[spikes] *= 1.0 + rng.exponential(
            p.outlier_scale, size=int(spikes.sum())
        )
    return trace


@pytest.mark.parametrize("device_name", ["rtx4090", "raspberrypi4"])
@pytest.mark.parametrize("family", ["resnet", "densenet"])
class TestBitIdentity:
    def test_measure_matches_legacy_scalar_model(self, device_name, family):
        config = RandomSampler(space_by_name(family), rng=13).sample()
        device = SimulatedDevice(device_name)
        got = device.measure(config, runs=150, rng=np.random.default_rng(99))
        want = _legacy_measure(
            device, config, runs=150, rng=np.random.default_rng(99)
        )
        np.testing.assert_array_equal(got, want)

    def test_measure_batch_matches_per_config_loop(self, device_name, family):
        configs = RandomSampler(space_by_name(family), rng=17).sample_batch(7)
        device = SimulatedDevice(device_name)
        measured, true = device.measure_batch(
            configs, runs=40, rng=np.random.default_rng(7)
        )
        # One shared stream, one config at a time — the pre-vectorization
        # semantics of measure_batch.
        rng = np.random.default_rng(7)
        for i, config in enumerate(configs):
            assert measured[i] == device.measure_latency(
                config, runs=40, rng=rng
            )
            assert true[i] == device.true_latency(config)

    def test_outlier_draws_stay_per_config(self, device_name, family):
        # Outliers are rare; a long trace forces spike draws in some
        # configs and none in others, exercising the conditional
        # exponential draw that is easiest to get wrong when blocking.
        configs = RandomSampler(space_by_name(family), rng=29).sample_batch(4)
        device = SimulatedDevice(device_name)
        measured, _ = device.measure_batch(
            configs, runs=400, rng=np.random.default_rng(3)
        )
        rng = np.random.default_rng(3)
        want = [
            device.measure_latency(c, runs=400, rng=rng) for c in configs
        ]
        np.testing.assert_array_equal(measured, np.array(want))
