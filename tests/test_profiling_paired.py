"""`repro.profiling.paired`: aligned two-device measurement campaigns.

Direct mode (seed-derived `measure_batch` per device) and campaign mode
(one checkpointed `CampaignRunner` per side) both produce a
`PairedMeasurementSet`; this file locks the invariants the transfer
experiments lean on:

* the config list is *shared* — index i is the same architecture on both
  devices — and ``prefix(n)`` is a true nested view (budget 25 is the
  first 25 pairs of budget 100),
* direct mode is deterministic in ``(configs, seed)`` and independent
  across sides (the proxy stream does not shift when the target device
  changes),
* persistence round-trips through versioned JSON,
* campaign mode inherits QC and yields the same aligned shape.
"""

import numpy as np
import pytest

from repro import RandomSampler, SimulatedDevice, resnet_space
from repro.profiling import MeasurementProtocol, PairedMeasurementSet, measure_paired

PROTOCOL = MeasurementProtocol(runs=5)


@pytest.fixture(scope="module")
def spec():
    return resnet_space()


@pytest.fixture(scope="module")
def configs(spec):
    return RandomSampler(spec, rng=0).sample_batch(12)


@pytest.fixture(scope="module")
def paired(configs):
    return measure_paired(
        configs, "rtx4090", "raspberrypi4", protocol=PROTOCOL, seed=5
    )


class TestDirectMode:
    def test_aligned_shapes_and_devices(self, paired, configs):
        assert len(paired) == len(configs)
        assert paired.configs == tuple(configs)
        assert paired.proxy_device == "rtx4090"
        assert paired.target_device == "raspberrypi4"
        for arr in (
            paired.proxy_latencies,
            paired.target_latencies,
            paired.proxy_true,
            paired.target_true,
        ):
            assert arr.shape == (len(configs),)
            assert np.isfinite(arr).all()
            assert (arr > 0).all()

    def test_deterministic_in_seed(self, paired, configs):
        again = measure_paired(
            configs, "rtx4090", "raspberrypi4", protocol=PROTOCOL, seed=5
        )
        np.testing.assert_array_equal(
            again.proxy_latencies, paired.proxy_latencies
        )
        np.testing.assert_array_equal(
            again.target_latencies, paired.target_latencies
        )

    def test_different_seed_differs(self, paired, configs):
        other = measure_paired(
            configs, "rtx4090", "raspberrypi4", protocol=PROTOCOL, seed=6
        )
        assert not np.array_equal(
            other.proxy_latencies, paired.proxy_latencies
        )

    def test_proxy_stream_independent_of_target_device(self, paired, configs):
        # Swapping the target must not move the proxy's measurements:
        # each side draws from its own seed-derived stream.
        swapped = measure_paired(
            configs,
            "rtx4090",
            "threadripper5975wx",
            protocol=PROTOCOL,
            seed=5,
        )
        np.testing.assert_array_equal(
            swapped.proxy_latencies, paired.proxy_latencies
        )

    def test_accepts_device_instances(self, configs, paired):
        explicit = measure_paired(
            configs,
            SimulatedDevice("rtx4090", seed=5),
            SimulatedDevice("raspberrypi4", seed=5),
            protocol=PROTOCOL,
            seed=5,
        )
        np.testing.assert_array_equal(
            explicit.proxy_latencies, paired.proxy_latencies
        )

    def test_empty_configs_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            measure_paired([], "rtx4090", "raspberrypi4")


class TestPrefix:
    def test_prefix_is_a_true_nested_view(self, paired):
        for n in (1, 5, len(paired)):
            pre = paired.prefix(n)
            assert len(pre) == n
            assert pre.configs == paired.configs[:n]
            np.testing.assert_array_equal(
                pre.target_latencies, paired.target_latencies[:n]
            )
            np.testing.assert_array_equal(
                pre.proxy_true, paired.proxy_true[:n]
            )
            assert pre.proxy_device == paired.proxy_device

    def test_out_of_range_prefix_rejected(self, paired):
        with pytest.raises(ValueError, match="prefix size"):
            paired.prefix(0)
        with pytest.raises(ValueError, match="prefix size"):
            paired.prefix(len(paired) + 1)


class TestDatasetViews:
    def test_datasets_carry_device_and_truth(self, paired):
        proxy_ds, target_ds = paired.datasets()
        assert len(proxy_ds) == len(target_ds) == len(paired)
        assert all(s.device == "rtx4090" for s in proxy_ds)
        assert all(s.device == "raspberrypi4" for s in target_ds)
        np.testing.assert_array_equal(
            proxy_ds.latencies, paired.proxy_latencies
        )
        np.testing.assert_array_equal(
            [s.true_latency_s for s in target_ds], paired.target_true
        )


class TestPersistence:
    def test_round_trip(self, paired, tmp_path):
        path = tmp_path / "paired.json"
        paired.save(path)
        loaded = PairedMeasurementSet.load(path)
        assert loaded.configs == paired.configs
        np.testing.assert_array_equal(
            loaded.proxy_latencies, paired.proxy_latencies
        )
        np.testing.assert_array_equal(
            loaded.target_true, paired.target_true
        )
        assert loaded.proxy_device == paired.proxy_device

    def test_save_is_deterministic(self, paired, tmp_path):
        paired.save(tmp_path / "a.json")
        paired.save(tmp_path / "b.json")
        assert (tmp_path / "a.json").read_bytes() == (
            tmp_path / "b.json"
        ).read_bytes()

    def test_missing_truth_round_trips_as_none(self, paired, tmp_path):
        stripped = PairedMeasurementSet(
            configs=paired.configs,
            proxy_device=paired.proxy_device,
            target_device=paired.target_device,
            proxy_latencies=paired.proxy_latencies,
            target_latencies=paired.target_latencies,
        )
        stripped.save(tmp_path / "s.json")
        loaded = PairedMeasurementSet.load(tmp_path / "s.json")
        assert loaded.proxy_true is None
        assert loaded.target_true is None
        assert loaded.prefix(3).proxy_true is None

    def test_corrupt_payloads_rejected(self, paired, tmp_path):
        with pytest.raises(ValueError, match="does not exist"):
            PairedMeasurementSet.load(tmp_path / "missing.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        with pytest.raises(ValueError, match="not valid JSON"):
            PairedMeasurementSet.load(bad)
        wrong = paired.to_dict()
        wrong["format_version"] = 99
        import json

        versioned = tmp_path / "versioned.json"
        versioned.write_text(json.dumps(wrong))
        with pytest.raises(ValueError, match="format_version"):
            PairedMeasurementSet.load(versioned)

    def test_misaligned_arrays_rejected(self, paired):
        with pytest.raises(ValueError, match="values for"):
            PairedMeasurementSet(
                configs=paired.configs,
                proxy_device="a",
                target_device="b",
                proxy_latencies=paired.proxy_latencies[:-1],
                target_latencies=paired.target_latencies,
            )


class TestCampaignMode:
    def test_campaign_mode_matches_direct_shape(self, spec, configs, tmp_path):
        paired = measure_paired(
            configs[:6],
            "rtx4090",
            "raspberrypi4",
            protocol=PROTOCOL,
            seed=1,
            workdir=tmp_path / "camp",
            spec=spec,
        )
        assert len(paired) == 6
        assert (tmp_path / "camp" / "proxy").is_dir()
        assert (tmp_path / "camp" / "target").is_dir()
        assert np.isfinite(paired.proxy_latencies).all()
        assert paired.proxy_true is not None
        assert paired.target_true is not None

    def test_campaign_mode_requires_spec(self, configs, tmp_path):
        with pytest.raises(ValueError, match="spec"):
            measure_paired(
                configs[:4],
                "rtx4090",
                "raspberrypi4",
                protocol=PROTOCOL,
                seed=1,
                workdir=tmp_path / "camp2",
            )
