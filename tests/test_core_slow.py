"""Nightly-scale ESM loop run at the paper's full protocol sizes.

Marked ``slow`` and deselected from the default (tier-1) invocation via
``pytest.ini``; CI runs it on the nightly schedule with ``-m ""``.
Locally::

    PYTHONPATH=src python -m pytest tests/test_core_slow.py -m slow

Unlike the reduced golden/e2e configs, this uses runs=150 measurement
repetitions, a 200-sample initial set, and the paper's six depth bins at
Acc_TH = 85% — the scale Algorithm 1 is actually operated at.
"""

import pytest

from repro import ESMConfig, ESMLoop, assign_depth_bin, load_run

FULL_CONFIG = ESMConfig(
    space="resnet",
    device="rtx4090",
    acc_th=85.0,
    n_bins=6,
    initial_size=200,
    extension_size=40,
    max_iterations=8,
    runs=150,
    n_references=3,
    batch_size=25,
    seed=0,
    predictor_params={"epochs": 900},
)

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def full_run(tmp_path_factory):
    run_dir = tmp_path_factory.mktemp("esm-full") / "run"
    return ESMLoop(FULL_CONFIG, run_dir, sleep=lambda s: None).run()


class TestFullProtocol:
    def test_converges_within_budget(self, full_run):
        report = full_run.report
        assert report.converged
        assert report.n_iterations <= FULL_CONFIG.max_iterations

    def test_every_bin_meets_the_threshold(self, full_run):
        final = full_run.report.final_bin_accuracies
        assert sorted(final) == list(range(FULL_CONFIG.n_bins))
        assert all(acc >= FULL_CONFIG.acc_th for acc in final.values())

    def test_extensions_targeted_failing_bins_only(self, full_run):
        for record in full_run.report.iterations:
            assert set(record.samples_added) <= set(record.failing_bins)

    def test_dataset_covers_every_depth_bin(self, full_run):
        bins = full_run.report.bins
        seen = {
            assign_depth_bin(s.config.total_blocks, bins)
            for s in full_run.dataset
        }
        assert seen == set(range(FULL_CONFIG.n_bins))

    def test_artifacts_reload_at_full_scale(self, full_run):
        loaded = load_run(full_run.run_dir)
        assert loaded.converged
        assert loaded.report.to_dict() == full_run.report.to_dict()
        assert len(loaded.dataset) == full_run.report.final_dataset_size
