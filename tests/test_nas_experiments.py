"""`repro.nas.experiments` smoke run: deterministic bytes and Fig. 2(b) shape.

Two full ``--smoke`` invocations (each trains all six surrogates through
the ESM loop and runs both search drivers under every oracle) must write
byte-identical JSON, and the report must reproduce the paper's headline:
the FCC and FC encodings displace the Pareto front less than one-hot.
"""

import json

import pytest

from repro.nas.experiments import SURROGATES, format_report, main


@pytest.fixture(scope="module")
def smoke_reports(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("nas-exp")
    out_a, out_b = tmp / "a.json", tmp / "b.json"
    assert main(["--smoke", "--out", str(out_a)]) == 0
    assert main(["--smoke", "--out", str(out_b)]) == 0
    return out_a.read_bytes(), out_b.read_bytes()


@pytest.fixture(scope="module")
def report(smoke_reports):
    return json.loads(smoke_reports[0])


class TestDeterminism:
    def test_reruns_are_byte_identical(self, smoke_reports):
        first, second = smoke_reports
        assert first == second


class TestReportStructure:
    def test_header(self, report):
        assert report["format_version"] == 1
        assert report["kind"] == "nas_experiment_report"
        assert report["smoke"] is True
        assert set(report["spaces"]) == {"resnet"}

    def test_every_surrogate_is_reported(self, report):
        fragment = report["spaces"]["resnet"]
        assert set(fragment["oracles"]) == set(SURROGATES)
        for label, entry in fragment["oracles"].items():
            predictor, encoding = SURROGATES[label]
            assert entry["predictor"] == predictor
            assert entry["encoding"] == encoding
            assert -1.0 <= entry["kendall_tau"] <= 1.0
            assert set(entry["searches"]) == {"random", "evolutionary"}
            for metrics in entry["searches"].values():
                assert metrics["displacement"] >= 0.0
                assert 0.0 <= metrics["jaccard"] <= 1.0

    def test_true_fronts_present(self, report):
        fronts = report["spaces"]["resnet"]["true_fronts"]
        assert set(fronts) == {"random", "evolutionary"}
        for front in fronts.values():
            assert front["size"] >= 1
            assert len(front["points"]) == front["size"]

    def test_format_report_renders(self, report):
        text = format_report(report)
        assert "space=resnet" in text
        for label in SURROGATES:
            assert label in text


class TestPaperHeadline:
    def test_fcc_and_fc_beat_onehot_displacement(self, report):
        oracles = report["spaces"]["resnet"]["oracles"]
        assert oracles["fcc"]["displacement"] < oracles["onehot"]["displacement"]
        assert oracles["fc"]["displacement"] < oracles["onehot"]["displacement"]

    def test_fcc_and_fc_beat_onehot_ranking(self, report):
        oracles = report["spaces"]["resnet"]["oracles"]
        assert oracles["fcc"]["kendall_tau"] > oracles["onehot"]["kendall_tau"]
        assert oracles["fc"]["kendall_tau"] > oracles["onehot"]["kendall_tau"]


class TestCLIValidation:
    def test_resume_requires_workdir(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["--smoke", "--resume"])
        assert excinfo.value.code == 2

    def test_non_positive_budget_rejected(self):
        with pytest.raises(ValueError, match="must be positive"):
            main(["--smoke", "--max-latency", "-1.0"])
