"""Unit tests for `SearchConstraints` and the static-cost memoisation.

Covers the violation arithmetic (relative excess, summed over active
budgets), feasibility, validation, serialisation round-trips, and the
interaction with the search drivers: a constrained search must return a
feasible-only front whenever any evaluated candidate is feasible, and an
inert (all-``None``) constraint set must leave the byte-exact trajectory
of the unconstrained search untouched.
"""

import json

import pytest

from repro import (
    DeviceOracle,
    EvolutionarySearch,
    RandomSearch,
    SearchConstraints,
    SimulatedDevice,
    SyntheticAccuracyProxy,
    space_by_name,
)
from repro.nas.constraints import static_costs
from repro.network import build_network, network_costs


@pytest.fixture(scope="module")
def spec():
    return space_by_name("resnet")


@pytest.fixture(scope="module")
def config(spec):
    from repro.archspace import RandomSampler

    return RandomSampler(spec, rng=3).sample()


class TestStaticCosts:
    def test_matches_direct_analysis(self, config):
        direct = network_costs(build_network(config))
        assert static_costs(config) == direct

    def test_memoised(self, config):
        assert static_costs(config) is static_costs(config)


class TestValidation:
    @pytest.mark.parametrize("field", ["max_latency_s", "max_params", "max_flops"])
    @pytest.mark.parametrize("bad", [0.0, -1.0])
    def test_non_positive_budgets_rejected(self, field, bad):
        with pytest.raises(ValueError, match="must be positive"):
            SearchConstraints(**{field: bad})

    def test_all_none_is_inert(self):
        assert not SearchConstraints().is_active
        assert SearchConstraints().describe() == "unconstrained"

    def test_any_budget_activates(self):
        assert SearchConstraints(max_latency_s=1.0).is_active
        assert SearchConstraints(max_params=1.0).is_active
        assert SearchConstraints(max_flops=1.0).is_active


class TestViolation:
    def test_inert_constraints_never_violate(self, config):
        assert SearchConstraints().violation(config, 1e9) == 0.0

    def test_latency_violation_is_relative_excess(self, config):
        cons = SearchConstraints(max_latency_s=0.002)
        assert cons.violation(config, 0.002) == 0.0
        assert cons.violation(config, 0.001) == 0.0
        assert cons.violation(config, 0.003) == pytest.approx(0.5)

    def test_static_violations_use_analysis_pass(self, config):
        costs = static_costs(config)
        over_params = SearchConstraints(max_params=costs.params / 2)
        assert over_params.violation(config, 0.0) == pytest.approx(1.0)
        over_flops = SearchConstraints(max_flops=costs.flops / 4)
        assert over_flops.violation(config, 0.0) == pytest.approx(3.0)
        roomy = SearchConstraints(
            max_params=costs.params * 2, max_flops=costs.flops * 2
        )
        assert roomy.violation(config, 0.0) == 0.0

    def test_violations_sum_across_axes(self, config):
        costs = static_costs(config)
        cons = SearchConstraints(
            max_latency_s=0.001, max_params=costs.params / 2
        )
        # 100% over latency + 100% over params.
        assert cons.violation(config, 0.002) == pytest.approx(2.0)

    def test_is_feasible_iff_zero_violation(self, config):
        cons = SearchConstraints(max_latency_s=0.002)
        assert cons.is_feasible(config, 0.002)
        assert not cons.is_feasible(config, 0.0021)

    def test_vectorised_violations_align(self, spec, config):
        from repro.archspace import RandomSampler

        configs = RandomSampler(spec, rng=11).sample_batch(4)
        latencies = [0.001, 0.002, 0.003, 0.004]
        cons = SearchConstraints(max_latency_s=0.002)
        out = cons.violations(configs, latencies)
        assert out.shape == (4,)
        for got, (c, l) in zip(out, zip(configs, latencies)):
            assert got == cons.violation(c, l)

    def test_vectorised_violations_length_mismatch(self, config):
        cons = SearchConstraints(max_latency_s=0.002)
        with pytest.raises(ValueError, match="same length"):
            cons.violations([config], [0.001, 0.002])


class TestSerialisation:
    def test_round_trip(self):
        cons = SearchConstraints(max_latency_s=0.0009, max_params=6.0e7)
        assert SearchConstraints.from_dict(cons.to_dict()) == cons

    def test_json_round_trip(self):
        cons = SearchConstraints(max_flops=1.5e10)
        rebuilt = SearchConstraints.from_dict(
            json.loads(json.dumps(cons.to_dict()))
        )
        assert rebuilt == cons

    def test_describe_lists_active_budgets(self):
        cons = SearchConstraints(max_latency_s=0.001, max_flops=2e9)
        text = cons.describe()
        assert "latency_s<=0.001" in text
        assert "flops<=2e+09" in text
        assert "params" not in text


class TestDriverIntegration:
    @pytest.fixture(scope="class")
    def oracle_proxy(self, spec):
        device = SimulatedDevice("rtx4090", seed=0)
        return DeviceOracle(device), SyntheticAccuracyProxy(spec, seed=0)

    def test_inert_constraints_preserve_trajectory(self, spec, oracle_proxy):
        oracle, proxy = oracle_proxy
        plain = EvolutionarySearch(
            spec, oracle, proxy, population_size=8, generations=2, seed=5
        ).run()
        inert = EvolutionarySearch(
            spec,
            oracle,
            proxy,
            population_size=8,
            generations=2,
            seed=5,
            constraints=SearchConstraints(),
        ).run()
        assert inert.to_json() == plain.to_json()

    @pytest.mark.parametrize("driver", [RandomSearch, EvolutionarySearch])
    def test_front_is_feasible_when_possible(self, spec, oracle_proxy, driver):
        oracle, proxy = oracle_proxy
        cons = SearchConstraints(max_latency_s=0.0009)
        kwargs = (
            {"budget": 32}
            if driver is RandomSearch
            else {"population_size": 8, "generations": 2}
        )
        result = driver(
            spec, oracle, proxy, seed=5, constraints=cons, **kwargs
        ).run()
        assert result.feasible_evaluations > 0
        for point in result.front:
            assert point.latency_s <= cons.max_latency_s

    def test_min_violation_front_when_nothing_feasible(self, spec, oracle_proxy):
        oracle, proxy = oracle_proxy
        # No resnet in the space fits a 1-parameter budget.
        cons = SearchConstraints(max_params=1.0)
        result = RandomSearch(
            spec, oracle, proxy, budget=16, seed=5, constraints=cons
        ).run()
        assert result.feasible_evaluations == 0
        assert len(result.front) >= 1
        violations = cons.violations(
            [c.config for c in result.evaluated],
            [c.latency_s for c in result.evaluated],
        )
        front_points = {(p.latency_s, p.accuracy) for p in result.front}
        best = violations.min()
        holders = {
            (c.latency_s, c.accuracy)
            for c, v in zip(result.evaluated, violations)
            if v == best
        }
        assert front_points <= holders

    def test_result_round_trip_keeps_constraints(self, spec, oracle_proxy):
        from repro import SearchResult

        oracle, proxy = oracle_proxy
        cons = SearchConstraints(max_latency_s=0.0009, max_params=6.0e7)
        result = RandomSearch(
            spec, oracle, proxy, budget=12, seed=5, constraints=cons
        ).run()
        rebuilt = SearchResult.from_dict(json.loads(result.to_json()))
        assert rebuilt.constraints == cons
        assert rebuilt.to_json() == result.to_json()
