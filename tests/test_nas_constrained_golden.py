"""Golden-trace regression test for *constrained* `EvolutionarySearch`.

Mirror of ``test_nas_golden.py`` with latency/params budgets active: the
same seeded NSGA-II run under `SearchConstraints` is re-executed and
locked against ``tests/fixtures/nas_constrained_golden_trace.json``.  On
top of the population/front locks, the fixture also pins

* every evaluated candidate's total constraint violation, and
* the constrained-dominance rank of the final population,

so a regression in Deb's rule (feasible-dominates-infeasible, infeasible
ordered by violation) surfaces as a rank diff even when the discrete
trajectory happens to survive.

Regenerate after an *intentional* behaviour change with::

    PYTHONPATH=src python tests/fixtures/regen_nas_constrained_golden_trace.py
"""

import json
import sys
from pathlib import Path

import pytest

FIXTURES = Path(__file__).parent / "fixtures"
FIXTURE_PATH = FIXTURES / "nas_constrained_golden_trace.json"

sys.path.insert(0, str(FIXTURES))
from regen_nas_constrained_golden_trace import (  # noqa: E402
    GOLDEN_PARAMS,
    golden_constraints,
    population_ranks,
    run_golden_search,
)

sys.path.pop(0)


@pytest.fixture(scope="module")
def fixture_raw():
    assert FIXTURE_PATH.exists(), "committed constrained golden fixture missing"
    return json.loads(FIXTURE_PATH.read_text())


@pytest.fixture(scope="module")
def golden_result():
    return run_golden_search()


class TestFixtureSchema:
    """Schema lock: the fixture's shape is part of the contract."""

    def test_header(self, fixture_raw):
        assert fixture_raw["format_version"] == 1
        assert fixture_raw["kind"] == "nas_constrained_golden_trace"
        assert set(fixture_raw) == {
            "format_version",
            "kind",
            "params",
            "n_evaluations",
            "n_feasible",
            "population",
            "violations",
            "population_ranks",
            "front",
        }

    def test_params_match_the_regen_constant(self, fixture_raw):
        assert fixture_raw["params"] == GOLDEN_PARAMS

    def test_candidate_schema(self, fixture_raw):
        assert len(fixture_raw["population"]) == GOLDEN_PARAMS["population_size"]
        for entry in fixture_raw["population"]:
            assert set(entry) == {"config", "latency_s", "accuracy"}
            assert entry["config"]["family"] == GOLDEN_PARAMS["space"]
            assert entry["latency_s"] > 0
        front = fixture_raw["front"]
        assert set(front) == {"size", "points"}
        assert front["size"] == len(front["points"])

    def test_violation_vectors_are_consistent(self, fixture_raw):
        violations = fixture_raw["violations"]
        assert len(violations) == fixture_raw["n_evaluations"]
        assert all(v >= 0.0 for v in violations)
        assert sum(1 for v in violations if v == 0.0) == fixture_raw["n_feasible"]
        ranks = fixture_raw["population_ranks"]
        assert len(ranks) == len(fixture_raw["population"])
        assert min(ranks) == 0


class TestGoldenTrace:
    def test_evaluation_budget(self, golden_result, fixture_raw):
        expected = GOLDEN_PARAMS["population_size"] * (
            GOLDEN_PARAMS["generations"] + 1
        )
        assert golden_result.n_evaluations == expected
        assert fixture_raw["n_evaluations"] == expected

    def test_constraints_are_binding(self, golden_result, fixture_raw):
        # The budgets were chosen so the run straddles the boundary: some
        # evaluations violate, some don't.  A fixture where nothing (or
        # everything) violates would not exercise Deb's rule at all.
        assert 0 < golden_result.feasible_evaluations < golden_result.n_evaluations
        assert golden_result.feasible_evaluations == fixture_raw["n_feasible"]

    def test_population_matches_fixture(self, golden_result, fixture_raw):
        produced = [c.to_dict() for c in golden_result.population]
        expected = fixture_raw["population"]
        assert len(produced) == len(expected)
        for i, (got, want) in enumerate(zip(produced, expected)):
            # The discrete architecture trajectory is exact ...
            assert got["config"] == want["config"], f"population[{i}]"
            # ... objective values allow BLAS-level float drift.
            assert got["latency_s"] == pytest.approx(want["latency_s"], rel=1e-9)
            assert got["accuracy"] == pytest.approx(want["accuracy"], rel=1e-9)

    def test_violations_match_fixture(self, golden_result, fixture_raw):
        produced = [float(v) for v in golden_result.violations()]
        expected = fixture_raw["violations"]
        assert len(produced) == len(expected)
        for got, want in zip(produced, expected):
            assert got == pytest.approx(want, rel=1e-9, abs=1e-12)

    def test_population_ranks_match_fixture(self, golden_result, fixture_raw):
        assert population_ranks(golden_result) == fixture_raw["population_ranks"]

    def test_front_matches_fixture(self, golden_result, fixture_raw):
        produced = golden_result.front.to_dict()
        expected = fixture_raw["front"]
        assert produced["size"] == expected["size"]
        for got, want in zip(produced["points"], expected["points"]):
            assert got == pytest.approx(want, rel=1e-9)

    def test_front_is_entirely_feasible(self, golden_result):
        constraints = golden_constraints()
        feasible = [
            c
            for c in golden_result.evaluated
            if constraints.is_feasible(c.config, c.latency_s)
        ]
        assert feasible, "budgets left no feasible candidate"
        front_points = {(p.latency_s, p.accuracy) for p in golden_result.front}
        feasible_points = {(c.latency_s, c.accuracy) for c in feasible}
        assert front_points <= feasible_points

    def test_front_is_non_dominated_among_feasible(self, golden_result):
        constraints = golden_constraints()
        feasible_points = [
            c.point()
            for c in golden_result.evaluated
            if constraints.is_feasible(c.config, c.latency_s)
        ]
        for p in golden_result.front:
            assert not any(q.dominates(p) for q in feasible_points)
