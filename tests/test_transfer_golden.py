"""Golden-trace regression test for the cross-device transfer pipeline.

Mirror of ``test_nas_constrained_golden.py`` for ``repro.transfer``: the
seeded smoke experiment (rtx4090 proxy, raspberrypi4 target, CART base)
is re-executed and locked against
``tests/fixtures/transfer_golden_trace.json`` at three layers:

* the monotone map's knots at the golden budget — a PAVA regression
  moves a knot before it moves a headline metric,
* the per-budget transfer/scratch MAPE + Kendall-tau table and the
  half-budget verdict (the ISSUE acceptance: transfer matches
  from-scratch MAPE with <= 50% of the target budget on this pair),
* the sha256 of the full 12-pair smoke report.  The transfer stack is
  pure numpy end to end (CART trees, count encodings, the analytic
  simulator — no BLAS in the pipeline), so the canonical JSON bytes are
  platform-stable and locked exactly, not approximately.

Regenerate after an *intentional* behaviour change with::

    PYTHONPATH=src python tests/fixtures/regen_transfer_golden_trace.py
"""

import json
import sys
from pathlib import Path

import pytest

FIXTURES = Path(__file__).parent / "fixtures"
FIXTURE_PATH = FIXTURES / "transfer_golden_trace.json"

sys.path.insert(0, str(FIXTURES))
from regen_transfer_golden_trace import (  # noqa: E402
    GOLDEN_PARAMS,
    report_sha256,
    run_golden_pair,
    run_smoke_report,
    smoke_settings_match,
)

sys.path.pop(0)


@pytest.fixture(scope="module")
def fixture_raw():
    assert FIXTURE_PATH.exists(), "committed transfer golden fixture missing"
    return json.loads(FIXTURE_PATH.read_text())


@pytest.fixture(scope="module")
def golden_pair():
    return run_golden_pair()


@pytest.fixture(scope="module")
def smoke_report():
    return run_smoke_report()


class TestFixtureSchema:
    """Schema lock: the fixture's shape is part of the contract."""

    def test_header(self, fixture_raw):
        assert fixture_raw["format_version"] == 1
        assert fixture_raw["kind"] == "transfer_golden_trace"
        assert set(fixture_raw) == {
            "format_version",
            "kind",
            "params",
            "pair",
            "map_knots",
            "report_sha256",
            "summary",
        }

    def test_params_match_the_regen_constant(self, fixture_raw):
        assert fixture_raw["params"] == GOLDEN_PARAMS

    def test_golden_params_are_the_smoke_config(self):
        # The CI smoke step runs `--smoke` with these exact settings; if
        # the experiment module's smoke budgets drift, the fixture and
        # the regen constant must be updated together.
        assert smoke_settings_match()

    def test_pair_schema(self, fixture_raw):
        pair = fixture_raw["pair"]
        assert pair["proxy_device"] == GOLDEN_PARAMS["proxy_device"]
        assert pair["target_device"] == GOLDEN_PARAMS["target_device"]
        assert set(pair["table"]) == {
            str(b) for b in GOLDEN_PARAMS["budgets"]
        }
        for entry in pair["table"].values():
            assert set(entry) == {"transfer", "scratch"}
            assert set(entry["scratch"]) == {"mape", "kendall_tau"}
            assert set(entry["transfer"]) == {
                "mape",
                "kendall_tau",
                "n_knots",
                "map_knots",
            }

    def test_map_knots_are_a_strictly_monotone_curve(self, fixture_raw):
        knots = fixture_raw["map_knots"]
        x, y = knots["x"], knots["y"]
        assert len(x) == len(y) >= 2
        assert all(a < b for a, b in zip(x, x[1:]))
        assert all(a <= b for a, b in zip(y, y[1:]))
        golden = str(GOLDEN_PARAMS["golden_budget"])
        assert (
            fixture_raw["pair"]["table"][golden]["transfer"]["map_knots"]
            == knots
        )


class TestGoldenPair:
    def test_map_knots_match_fixture(self, golden_pair, fixture_raw):
        golden = str(GOLDEN_PARAMS["golden_budget"])
        produced = golden_pair["table"][golden]["transfer"]["map_knots"]
        expected = fixture_raw["map_knots"]
        assert len(produced["x"]) == len(expected["x"])
        for axis in ("x", "y"):
            for got, want in zip(produced[axis], expected[axis]):
                assert got == pytest.approx(want, rel=1e-9)

    def test_budget_table_matches_fixture(self, golden_pair, fixture_raw):
        for b, want in fixture_raw["pair"]["table"].items():
            got = golden_pair["table"][b]
            for side in ("transfer", "scratch"):
                for metric in ("mape", "kendall_tau"):
                    assert got[side][metric] == pytest.approx(
                        want[side][metric], rel=1e-9
                    ), f"table[{b}][{side}][{metric}]"
            assert got["transfer"]["n_knots"] == want["transfer"]["n_knots"]

    def test_half_budget_acceptance_on_the_golden_pair(
        self, golden_pair, fixture_raw
    ):
        # The ISSUE's hard acceptance: on the committed smoke config the
        # transfer surrogate matches the from-scratch surrogate's
        # max-budget MAPE with at most half the target samples.
        assert golden_pair["half_budget_ok"] is True
        assert fixture_raw["pair"]["half_budget_ok"] is True
        max_budget = GOLDEN_PARAMS["budgets"][-1]
        assert 2 * golden_pair["match_budget"] <= max_budget
        assert golden_pair["match_budget"] == fixture_raw["pair"]["match_budget"]

    def test_transfer_beats_scratch_at_the_smallest_budget(self, golden_pair):
        # The qualitative shape of the whole experiment: at 10 target
        # samples the proxy + map beats fitting from scratch outright.
        smallest = str(GOLDEN_PARAMS["budgets"][0])
        entry = golden_pair["table"][smallest]
        assert entry["transfer"]["mape"] < entry["scratch"]["mape"]


class TestGoldenReport:
    def test_report_sha256_matches_fixture(self, smoke_report, fixture_raw):
        # Exact, not approximate: the pipeline is BLAS-free, so the
        # canonical JSON is identical across platforms.  If this fails
        # while the table test passes, something nondeterministic (or a
        # schema change) entered the report.
        assert report_sha256(smoke_report) == fixture_raw["report_sha256"]

    def test_summary_matches_fixture(self, smoke_report, fixture_raw):
        assert smoke_report["summary"] == fixture_raw["summary"]
        assert smoke_report["summary"]["n_pairs"] == 12

    def test_golden_pair_fragment_embedded_in_report(
        self, smoke_report, golden_pair
    ):
        # The standalone pair run and the full-report pair agree on the
        # numbers (the report omits the map-knot detail).
        name = (
            f"{GOLDEN_PARAMS['proxy_device']}->"
            f"{GOLDEN_PARAMS['target_device']}"
        )
        fragment = smoke_report["pairs"][name]
        assert fragment["match_budget"] == golden_pair["match_budget"]
        for b, entry in fragment["table"].items():
            assert entry["transfer"]["mape"] == pytest.approx(
                golden_pair["table"][b]["transfer"]["mape"], rel=1e-12
            )
