"""Metrics: the paper's relative accuracy, bin-wise variant, and rank corr."""

import numpy as np
import pytest

from repro import binwise_accuracy, kendall_tau, mape, paper_accuracy, rmse, spearman


class TestPaperAccuracy:
    def test_perfect_prediction_is_100(self):
        y = np.array([1.0, 2.0, 3.0])
        assert paper_accuracy(y, y) == pytest.approx(100.0)

    def test_known_value(self):
        # Relative errors 10% and 30% -> accuracies 90 and 70 -> mean 80.
        assert paper_accuracy([1.0, 1.0], [0.9, 1.3]) == pytest.approx(80.0)

    def test_clamps_at_zero_for_terrible_predictions(self):
        # A 300% error contributes 0, not a negative accuracy.
        assert paper_accuracy([1.0, 1.0], [4.0, 1.0]) == pytest.approx(50.0)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            paper_accuracy([1.0, 2.0], [1.0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            paper_accuracy([], [])


class TestBinwiseAccuracy:
    def test_groups_are_scored_separately(self):
        y_true = np.array([1.0, 1.0, 2.0, 2.0])
        y_pred = np.array([1.0, 1.0, 1.0, 1.0])  # bin b is 50% off
        result = binwise_accuracy(y_true, y_pred, ["a", "a", "b", "b"])
        assert result["a"] == pytest.approx(100.0)
        assert result["b"] == pytest.approx(50.0)

    def test_group_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            binwise_accuracy([1.0, 2.0], [1.0, 2.0], ["a"])


class TestErrorMetrics:
    def test_mape_known_value(self):
        assert mape([1.0, 2.0], [1.1, 1.8]) == pytest.approx(10.0)

    def test_rmse_known_value(self):
        assert rmse([1.0, 2.0], [1.0, 4.0]) == pytest.approx(np.sqrt(2.0))

    def test_zero_for_perfect(self):
        y = [3.0, 4.0]
        assert mape(y, y) == 0.0
        assert rmse(y, y) == 0.0


class TestSpearman:
    def test_perfect_monotone_is_one(self):
        y = np.array([1.0, 2.0, 5.0, 9.0])
        assert spearman(y, y**2) == pytest.approx(1.0)

    def test_reversed_is_minus_one(self):
        y = np.array([1.0, 2.0, 5.0, 9.0])
        assert spearman(y, -y) == pytest.approx(-1.0)

    def test_handles_ties(self):
        rho = spearman([1.0, 1.0, 2.0, 3.0], [1.0, 1.5, 2.0, 3.0])
        assert 0.9 < rho <= 1.0

    def test_constant_input_is_zero(self):
        assert spearman([1.0, 1.0, 1.0], [1.0, 2.0, 3.0]) == 0.0


class TestKendallTau:
    def test_perfect_monotone_is_one(self):
        y = np.array([1.0, 2.0, 5.0, 9.0])
        assert kendall_tau(y, y**2) == pytest.approx(1.0)

    def test_reversed_is_minus_one(self):
        y = np.array([1.0, 2.0, 5.0, 9.0])
        assert kendall_tau(y, -y) == pytest.approx(-1.0)

    def test_known_value_single_swap(self):
        # One discordant pair out of six: tau = (5 - 1) / 6.
        tau = kendall_tau([1.0, 2.0, 3.0, 4.0], [1.0, 3.0, 2.0, 4.0])
        assert tau == pytest.approx(4.0 / 6.0)

    def test_tau_b_tie_correction(self):
        # Ties only reduce the denominator, never count as discordant.
        tau = kendall_tau([1.0, 1.0, 2.0, 3.0], [1.0, 1.5, 2.0, 3.0])
        assert 0.9 < tau <= 1.0

    def test_constant_input_is_zero(self):
        assert kendall_tau([1.0, 1.0, 1.0], [1.0, 2.0, 3.0]) == 0.0

    def test_agrees_with_spearman_sign(self):
        rng = np.random.default_rng(0)
        y_true = rng.random(30)
        y_pred = y_true + 0.1 * rng.random(30)
        assert kendall_tau(y_true, y_pred) > 0.7
        assert np.sign(kendall_tau(y_true, y_pred)) == np.sign(
            spearman(y_true, y_pred)
        )
