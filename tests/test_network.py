"""Network builders and cost analysis: monotonicity and determinism."""

import pytest

from repro import (
    ArchConfig,
    BlockConfig,
    RandomSampler,
    build_network,
    num_kernels,
    space_by_name,
    total_flops,
    total_params,
    total_traffic_bytes,
    working_set_bytes,
    SPACE_NAMES,
)


@pytest.mark.parametrize("family", SPACE_NAMES)
def test_build_produces_positive_costs(family):
    spec = space_by_name(family)
    net = build_network(RandomSampler(spec, rng=0).sample())
    assert net.family == family
    assert len(net) > 0
    assert total_flops(net) > 0
    assert total_params(net) > 0
    assert total_traffic_bytes(net) > 0
    assert working_set_bytes(net) > 0
    assert num_kernels(net) == len(net.layers)


@pytest.mark.parametrize("family", SPACE_NAMES)
def test_builder_is_deterministic(family):
    spec = space_by_name(family)
    config = RandomSampler(spec, rng=1).sample()
    assert build_network(config) == build_network(config)


def test_deeper_config_costs_more(resnet_spec):
    shallow = resnet_spec.make_config([1] * 4, [3] * 4, [0.25] * 4)
    deep = resnet_spec.make_config([7] * 4, [3] * 4, [0.25] * 4)
    assert total_flops(build_network(deep)) > total_flops(build_network(shallow))
    assert num_kernels(build_network(deep)) > num_kernels(build_network(shallow))


def test_bigger_kernel_costs_more(resnet_spec):
    small = resnet_spec.make_config([2] * 4, [3] * 4, [0.25] * 4)
    big = resnet_spec.make_config([2] * 4, [7] * 4, [0.25] * 4)
    assert total_flops(build_network(big)) > total_flops(build_network(small))


def test_bigger_expand_costs_more(mobilenetv3_spec):
    small = mobilenetv3_spec.make_config([2] * 4, [5] * 4, [3.0] * 4)
    big = mobilenetv3_spec.make_config([2] * 4, [5] * 4, [6.0] * 4)
    assert total_flops(build_network(big)) > total_flops(build_network(small))


def test_resnet_joint_kernel_expand_interaction(resnet_spec):
    """The k x k conv runs on expand-scaled channels: joint superadditivity.

    The FLOP increase from raising the kernel must itself grow with the
    expand ratio — the interaction FCC preserves and marginal encodings
    lose.
    """

    def flops(k, e):
        return total_flops(build_network(resnet_spec.make_config([2] * 4, [k] * 4, [e] * 4)))

    gain_at_small_expand = flops(7, 0.2) - flops(3, 0.2)
    gain_at_big_expand = flops(7, 0.35) - flops(3, 0.35)
    assert gain_at_big_expand > gain_at_small_expand


def test_unknown_family_raises():
    config = ArchConfig(family="vgg", units=((BlockConfig(3),),))
    with pytest.raises(KeyError):
        build_network(config)
