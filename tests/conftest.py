"""Shared fixtures: Table I specs and a small measured ResNet dataset."""

from pathlib import Path

import numpy as np
import pytest

from repro import (
    LatencyDataset,
    LatencySample,
    RandomSampler,
    SimulatedDevice,
    densenet_space,
    mobilenetv3_space,
    resnet_space,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="session")
def resnet_spec():
    return resnet_space()


@pytest.fixture(scope="session")
def mobilenetv3_spec():
    return mobilenetv3_space()


@pytest.fixture(scope="session")
def densenet_spec():
    return densenet_space()


@pytest.fixture(scope="session")
def densenet_fixture_path():
    paths = sorted((REPO_ROOT / "benchmarks" / "_cache").glob("densenet-*.json"))
    assert paths, "committed densenet fixture missing from benchmarks/_cache/"
    return paths[0]


@pytest.fixture(scope="session")
def small_resnet_dataset(resnet_spec):
    """140 seeded ResNet measurements on the simulated RTX 4090.

    Session-scoped: several predictor/metric tests share it to keep the
    suite fast.  Everything downstream of this fixture is deterministic.
    """
    device = SimulatedDevice("rtx4090", seed=5)
    configs = RandomSampler(resnet_spec, rng=5).sample_batch(140)
    measured, true = device.measure_batch(
        configs, runs=15, rng=np.random.default_rng(55)
    )
    return LatencyDataset(
        [
            LatencySample(
                config=c,
                latency_s=float(m),
                device="rtx4090",
                true_latency_s=float(t),
            )
            for c, m, t in zip(configs, measured, true)
        ]
    )
