"""MicroBatcher: coalescing, timers, per-key isolation, failure fan-out.

No pytest-asyncio in the toolchain, so each test drives its own loop via
``asyncio.run`` — which also keeps every test hermetic: fresh loop, fresh
batcher, no timers leaking across tests.
"""

import asyncio

import pytest

from repro import MicroBatcher


def run(coro):
    return asyncio.run(coro)


class RecordingFlush:
    """flush_fn that records every (key, items) batch it executes."""

    def __init__(self, fn=None):
        self.calls = []
        self._fn = fn or (lambda key, items: [(key, item) for item in items])

    def __call__(self, key, items):
        self.calls.append((key, list(items)))
        return self._fn(key, items)


class TestCoalescing:
    def test_full_batches_flush_inline(self):
        flush = RecordingFlush()

        async def scenario():
            batcher = MicroBatcher(flush, max_batch=4, max_wait_s=60.0)
            futures = [batcher.submit("k", i) for i in range(8)]
            # Two full batches flushed synchronously during submission —
            # no event-loop turn, no timers needed.
            assert [len(items) for _, items in flush.calls] == [4, 4]
            return await asyncio.gather(*futures)

        results = run(scenario())
        assert results == [("k", i) for i in range(8)]

    def test_remainder_flushes_on_timer(self):
        flush = RecordingFlush()

        async def scenario():
            batcher = MicroBatcher(flush, max_batch=64, max_wait_s=0.005)
            futures = [batcher.submit("k", i) for i in range(3)]
            assert flush.calls == []  # under max_batch: parked, not flushed
            assert batcher.pending_count == 3
            results = await asyncio.gather(*futures)
            assert batcher.pending_count == 0
            return results

        assert run(scenario()) == [("k", i) for i in range(3)]
        assert [len(items) for _, items in flush.calls] == [3]

    def test_keys_batch_independently(self):
        flush = RecordingFlush()

        async def scenario():
            batcher = MicroBatcher(flush, max_batch=2, max_wait_s=0.005)
            futures = [
                batcher.submit("a", 1),
                batcher.submit("b", 2),
                batcher.submit("a", 3),  # completes a's batch of 2
            ]
            return await asyncio.gather(*futures)

        assert run(scenario()) == [("a", 1), ("b", 2), ("a", 3)]
        assert ("a", [1, 3]) in flush.calls and ("b", [2]) in flush.calls

    def test_explicit_flush_drains(self):
        flush = RecordingFlush()

        async def scenario():
            batcher = MicroBatcher(flush, max_batch=64, max_wait_s=60.0)
            futures = [batcher.submit("k", i) for i in range(5)]
            batcher.flush()
            assert batcher.pending_count == 0
            return await asyncio.gather(*futures)

        assert len(run(scenario())) == 5

    def test_accounting(self):
        flush = RecordingFlush()

        async def scenario():
            batcher = MicroBatcher(flush, max_batch=4, max_wait_s=0.005)
            await asyncio.gather(*[batcher.submit("k", i) for i in range(10)])
            return batcher

        batcher = run(scenario())
        assert batcher.submitted == 10
        assert batcher.items_flushed == 10
        assert batcher.batches == 3  # 4 + 4 + 2
        assert batcher.largest_batch == 4


class TestFailureModes:
    def test_flush_error_fans_out_to_every_future(self):
        def explode(key, items):
            raise RuntimeError("model fell over")

        async def scenario():
            batcher = MicroBatcher(explode, max_batch=2, max_wait_s=60.0)
            futures = [batcher.submit("k", i) for i in range(2)]
            results = await asyncio.gather(*futures, return_exceptions=True)
            assert all(
                isinstance(r, RuntimeError) and "fell over" in str(r)
                for r in results
            )

        run(scenario())

    def test_result_count_mismatch_is_an_error(self):
        async def scenario():
            batcher = MicroBatcher(
                lambda key, items: [1], max_batch=2, max_wait_s=60.0
            )
            futures = [batcher.submit("k", i) for i in range(2)]
            results = await asyncio.gather(*futures, return_exceptions=True)
            assert all(isinstance(r, RuntimeError) for r in results)
            assert "2 items" in str(results[0])

        run(scenario())

    def test_cancelled_future_does_not_poison_the_batch(self):
        flush = RecordingFlush()

        async def scenario():
            batcher = MicroBatcher(flush, max_batch=64, max_wait_s=0.005)
            doomed = batcher.submit("k", 0)
            survivor = batcher.submit("k", 1)
            doomed.cancel()
            assert await survivor == ("k", 1)

        run(scenario())

    def test_submit_outside_loop_rejected(self):
        batcher = MicroBatcher(lambda key, items: list(items))
        with pytest.raises(RuntimeError):
            batcher.submit("k", 1)

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError, match="max_batch"):
            MicroBatcher(lambda k, i: i, max_batch=0)
        with pytest.raises(ValueError, match="max_wait_s"):
            MicroBatcher(lambda k, i: i, max_wait_s=-1.0)
