"""`FleetRunner`: stragglers, deadlines, circuit breakers, quorum.

The load-bearing claim under test: no matter how the fleet schedule plays
out — which sessions straggle, which dispatches time out, which breakers
retire — the shards on disk are byte-identical to a serial
`CampaignRunner` on the same seed.  Everything else (the health ledger,
the makespan, the degradation flags) is bookkeeping *about* the schedule,
and must itself replay deterministically on the virtual clock.
"""

import asyncio
from pathlib import Path

import pytest

from repro import (
    CampaignError,
    CampaignReport,
    CampaignRunner,
    DeviceProfile,
    FaultPlan,
    FaultyDevice,
    FleetHealth,
    FleetRunner,
    MeasurementProtocol,
    RandomSampler,
    ReferenceSet,
    SimulatedDevice,
    VirtualClock,
    resnet_space,
)
from repro.profiling.fleet import CircuitBreaker

QUIET = DeviceProfile(
    name="quietsim",
    peak_flops=19.0e12,
    mem_bandwidth=384e9,
    cache_bytes=6e6,
    num_compute_units=48,
    wave_quantum=2_000_000,
    launch_overhead_s=3.5e-6,
    launch_exponent=0.74,
    cache_penalty=1.2,
    jitter_cv=0.004,
    outlier_prob=0.0,
    outlier_scale=0.1,
    warmup_factor=1.5,
    warmup_iters=3,
    session_sigma=0.002,
    throttle_prob=0.0,
    throttle_factor=1.0,
)

# The serial campaign's fault diet plus a fleet-level one: half the
# sessions come up as 10x stragglers (with campaign seed 42 and 4
# sessions, exactly sessions 0 and 1 draw the straggler fate).
FLEET_PLAN = FaultPlan(
    throttle_prob=0.35,
    throttle_factor=1.25,
    error_prob=0.03,
    timeout_prob=0.02,
    corrupt_prob=0.04,
    straggler_prob=0.5,
    straggler_factor=10.0,
)

PROTOCOL = MeasurementProtocol(runs=25)


@pytest.fixture(scope="module")
def spec():
    return resnet_space()


@pytest.fixture(scope="module")
def sweep_configs(spec):
    # 12 batches of 5: enough work that a straggler's half-open probe
    # still finds a queue to fail against, which is what retires it.
    return RandomSampler(spec, rng=1).sample_batch(60)


def make_runner(cls, campaign_dir, configs, spec, plan=FLEET_PLAN, **kwargs):
    device = FaultyDevice(SimulatedDevice(QUIET, seed=0), plan, seed=0)
    kwargs.setdefault("references", ReferenceSet.from_space(spec, k=2, rng=7))
    kwargs.setdefault("protocol", PROTOCOL)
    kwargs.setdefault("batch_size", 5)
    kwargs.setdefault("sleep", lambda s: None)
    return cls(device, configs, campaign_dir, seed=42, **kwargs)


def make_fleet(campaign_dir, configs, spec, **kwargs):
    kwargs.setdefault("sessions", 4)
    kwargs.setdefault("deadline_s", 2.0)
    kwargs.setdefault("nominal_batch_s", 1.0)
    kwargs.setdefault("breaker_cooldown_s", 2.0)
    return make_runner(FleetRunner, campaign_dir, configs, spec, **kwargs)


def shard_bytes(campaign_dir, n_batches):
    return [
        (Path(campaign_dir) / "shards" / f"batch-{i:04d}.json").read_bytes()
        for i in range(n_batches)
    ]


class TestVirtualClock:
    def run_coros(self, clock, *coros):
        async def main():
            for _ in coros:
                clock.add_participant()

            async def wrap(coro):
                try:
                    await coro
                finally:
                    clock.remove_participant()

            await asyncio.gather(*(wrap(c) for c in coros))

        asyncio.run(main())

    def test_sleeps_advance_virtual_time_in_order(self):
        clock = VirtualClock()
        events = []

        async def sleeper(name, delay):
            await clock.sleep(delay)
            events.append((name, clock.now()))

        self.run_coros(
            clock, sleeper("b", 2.0), sleeper("a", 1.0), sleeper("c", 3.0)
        )
        assert events == [("a", 1.0), ("b", 2.0), ("c", 3.0)]
        assert clock.now() == 3.0

    def test_ties_break_on_arrival_order(self):
        clock = VirtualClock()
        events = []

        async def sleeper(name):
            await clock.sleep(1.0)
            events.append(name)

        self.run_coros(clock, sleeper("first"), sleeper("second"))
        assert events == ["first", "second"]

    def test_sequential_sleeps_accumulate(self):
        clock = VirtualClock(start=100.0)

        async def seq():
            await clock.sleep(1.5)
            await clock.sleep(2.5)

        self.run_coros(clock, seq())
        assert clock.now() == 104.0

    def test_active_participant_blocks_the_advance(self):
        """Time must not jump while one coroutine is still computing."""
        clock = VirtualClock()
        seen = []

        async def busy_then_sleep():
            # Yield to the loop without sleeping on the virtual clock:
            # still "active", so the other sleeper must not have woken.
            for _ in range(3):
                await asyncio.sleep(0)
            seen.append(("busy-park", clock.now()))
            await clock.sleep(5.0)

        async def early_sleeper():
            await clock.sleep(1.0)
            seen.append(("woke", clock.now()))

        self.run_coros(clock, early_sleeper(), busy_then_sleep())
        assert seen == [("busy-park", 0.0), ("woke", 1.0)]

    def test_unbalanced_remove_raises(self):
        with pytest.raises(RuntimeError):
            VirtualClock().remove_participant()


class TestCircuitBreaker:
    def test_trips_after_threshold_consecutive_failures(self):
        b = CircuitBreaker(threshold=2, cooldown_s=10.0, max_openings=2)
        assert b.state(0.0) == "closed"
        b.record_failure(0.0)
        assert b.state(0.0) == "closed"
        b.record_failure(1.0)
        assert b.state(1.0) == "open"
        assert b.openings == 1

    def test_success_resets_the_failure_run(self):
        b = CircuitBreaker(threshold=2)
        b.record_failure(0.0)
        b.record_success()
        b.record_failure(1.0)
        assert b.state(1.0) == "closed"
        assert b.consecutive_failures == 1

    def test_half_open_after_cooldown_then_retired_on_failed_probe(self):
        b = CircuitBreaker(threshold=2, cooldown_s=10.0, max_openings=2)
        b.record_failure(0.0)
        b.record_failure(0.0)
        assert b.state(5.0) == "open"
        assert b.cooldown_remaining(5.0) == 5.0
        assert b.state(10.0) == "half_open"
        # A single failed probe re-trips immediately; second opening is
        # the last one this breaker gets.
        assert b.record_failure(10.0) == "retired"
        assert b.state(1e9) == "retired"

    def test_half_open_probe_success_closes(self):
        b = CircuitBreaker(threshold=2, cooldown_s=1.0, max_openings=5)
        b.record_failure(0.0)
        b.record_failure(0.0)
        assert b.state(2.0) == "half_open"
        b.record_success()
        assert b.state(2.0) == "closed"

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown_s=-1.0)
        with pytest.raises(ValueError):
            CircuitBreaker(max_openings=0)


class TestFleetByteIdentity:
    """The acceptance scenario: 4 sessions, 2 stragglers, 2 retirements —
    and not one byte of difference from the serial runner."""

    @pytest.fixture(scope="class")
    def campaigns(self, sweep_configs, spec, tmp_path_factory):
        root = tmp_path_factory.mktemp("identity")
        serial = make_runner(
            CampaignRunner, root / "serial", sweep_configs, spec
        )
        serial_result = serial.run()
        fleet = make_fleet(root / "fleet", sweep_configs, spec)
        fleet_result = fleet.run()
        return root, serial, serial_result, fleet, fleet_result

    def test_two_sessions_retired_two_survive(self, campaigns):
        _, _, _, fleet, _ = campaigns
        health = fleet.health
        assert health.n_sessions == 4 and health.quorum == 2
        assert health.retired == [0, 1]
        assert health.surviving == 2
        stragglers = [s for s in health.sessions if s.straggler]
        assert [s.session for s in stragglers] == [0, 1]
        assert all(s.straggler_factor == 10.0 for s in stragglers)
        # Every straggler dispatch hit the deadline; the survivors did
        # all the measuring.
        assert all(s.completions == 0 and s.timeouts >= 2 for s in stragglers)
        assert all(s.openings == 2 for s in stragglers)
        assert health.redispatches >= 4
        assert sum(s.completions for s in health.sessions) == fleet.n_batches

    def test_shards_byte_identical_to_serial(self, campaigns):
        root, serial, serial_result, fleet, fleet_result = campaigns
        assert serial.n_batches == fleet.n_batches == 12
        assert shard_bytes(root / "serial", 12) == shard_bytes(root / "fleet", 12)
        assert fleet_result.dataset == serial_result.dataset

    def test_not_degraded_above_quorum(self, campaigns):
        _, _, _, fleet, fleet_result = campaigns
        assert not fleet.health.degraded
        assert fleet.health.qc_passed
        assert fleet.health.degraded_batches == []
        assert not any(b.degraded for b in fleet_result.report.batches)

    def test_batch_records_carry_session_provenance(self, campaigns):
        _, _, _, fleet, fleet_result = campaigns
        batches = fleet_result.report.batches
        assert all(b.session in (2, 3) for b in batches)
        # Timed-out dispatches count: some batch needed more than one.
        assert all(b.dispatches >= 1 for b in batches)
        assert sum(b.dispatches for b in batches) == 12 + fleet.health.redispatches

    def test_ledger_round_trips_through_the_report_json(self, campaigns):
        _, _, _, fleet, _ = campaigns
        reloaded = CampaignReport.load(fleet.store.report_path)
        assert reloaded.fleet is not None
        assert reloaded.fleet.to_dict() == fleet.health.to_dict()
        clone = FleetHealth.from_dict(fleet.health.to_dict())
        assert clone.to_dict() == fleet.health.to_dict()
        # Serial reports stay fleet-free (and therefore byte-stable).
        _, serial, serial_result, _, _ = campaigns[:5]
        assert serial_result.report.fleet is None
        assert "fleet" not in serial_result.report.to_dict()

    def test_schedule_is_reproducible(self, campaigns, sweep_configs, spec, tmp_path):
        _, _, _, fleet, _ = campaigns
        again = make_fleet(tmp_path / "again", sweep_configs, spec)
        again.run()
        assert again.health.to_dict() == fleet.health.to_dict()
        assert again.health.makespan_s == fleet.health.makespan_s > 0

    def test_describe_names_every_session(self, campaigns):
        _, _, _, fleet, _ = campaigns
        text = fleet.health.describe()
        assert "2/4 sessions alive (quorum 2)" in text
        for s in fleet.health.sessions:
            assert f"session {s.session}:" in text
        assert text.count("straggler") == 2


class TestQuorumDegradation:
    def test_below_quorum_completes_flagged(self, sweep_configs, spec, tmp_path):
        """7 of 8 sessions retire; the campaign limps home on one board
        and every batch finished below quorum carries the flag."""
        runner = make_fleet(
            tmp_path / "fleet",
            sweep_configs[:30],
            spec,
            plan=FaultPlan(straggler_prob=0.95, straggler_factor=10.0),
            sessions=8,
        )
        result = runner.run()
        health = runner.health
        assert health.surviving == 1
        assert health.degraded and not health.qc_passed
        assert health.degraded_batches  # flagged, not dropped
        flagged = [b.index for b in result.report.batches if b.degraded]
        assert flagged == health.degraded_batches
        # Degradation is about fleet health, not data: bytes still match
        # a serial run exactly.
        serial = make_runner(
            CampaignRunner,
            tmp_path / "serial",
            sweep_configs[:30],
            spec,
            plan=FaultPlan(straggler_prob=0.95, straggler_factor=10.0),
        )
        serial.run()
        assert shard_bytes(tmp_path / "fleet", 6) == shard_bytes(
            tmp_path / "serial", 6
        )

    def test_zero_survivors_raises_with_the_ledger(
        self, sweep_configs, spec, tmp_path
    ):
        runner = make_fleet(
            tmp_path,
            sweep_configs[:30],
            spec,
            plan=FaultPlan(straggler_prob=1.0, straggler_factor=10.0),
            sessions=3,
        )
        with pytest.raises(CampaignError) as excinfo:
            runner.run()
        error = excinfo.value
        # The exception carries the machine-readable ledger...
        assert isinstance(error.health, FleetHealth)
        assert error.health.surviving == 0
        assert len(error.health.retired) == 3
        # ...and the human-readable one.
        message = str(error)
        assert "no surviving sessions" in message
        assert "0/3 sessions alive" in message
        assert "session 2: retired straggler" in message

    def test_stalled_fleet_is_resumable(self, sweep_configs, spec, tmp_path):
        """After a total fleet loss, a healthy fleet (or a serial runner)
        picks the campaign up from the durable manifest."""
        dead = make_fleet(
            tmp_path / "fleet",
            sweep_configs[:30],
            spec,
            plan=FaultPlan(straggler_prob=1.0, straggler_factor=10.0),
            sessions=2,
        )
        with pytest.raises(CampaignError):
            dead.run()
        healthy = make_fleet(
            tmp_path / "fleet",
            sweep_configs[:30],
            spec,
            plan=FaultPlan(),
        )
        healthy.run()
        assert healthy.complete
        serial = make_runner(
            CampaignRunner, tmp_path / "serial", sweep_configs[:30], spec,
            plan=FaultPlan(),
        )
        serial.run()
        assert shard_bytes(tmp_path / "fleet", 6) == shard_bytes(
            tmp_path / "serial", 6
        )


class TestFleetResume:
    def test_torn_write_recovery(self, sweep_configs, spec, tmp_path):
        """Kill window between shard write and manifest commit: the shard
        is on disk, the manifest never heard of it.  A resumed fleet must
        end byte-identical without re-measuring the batches the manifest
        does know about."""
        full = make_fleet(tmp_path / "full", sweep_configs, spec)
        full.run()
        before = shard_bytes(tmp_path / "full", 12)

        victim = make_fleet(tmp_path / "torn", sweep_configs, spec)
        victim.run()
        manifest = victim.store.load_manifest()
        del manifest["batches"]["7"]  # shard file stays: the torn write
        victim.store.save_manifest(manifest)

        resumed = make_fleet(tmp_path / "torn", sweep_configs, spec)
        result = resumed.run()
        assert resumed.complete
        assert shard_bytes(tmp_path / "torn", 12) == before
        # Only the torn batch was re-measured; the other 11 were
        # inherited from the manifest untouched.
        records = {b.index: b for b in result.report.batches}
        assert [i for i, b in sorted(records.items()) if not b.resumed] == [7]
        assert sum(s.dispatches for s in resumed.health.sessions) >= 1

    def test_fleet_resumes_a_serial_campaign_and_vice_versa(
        self, sweep_configs, spec, tmp_path
    ):
        """Same fingerprint, same manifest, same shards: the two runners
        are interchangeable mid-campaign."""
        serial_ref = make_runner(
            CampaignRunner, tmp_path / "ref", sweep_configs, spec
        )
        serial_ref.run()
        reference = shard_bytes(tmp_path / "ref", 12)

        # Serial start, fleet finish.
        make_runner(
            CampaignRunner, tmp_path / "mix", sweep_configs, spec
        ).run(max_batches=3)
        mixed = make_fleet(tmp_path / "mix", sweep_configs, spec)
        mixed_result = mixed.run()
        assert mixed.complete
        assert shard_bytes(tmp_path / "mix", 12) == reference
        resumed_flags = [b.resumed for b in mixed_result.report.batches]
        assert resumed_flags == [True] * 3 + [False] * 9

        # Fleet start, serial finish.
        make_fleet(tmp_path / "mix2", sweep_configs, spec).run(max_batches=5)
        tail = make_runner(CampaignRunner, tmp_path / "mix2", sweep_configs, spec)
        tail.run()
        assert tail.complete
        assert shard_bytes(tmp_path / "mix2", 12) == reference

    def test_nothing_pending_still_reports_health(
        self, sweep_configs, spec, tmp_path
    ):
        make_fleet(tmp_path, sweep_configs[:10], spec).run()
        rerun = make_fleet(tmp_path, sweep_configs[:10], spec)
        result = rerun.run()
        assert rerun.health is not None
        assert rerun.health.makespan_s == 0.0
        assert all(b.resumed for b in result.report.batches)


class TestFleetGuards:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"sessions": 0},
            {"deadline_s": 0.0},
            {"nominal_batch_s": -1.0},
            {"contention": -0.5},
            {"quorum_fraction": 0.0},
            {"quorum_fraction": 1.5},
        ],
    )
    def test_constructor_validation(self, sweep_configs, spec, tmp_path, kwargs):
        with pytest.raises(ValueError):
            make_fleet(tmp_path, sweep_configs[:5], spec, **kwargs)

    def test_quorum_rounds_up(self, sweep_configs, spec, tmp_path):
        runner = make_fleet(
            tmp_path, sweep_configs[:5], spec, sessions=5, quorum_fraction=0.5
        )
        assert runner.quorum == 3

    def test_fleet_knobs_do_not_enter_the_fingerprint(
        self, sweep_configs, spec, tmp_path
    ):
        serial = make_runner(CampaignRunner, tmp_path / "a", sweep_configs, spec)
        fleet = make_fleet(tmp_path / "b", sweep_configs, spec, sessions=7)
        assert serial.fingerprint() == fleet.fingerprint()

    def test_contention_slows_concurrent_dispatches(
        self, sweep_configs, spec, tmp_path
    ):
        """Shared-host interference stretches the makespan but, like every
        other fleet knob, never the bytes."""
        calm = make_fleet(
            tmp_path / "calm", sweep_configs[:20], spec,
            plan=FaultPlan(), deadline_s=50.0,
        )
        calm.run()
        contended = make_fleet(
            tmp_path / "cont", sweep_configs[:20], spec,
            plan=FaultPlan(), deadline_s=50.0, contention=0.5,
        )
        contended.run()
        assert contended.health.makespan_s > calm.health.makespan_s
        assert shard_bytes(tmp_path / "calm", 4) == shard_bytes(
            tmp_path / "cont", 4
        )
