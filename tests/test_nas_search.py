"""Search drivers: determinism, front validity, and oracle interchange."""

import numpy as np
import pytest

from repro import (
    DeviceOracle,
    EvolutionarySearch,
    RandomSearch,
    SimulatedDevice,
    SyntheticAccuracyProxy,
    space_by_name,
)


class CountingOracle:
    """Cheap analytical stand-in: latency proportional to total blocks."""

    name = "counting"

    def __init__(self):
        self.calls = 0

    def latency(self, config):
        return self.latency_batch([config])[0]

    def latency_batch(self, configs):
        self.calls += len(configs)
        return np.array(
            [1e-3 * c.total_blocks + 1e-5 * sum(
                b.kernel_size for _, b in c.iter_blocks()
            ) for c in configs]
        )


@pytest.fixture
def spec():
    return space_by_name("resnet")


@pytest.fixture
def proxy(spec):
    return SyntheticAccuracyProxy(spec, seed=0)


class TestRandomSearch:
    def test_budget_is_respected(self, spec, proxy):
        result = RandomSearch(spec, CountingOracle(), proxy, budget=17, seed=1).run()
        assert result.n_evaluations == 17
        assert len(result.population) == 17
        assert all(spec.contains(c.config) for c in result.evaluated)

    def test_seeded_run_is_reproducible(self, spec, proxy):
        a = RandomSearch(spec, CountingOracle(), proxy, budget=12, seed=3).run()
        b = RandomSearch(spec, CountingOracle(), proxy, budget=12, seed=3).run()
        assert a.evaluated == b.evaluated
        assert a.front == b.front

    def test_different_seeds_differ(self, spec, proxy):
        a = RandomSearch(spec, CountingOracle(), proxy, budget=12, seed=0).run()
        b = RandomSearch(spec, CountingOracle(), proxy, budget=12, seed=1).run()
        assert a.evaluated != b.evaluated

    def test_front_not_dominated_by_any_evaluation(self, spec, proxy):
        result = RandomSearch(spec, CountingOracle(), proxy, budget=25, seed=2).run()
        evaluated_points = [c.point() for c in result.evaluated]
        for p in result.front:
            assert not any(q.dominates(p) for q in evaluated_points)

    def test_invalid_budget_rejected(self, spec, proxy):
        with pytest.raises(ValueError, match="budget"):
            RandomSearch(spec, CountingOracle(), proxy, budget=0)


class TestEvolutionarySearch:
    def test_population_and_budget_accounting(self, spec, proxy):
        oracle = CountingOracle()
        result = EvolutionarySearch(
            spec, oracle, proxy, population_size=8, generations=3, seed=0
        ).run()
        # init + one offspring batch per generation
        assert result.n_evaluations == 8 * (3 + 1)
        assert oracle.calls == result.n_evaluations
        assert len(result.population) == 8
        assert all(spec.contains(c.config) for c in result.evaluated)

    def test_seeded_run_is_reproducible(self, spec, proxy):
        kwargs = dict(population_size=6, generations=2, seed=11)
        a = EvolutionarySearch(spec, CountingOracle(), proxy, **kwargs).run()
        b = EvolutionarySearch(spec, CountingOracle(), proxy, **kwargs).run()
        assert a.evaluated == b.evaluated
        assert a.population == b.population
        assert a.front == b.front

    def test_front_not_dominated_by_any_evaluation(self, spec, proxy):
        result = EvolutionarySearch(
            spec, CountingOracle(), proxy, population_size=8, generations=3, seed=4
        ).run()
        evaluated_points = [c.point() for c in result.evaluated]
        for p in result.front:
            assert not any(q.dominates(p) for q in evaluated_points)

    def test_survivors_are_the_elite(self, spec, proxy):
        # Every survivor must weakly beat (by rank) any discarded candidate
        # from the final selection pool; cheapest observable: the best
        # latency ever evaluated survives in the front.
        result = EvolutionarySearch(
            spec, CountingOracle(), proxy, population_size=8, generations=3, seed=7
        ).run()
        best_latency = min(c.latency_s for c in result.evaluated)
        assert min(p.latency_s for p in result.front) == best_latency

    def test_accepts_device_oracle(self, spec, proxy):
        device = SimulatedDevice("rtx4090", seed=0)
        result = EvolutionarySearch(
            spec, DeviceOracle(device), proxy, population_size=4, generations=1, seed=0
        ).run()
        assert result.n_evaluations == 8
        assert all(c.latency_s > 0 for c in result.evaluated)

    def test_oracle_changes_outcome_search_stays_seeded(self, spec, proxy):
        # Same seed, different oracle: the *initial* population is identical
        # (drawn before any latency is seen); later generations diverge.
        kwargs = dict(population_size=6, generations=2, seed=5)
        a = EvolutionarySearch(spec, CountingOracle(), proxy, **kwargs).run()
        device = SimulatedDevice("rtx4090", seed=0)
        b = EvolutionarySearch(spec, DeviceOracle(device), proxy, **kwargs).run()
        init_a = [c.config for c in a.evaluated[:6]]
        init_b = [c.config for c in b.evaluated[:6]]
        assert init_a == init_b

    def test_mismatched_proxy_rejected(self, spec):
        foreign = SyntheticAccuracyProxy(space_by_name("densenet"))
        with pytest.raises(ValueError, match="same space"):
            EvolutionarySearch(spec, CountingOracle(), foreign)

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            (dict(population_size=1), "population_size"),
            (dict(generations=0), "generations"),
            (dict(tournament_size=0), "tournament_size"),
            (dict(crossover_prob=1.5), "crossover_prob"),
        ],
    )
    def test_invalid_parameters_rejected(self, spec, proxy, kwargs, match):
        with pytest.raises(ValueError, match=match):
            EvolutionarySearch(spec, CountingOracle(), proxy, **kwargs)
