"""Fault-matrix tests for search checkpointing and kill/resume.

Every scenario asserts the strongest possible property: the resumed
search's `SearchResult.to_json()` is **byte-identical** to the same
search run uninterrupted with no checkpointing at all.  The matrix:

* process death mid-generation (an oracle that starts raising after a
  set number of batch calls — the checkpoint directory is left exactly
  as a SIGKILL would leave it),
* a torn (truncated) step file from a crash during a write,
* a schema-corrupt step file (valid JSON, wrong step number),
* a gap in the step sequence (manual deletion / partial rsync),
* a torn manifest (directory quarantined wholesale, run starts fresh),
* a fingerprint mismatch (foreign directory refused loudly).

Also covers the quarantine bookkeeping itself: corrupt files are renamed
``*.corrupt``, never deleted, and never re-read as state.
"""

import json
from pathlib import Path

import pytest

from repro import (
    DeviceOracle,
    EvolutionarySearch,
    RandomSearch,
    SearchCheckpointError,
    SearchConstraints,
    SimulatedDevice,
    SyntheticAccuracyProxy,
    space_by_name,
)
from repro.nas.checkpoint import SearchCheckpoint


class DyingOracle:
    """Delegates to a real oracle until its fuse runs out, then raises.

    Models a worker killed mid-search: the generations completed before
    the fuse burned are durably checkpointed, the in-flight one is lost.
    """

    def __init__(self, inner, fuse: int):
        self._inner = inner
        self._fuse = int(fuse)
        self.calls = 0
        self.name = inner.name  # keep the search fingerprint identical

    def latency_batch(self, configs):
        if self.calls >= self._fuse:
            raise RuntimeError("oracle died mid-search")
        self.calls += 1
        return self._inner.latency_batch(configs)

    def latency(self, config):
        return float(self.latency_batch([config])[0])


@pytest.fixture(scope="module")
def harness():
    spec = space_by_name("resnet")
    device = SimulatedDevice("rtx4090", seed=0)
    return spec, DeviceOracle(device), SyntheticAccuracyProxy(spec, seed=0)


EVO_PARAMS = dict(population_size=6, generations=3, seed=11)
RAND_PARAMS = dict(budget=12, seed=11)


def evo(harness, **overrides):
    spec, oracle, proxy = harness
    kwargs = {**EVO_PARAMS, **overrides}
    oracle = kwargs.pop("oracle", oracle)
    return EvolutionarySearch(spec, oracle, proxy, **kwargs)


def rand(harness, **overrides):
    spec, oracle, proxy = harness
    kwargs = {**RAND_PARAMS, **overrides}
    oracle = kwargs.pop("oracle", oracle)
    return RandomSearch(spec, oracle, proxy, **kwargs)


@pytest.fixture(scope="module")
def evo_baseline(harness):
    return evo(harness).run().to_json()


@pytest.fixture(scope="module")
def rand_baseline(harness):
    return rand(harness).run().to_json()


def corrupt_files(root: Path):
    return sorted(p.name for p in root.glob("*.corrupt*"))


class TestKillMidGeneration:
    def test_evolutionary_died_then_resumed(self, harness, evo_baseline, tmp_path):
        spec, oracle, proxy = harness
        ckpt = tmp_path / "ckpt"
        # Fuse of 2 batch calls: generation 0 + generation 1 evaluate,
        # generation 2 dies before anything of it hits disk.
        dying = DyingOracle(oracle, fuse=2)
        with pytest.raises(RuntimeError, match="died mid-search"):
            evo(harness, oracle=dying, checkpoint_dir=ckpt).run()
        assert (ckpt / "step_00001.json").exists()
        assert not (ckpt / "step_00002.json").exists()
        resumed = evo(harness, checkpoint_dir=ckpt).run()
        assert resumed.to_json() == evo_baseline

    def test_random_died_then_resumed(self, harness, rand_baseline, tmp_path):
        spec, oracle, proxy = harness
        ckpt = tmp_path / "ckpt"
        dying = DyingOracle(oracle, fuse=2)
        with pytest.raises(RuntimeError, match="died mid-search"):
            rand(
                harness, oracle=dying, checkpoint_dir=ckpt, checkpoint_every=4
            ).run()
        resumed = rand(harness, checkpoint_dir=ckpt, checkpoint_every=4).run()
        assert resumed.to_json() == rand_baseline

    def test_dead_oracle_made_no_progress(self, harness, tmp_path):
        """Fuse of zero: nothing durable, resume == from-scratch run."""
        spec, oracle, proxy = harness
        ckpt = tmp_path / "ckpt"
        dying = DyingOracle(oracle, fuse=0)
        with pytest.raises(RuntimeError):
            evo(harness, oracle=dying, checkpoint_dir=ckpt).run()
        store = SearchCheckpoint(
            ckpt, fingerprint=evo(harness, checkpoint_dir=ckpt).fingerprint(),
            driver="evolutionary",
        )
        assert store.load_state() is None


class TestTornStepFile:
    def test_truncated_last_step_quarantined_and_rerun(
        self, harness, evo_baseline, tmp_path
    ):
        ckpt = tmp_path / "ckpt"
        evo(harness, checkpoint_dir=ckpt).run(max_generations=2)
        victim = ckpt / "step_00002.json"
        victim.write_text(victim.read_text()[: 40])  # torn mid-write
        resumed = evo(harness, checkpoint_dir=ckpt).run()
        assert resumed.to_json() == evo_baseline
        assert "step_00002.json.corrupt" in corrupt_files(ckpt)

    def test_schema_corrupt_step_treated_as_torn(
        self, harness, evo_baseline, tmp_path
    ):
        ckpt = tmp_path / "ckpt"
        evo(harness, checkpoint_dir=ckpt).run(max_generations=1)
        victim = ckpt / "step_00001.json"
        payload = json.loads(victim.read_text())
        payload["step"] = 5  # valid JSON, wrong identity
        victim.write_text(json.dumps(payload, sort_keys=True))
        resumed = evo(harness, checkpoint_dir=ckpt).run()
        assert resumed.to_json() == evo_baseline
        assert "step_00001.json.corrupt" in corrupt_files(ckpt)

    def test_gap_in_steps_quarantines_downstream(
        self, harness, evo_baseline, tmp_path
    ):
        ckpt = tmp_path / "ckpt"
        evo(harness, checkpoint_dir=ckpt).run()  # complete: steps 0..3
        (ckpt / "step_00001.json").unlink()
        resumed = evo(harness, checkpoint_dir=ckpt).run()
        assert resumed.to_json() == evo_baseline
        # Steps 2 and 3 were causally downstream of the missing step.
        names = corrupt_files(ckpt)
        assert "step_00002.json.corrupt" in names
        assert "step_00003.json.corrupt" in names

    def test_torn_random_chunk(self, harness, rand_baseline, tmp_path):
        ckpt = tmp_path / "ckpt"
        rand(harness, checkpoint_dir=ckpt, checkpoint_every=4).run(max_chunks=2)
        victim = ckpt / "step_00001.json"
        victim.write_text("{")
        resumed = rand(harness, checkpoint_dir=ckpt, checkpoint_every=4).run()
        assert resumed.to_json() == rand_baseline


class TestManifestFaults:
    def test_torn_manifest_quarantines_directory(
        self, harness, evo_baseline, tmp_path
    ):
        ckpt = tmp_path / "ckpt"
        evo(harness, checkpoint_dir=ckpt).run(max_generations=2)
        (ckpt / "manifest.json").write_text("{ not json")
        resumed = evo(harness, checkpoint_dir=ckpt).run()
        assert resumed.to_json() == evo_baseline
        names = corrupt_files(ckpt)
        assert "manifest.json.corrupt" in names
        # The steps written under the untrusted manifest went with it.
        assert any(n.startswith("step_00000") for n in names)

    def test_foreign_fingerprint_refused(self, harness, tmp_path):
        ckpt = tmp_path / "ckpt"
        evo(harness, checkpoint_dir=ckpt).run(max_generations=1)
        with pytest.raises(SearchCheckpointError, match="different search"):
            evo(harness, seed=99, checkpoint_dir=ckpt).run()

    def test_constraints_change_fingerprint(self, harness, tmp_path):
        ckpt = tmp_path / "ckpt"
        evo(harness, checkpoint_dir=ckpt).run(max_generations=1)
        with pytest.raises(SearchCheckpointError):
            evo(
                harness,
                checkpoint_dir=ckpt,
                constraints=SearchConstraints(max_latency_s=0.001),
            ).run()

    def test_warm_start_changes_fingerprint(self, harness, tmp_path):
        spec, oracle, proxy = harness
        ckpt = tmp_path / "ckpt"
        evo(harness, checkpoint_dir=ckpt).run(max_generations=1)
        from repro.archspace import RandomSampler

        warm = RandomSampler(spec, rng=0).sample_batch(2)
        with pytest.raises(SearchCheckpointError):
            evo(harness, checkpoint_dir=ckpt, warm_start=warm).run()


class TestResumeIsIncremental:
    def test_resume_does_not_repeat_completed_generations(
        self, harness, evo_baseline, tmp_path
    ):
        """The resumed run only pays for the generations it actually lost."""
        spec, oracle, proxy = harness
        ckpt = tmp_path / "ckpt"
        evo(harness, checkpoint_dir=ckpt).run(max_generations=2)
        counting = DyingOracle(oracle, fuse=10_000)
        resumed = evo(harness, oracle=counting, checkpoint_dir=ckpt).run()
        assert resumed.to_json() == evo_baseline
        # Generations 0..2 were durable; only generation 3 re-evaluates.
        assert counting.calls == 1

    def test_completed_run_resumes_to_itself_without_oracle_calls(
        self, harness, evo_baseline, tmp_path
    ):
        spec, oracle, proxy = harness
        ckpt = tmp_path / "ckpt"
        evo(harness, checkpoint_dir=ckpt).run()
        counting = DyingOracle(oracle, fuse=10_000)
        resumed = evo(harness, oracle=counting, checkpoint_dir=ckpt).run()
        assert resumed.to_json() == evo_baseline
        assert counting.calls == 0
