"""PredictionServer end to end: correctness, caching, hot-swap, TCP, CLI.

The load-bearing assertions mirror the acceptance criteria:

* micro-batched responses are bit-identical to calling the same model's
  ``encode_batch`` + ``predict`` on the same rows directly;
* a hot-swap mid-load never tears a batch — every response belongs to
  exactly one model version and matches that version's model exactly —
  and never drops a request;
* swapping in the *same* model payload leaves predictions byte-identical
  while the version advances.

Each test drives its own ``asyncio.run`` loop (no pytest-asyncio here).
"""

import asyncio
import json
from collections import defaultdict

import numpy as np
import pytest

from repro import (
    CARTPredictor,
    MLPPredictor,
    ModelRegistry,
    PredictionServer,
    RandomSampler,
    ServeKey,
    encoder_for,
    resnet_space,
)
from repro.serve import request_lines
from repro.serve.__main__ import key_from_filename, load_models_dir, main

SPACE, DEVICE, ENCODING = "resnet", "raspberrypi4", "fcc"
KEY = ServeKey(SPACE, DEVICE, ENCODING)


@pytest.fixture(scope="module")
def spec():
    return resnet_space()


@pytest.fixture(scope="module")
def configs(spec):
    """96 distinct resnet configs (distinct so cache/dedupe effects are
    explicit per test, and 96 = 12 full batches of 8 for deterministic
    grouping)."""
    seen, unique = set(), []
    sampler = RandomSampler(spec, rng=17)
    while len(unique) < 96:
        config = sampler.sample()
        ck = config.cache_key()
        if ck not in seen:
            seen.add(ck)
            unique.append(config)
    return unique


@pytest.fixture(scope="module")
def training(spec, configs):
    X = encoder_for(ENCODING, spec).encode_batch(configs, spec)
    y = X.sum(axis=1) * 0.01 + 3.0
    return X, y


@pytest.fixture(scope="module")
def model_a(training):
    X, y = training
    return CARTPredictor().fit(X, y)


@pytest.fixture(scope="module")
def model_b(training):
    X, y = training
    # Trained on shifted targets: predictions differ from model_a everywhere.
    return CARTPredictor().fit(X, y * 2.0 + 1.0)


def make_server(model, **kwargs):
    registry = ModelRegistry()
    registry.register(KEY, model)
    kwargs.setdefault("max_batch", 8)
    kwargs.setdefault("max_wait_s", 0.001)
    return PredictionServer(registry, **kwargs)


def group_by_batch(configs, results):
    """(config, result) pairs grouped per flushed batch, submission order."""
    batches = defaultdict(list)
    for config, result in zip(configs, results):
        batches[result.batch_seq].append((config, result))
    return batches


class TestRequestPath:
    def test_batched_predictions_bit_identical_to_direct(
        self, spec, configs, model_a
    ):
        server = make_server(model_a)

        async def scenario():
            return await server.predict_many(SPACE, DEVICE, ENCODING, configs)

        results = asyncio.run(scenario())
        assert len(results) == len(configs)
        assert all(r.model_version == 1 and not r.cached for r in results)
        encoder = encoder_for(ENCODING, spec)
        for batch in group_by_batch(configs, results).values():
            rows = [c for c, _ in batch]
            direct = model_a.predict(encoder.encode_batch(rows, spec))
            np.testing.assert_array_equal(
                np.array([r.latency_s for _, r in batch]), direct
            )
        # Micro-batching actually happened: far fewer flushes than requests.
        assert server.stats()["batches"] == len(configs) // 8

    def test_repeat_queries_short_circuit(self, configs, model_a):
        server = make_server(model_a)

        async def scenario():
            first = await server.predict_many(SPACE, DEVICE, ENCODING, configs[:10])
            second = await server.predict_many(SPACE, DEVICE, ENCODING, configs[:10])
            return first, second

        first, second = asyncio.run(scenario())
        assert all(r.cached for r in second)
        assert [r.latency_s for r in second] == [r.latency_s for r in first]
        assert [r.model_version for r in second] == [1] * 10
        stats = server.stats()
        assert stats["cache_hits"] == 10
        assert stats["items_flushed"] == 10  # second round never hit the batcher

    def test_duplicates_in_one_batch_predicted_once(self, configs, model_a):
        server = make_server(model_a, max_batch=64)

        async def scenario():
            return await server.predict_many(
                SPACE, DEVICE, ENCODING, [configs[0]] * 40
            )

        results = asyncio.run(scenario())
        assert len({r.latency_s for r in results}) == 1
        stats = server.stats()
        assert stats["batches"] == 1 and stats["items_flushed"] == 40

    def test_predict_single_sugar(self, spec, configs, model_a):
        server = make_server(model_a)

        async def scenario():
            return await server.predict(SPACE, DEVICE, ENCODING, configs[0])

        result = asyncio.run(scenario())
        encoder = encoder_for(ENCODING, spec)
        assert result.latency_s == model_a.predict(
            encoder.encode_batch([configs[0]], spec)
        )[0]

    def test_unknown_key_fails_synchronously(self, configs, model_a):
        server = make_server(model_a)

        async def scenario():
            with pytest.raises(KeyError, match="no model registered"):
                server.submit(SPACE, "imaginary-device", ENCODING, configs[0])
            with pytest.raises(KeyError):
                server.submit("no-such-space", DEVICE, ENCODING, configs[0])

        asyncio.run(scenario())

    def test_drain_flushes_pending(self, configs, model_a):
        server = make_server(model_a, max_batch=512, max_wait_s=60.0)

        async def scenario():
            futures = [
                server.submit(SPACE, DEVICE, ENCODING, c) for c in configs[:5]
            ]
            server.drain()
            return await asyncio.gather(*futures)

        assert len(asyncio.run(scenario())) == 5


class TestHotSwap:
    def test_swap_mid_stream_no_torn_batches(
        self, spec, configs, model_a, model_b
    ):
        """Swap while a micro-batch is partially filled: nothing dropped,
        every batch single-versioned, every value exactly the claimed
        version's model output."""
        server = make_server(model_a)

        async def scenario():
            futures = []
            for i, config in enumerate(configs):
                futures.append(server.submit(SPACE, DEVICE, ENCODING, config))
                if i == 42:  # 42 % 8 != 0: a partial batch is pending now
                    server.registry.swap(KEY, model_b)
            return await asyncio.gather(*futures)

        results = asyncio.run(scenario())
        assert len(results) == len(configs)  # zero dropped
        versions = {r.model_version for r in results}
        assert versions == {1, 2}
        encoder = encoder_for(ENCODING, spec)
        models = {1: model_a, 2: model_b}
        for batch in group_by_batch(configs, results).values():
            batch_versions = {r.model_version for _, r in batch}
            assert len(batch_versions) == 1  # no torn batches
            model = models[batch_versions.pop()]
            rows = [c for c, _ in batch]
            np.testing.assert_array_equal(
                np.array([r.latency_s for _, r in batch]),
                model.predict(encoder.encode_batch(rows, spec)),
            )

    def test_swap_under_concurrent_producers(
        self, spec, configs, model_a, model_b
    ):
        """Several producer tasks stream queries while another task swaps
        the model: every response resolves and no batch mixes versions."""
        server = make_server(model_a, max_batch=4)
        encoder = encoder_for(ENCODING, spec)
        # Per-config expected values per version.  CART prediction is a
        # per-row tree walk, so single-row and batched predictions are
        # bit-identical — exact equality is safe however rows were grouped.
        expected = {
            version: {
                config.cache_key(): model.predict(
                    encoder.encode_batch([config], spec)
                )[0]
                for config in configs
            }
            for version, model in ((1, model_a), (2, model_b))
        }

        async def producer(chunk):
            collected = []
            for config in chunk:
                collected.append(
                    (config, await server.submit(SPACE, DEVICE, ENCODING, config))
                )
                await asyncio.sleep(0)  # let other producers interleave
            return collected

        async def swapper():
            await asyncio.sleep(0.002)
            server.registry.swap(KEY, model_b)

        async def scenario():
            chunks = [configs[i::3] for i in range(3)]
            produced = await asyncio.gather(
                producer(chunks[0]), producer(chunks[1]), producer(chunks[2]),
                swapper(),
            )
            return [pair for chunk in produced[:3] for pair in chunk]

        pairs = asyncio.run(scenario())
        assert len(pairs) == len(configs)
        by_batch = defaultdict(set)
        for config, result in pairs:
            if result.cached:
                continue
            by_batch[result.batch_seq].add(result.model_version)
            assert result.latency_s == expected[result.model_version][
                config.cache_key()
            ]
        assert all(len(v) == 1 for v in by_batch.values())

    def test_swap_invalidates_prediction_cache(self, configs, model_a, model_b):
        server = make_server(model_a)

        async def scenario():
            before = await server.predict(SPACE, DEVICE, ENCODING, configs[0])
            cached = await server.predict(SPACE, DEVICE, ENCODING, configs[0])
            server.registry.swap(KEY, model_b)
            after = await server.predict(SPACE, DEVICE, ENCODING, configs[0])
            return before, cached, after

        before, cached, after = asyncio.run(scenario())
        assert cached.cached and cached.model_version == 1
        assert not after.cached and after.model_version == 2
        assert after.latency_s != before.latency_s

    def test_same_payload_swap_serves_byte_identical(
        self, configs, training, tmp_path
    ):
        """Acceptance: hot-swapping the same model payload leaves every
        served prediction byte-identical; only the version advances."""
        X, y = training
        path = tmp_path / "model.json"
        MLPPredictor(epochs=15).fit(X, y).save(path)

        registry = ModelRegistry()
        registry.load(KEY, path)
        server = PredictionServer(registry, max_batch=8, max_wait_s=0.001)

        async def scenario():
            first = await server.predict_many(SPACE, DEVICE, ENCODING, configs)
            registry.swap(KEY, MLPPredictor.load(path))
            second = await server.predict_many(SPACE, DEVICE, ENCODING, configs)
            return first, second

        first, second = asyncio.run(scenario())
        assert all(not r.cached for r in second)  # swap dropped the LRU
        a = np.array([r.latency_s for r in first])
        b = np.array([r.latency_s for r in second])
        assert a.tobytes() == b.tobytes()
        assert {r.model_version for r in first} == {1}
        assert {r.model_version for r in second} == {2}


class TestTcpFrontEnd:
    def test_json_lines_round_trip(self, spec, configs, model_a):
        server = make_server(model_a)
        encoder = encoder_for(ENCODING, spec)

        async def scenario():
            tcp = await server.start_tcp(port=0)
            port = tcp.sockets[0].getsockname()[1]
            requests = [
                {
                    "id": i,
                    "space": SPACE,
                    "device": DEVICE,
                    "encoding": ENCODING,
                    "config": configs[i].to_dict(),
                }
                for i in range(12)
            ]
            requests.append({"id": "stats", "op": "stats"})
            requests.append({"id": "models", "op": "models"})
            requests.append({"id": "bad", "op": "predict", "space": "nope",
                             "device": DEVICE, "encoding": ENCODING,
                             "config": configs[0].to_dict()})
            replies = await request_lines("127.0.0.1", port, requests)
            tcp.close()
            await tcp.wait_closed()
            return replies

        replies = asyncio.run(scenario())
        by_id = {r["id"]: r for r in replies}
        direct = model_a.predict(encoder.encode_batch(configs[:12], spec))
        for i in range(12):
            assert by_id[i]["latency_s"] == direct[i]
            assert by_id[i]["model_version"] == 1
        assert by_id["stats"]["requests"] >= 12
        assert by_id["models"]["models"][0]["key"] == str(KEY)
        assert "error" in by_id["bad"] and "KeyError" in by_id["bad"]["error"]

    def test_malformed_line_is_isolated(self, configs, model_a):
        server = make_server(model_a)

        async def scenario():
            tcp = await server.start_tcp(port=0)
            port = tcp.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(b"this is not json\n")
            writer.write(
                json.dumps(
                    {
                        "id": 1,
                        "space": SPACE,
                        "device": DEVICE,
                        "encoding": ENCODING,
                        "config": configs[0].to_dict(),
                    }
                ).encode()
                + b"\n"
            )
            await writer.drain()
            replies = [json.loads(await reader.readline()) for _ in range(2)]
            writer.close()
            await writer.wait_closed()
            tcp.close()
            await tcp.wait_closed()
            return replies

        replies = asyncio.run(scenario())
        by_id = {r["id"]: r for r in replies}
        assert "bad JSON" in by_id[None]["error"]
        assert "latency_s" in by_id[1]


class TestCli:
    def test_key_from_filename(self, tmp_path):
        path = tmp_path / "resnet__raspberrypi4__fcc.json"
        assert key_from_filename(path) == KEY
        with pytest.raises(ValueError, match="not <space>__<device>__<encoding>"):
            key_from_filename(tmp_path / "resnet-fcc.json")

    def test_load_models_dir(self, training, tmp_path):
        X, y = training
        MLPPredictor(epochs=5).fit(X, y).save(
            tmp_path / "resnet__raspberrypi4__fcc.json"
        )
        MLPPredictor(epochs=5).fit(X, y).save(
            tmp_path / "resnet__rtx4090__fcc.json"
        )
        registry = ModelRegistry()
        assert load_models_dir(registry, tmp_path) == 2
        assert len(registry) == 2
        assert registry.watched()[KEY].name == "resnet__raspberrypi4__fcc.json"

    def test_main_refuses_empty_models_dir(self, tmp_path, capsys):
        assert main(["--models", str(tmp_path)]) == 1
        assert "no *.json model payloads" in capsys.readouterr().err
