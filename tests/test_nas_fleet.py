"""Tests for `SearchFleet`: many-seed search with dispersion aggregation.

The load-bearing property throughout: *execution strategy never enters
the result bytes*.  A serial fleet, a parallel fleet, a fleet whose pool
broke and fell back to serial, and a killed-and-resumed fleet must all
report the same members and the same dispersion bands.  The broken-pool
scenario reuses the campaign suite's worker-killing pattern (`os._exit`
in any non-parent pid under a fork context).
"""

import json
import os

import pytest

from repro import (
    DeviceOracle,
    FleetResult,
    SearchConstraints,
    SimulatedDevice,
    SyntheticAccuracyProxy,
    space_by_name,
)
from repro.nas.fleet import FleetError, SearchFleet, format_fleet_report

EVO_PARAMS = {"population_size": 6, "generations": 2}
SEEDS = [3, 1, 2]


@pytest.fixture(scope="module")
def harness():
    spec = space_by_name("resnet")
    device = SimulatedDevice("rtx4090", seed=0)
    return spec, DeviceOracle(device), SyntheticAccuracyProxy(spec, seed=0)


def make_fleet(harness, **overrides):
    spec, oracle, proxy = harness
    kwargs = dict(
        driver="evolutionary",
        search_params=EVO_PARAMS,
        seeds=SEEDS,
    )
    kwargs.update(overrides)
    oracle = kwargs.pop("oracle", oracle)
    return SearchFleet(spec, oracle, proxy, **kwargs)


@pytest.fixture(scope="module")
def serial_json(harness):
    return make_fleet(harness).run().to_json()


class TestValidation:
    def test_unknown_driver_rejected(self, harness):
        with pytest.raises(ValueError, match="driver"):
            make_fleet(harness, driver="annealing")

    def test_duplicate_seeds_rejected(self, harness):
        with pytest.raises(ValueError, match="unique"):
            make_fleet(harness, seeds=[1, 1, 2])

    def test_invalid_workers_rejected(self, harness):
        with pytest.raises(ValueError, match="workers"):
            make_fleet(harness, workers=0)

    def test_invalid_n_seeds_rejected(self, harness):
        with pytest.raises(ValueError, match="n_seeds"):
            make_fleet(harness, seeds=None, n_seeds=0)

    def test_default_seed_range(self, harness):
        fleet = make_fleet(harness, seeds=None, n_seeds=4, seed_base=10)
        assert fleet.seeds == [10, 11, 12, 13]


class TestAggregation:
    def test_result_shape(self, harness, serial_json):
        payload = json.loads(serial_json)
        assert payload["kind"] == "search_fleet_result"
        assert payload["seeds"] == sorted(SEEDS)
        assert set(payload["members"]) == {str(s) for s in SEEDS}
        band = payload["dispersion"]["hypervolume"]
        assert set(band) == {"median", "iqr", "q25", "q75", "min", "max"}
        assert band["min"] <= band["median"] <= band["max"]
        assert band["iqr"] == pytest.approx(band["q75"] - band["q25"])

    def test_hypervolumes_positive_and_shared_reference(self, harness):
        result = make_fleet(harness).run()
        ref_latency, ref_accuracy = result.reference_point
        worst = max(
            c.latency_s for r in result.results.values() for c in r.evaluated
        )
        assert ref_latency == pytest.approx(1.1 * worst)
        for hv in result.hypervolumes().values():
            assert hv > 0

    def test_member_order_is_seed_sorted_not_completion_sorted(
        self, harness, serial_json
    ):
        payload = json.loads(serial_json)
        assert list(payload["members"]) == [str(s) for s in sorted(SEEDS)]

    def test_report_renders(self, serial_json):
        text = format_fleet_report(json.loads(serial_json))
        assert "hypervolume median" in text
        for seed in SEEDS:
            assert f"\n{seed:>6} " in text


class TestParallelIdentity:
    def test_parallel_matches_serial_bytes(self, harness, serial_json):
        parallel = make_fleet(harness, workers=2).run()
        assert parallel.to_json() == serial_json

    def test_constrained_fleet_parallel_matches_serial(self, harness):
        cons = SearchConstraints(max_latency_s=0.0009)
        a = make_fleet(harness, constraints=cons).run()
        b = make_fleet(harness, constraints=cons, workers=2).run()
        assert a.to_json() == b.to_json()
        payload = json.loads(a.to_json())
        assert payload["constraints"] == cons.to_dict()
        for member in payload["members"].values():
            assert member["n_feasible"] > 0

    def test_pool_unavailable_degrades_to_serial(self, harness, serial_json):
        fleet = make_fleet(harness, workers=2, mp_context="no-such-context")
        result = fleet.run()
        kinds = [d["kind"] for d in result.degradations]
        assert kinds == ["pool_unavailable"]
        # Everything except the degradation record matches the serial run.
        got, want = result.to_dict(), json.loads(serial_json)
        got.pop("degradations"), want.pop("degradations")
        assert got == want


class TestDurableFleet:
    def test_resume_completed_fleet_is_identical(
        self, harness, serial_json, tmp_path
    ):
        fleet_dir = tmp_path / "fleet"
        first = make_fleet(harness, fleet_dir=fleet_dir).run()
        again = make_fleet(harness, fleet_dir=fleet_dir).run()
        assert first.to_json() == again.to_json() == serial_json

    def test_resume_after_losing_a_member_result(
        self, harness, serial_json, tmp_path
    ):
        fleet_dir = tmp_path / "fleet"
        make_fleet(harness, fleet_dir=fleet_dir).run()
        # The member's committed result vanishes; its per-generation
        # checkpoints survive, so the rerun replays instead of recomputing.
        (fleet_dir / "member_00002" / "result.json").unlink()
        resumed = make_fleet(harness, fleet_dir=fleet_dir).run()
        assert resumed.to_json() == serial_json

    def test_corrupt_member_result_quarantined_and_recomputed(
        self, harness, serial_json, tmp_path
    ):
        fleet_dir = tmp_path / "fleet"
        make_fleet(harness, fleet_dir=fleet_dir).run()
        victim = fleet_dir / "member_00003" / "result.json"
        victim.write_text('{"kind": "search_result", "seed": 999}')
        resumed = make_fleet(harness, fleet_dir=fleet_dir).run()
        assert resumed.to_json() == serial_json
        assert (fleet_dir / "member_00003" / "result.json.corrupt").exists()

    def test_foreign_fleet_dir_refused(self, harness, tmp_path):
        fleet_dir = tmp_path / "fleet"
        make_fleet(harness, fleet_dir=fleet_dir).run()
        other = make_fleet(harness, seeds=[7, 8], fleet_dir=fleet_dir)
        with pytest.raises(FleetError, match="different fleet"):
            other.run()

    def test_workers_do_not_enter_the_fingerprint(self, harness):
        assert (
            make_fleet(harness).fingerprint()
            == make_fleet(harness, workers=8).fingerprint()
        )


_PARENT_PID = os.getpid()


class WorkerKillingOracle:
    """Hard-kills any pool worker that asks it for latencies.

    In the parent it delegates to a clean `DeviceOracle`; in a pool
    worker (any other pid) the first batch call `os._exit`s, which the
    executor surfaces as `BrokenProcessPool` — the closest a test can get
    to a segfaulting or OOM-killed search worker.
    """

    def __init__(self, device_name="rtx4090", seed=0):
        self._inner = DeviceOracle(SimulatedDevice(device_name, seed=seed))
        self.name = self._inner.name  # identical fleet fingerprint

    def latency_batch(self, configs):
        if os.getpid() != _PARENT_PID:
            os._exit(1)
        return self._inner.latency_batch(configs)

    def latency(self, config):
        return float(self.latency_batch([config])[0])


class TestBrokenPoolRecovery:
    def test_dead_workers_fall_back_to_serial(self, harness, serial_json):
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable on this platform")
        fleet = make_fleet(
            harness,
            oracle=WorkerKillingOracle(),
            workers=2,
            mp_context="fork",
        )
        result = fleet.run()
        degraded = [
            d for d in result.degradations if d["kind"] == "broken_process_pool"
        ]
        assert len(degraded) == 1
        assert degraded[0]["pending"]
        assert "BrokenProcessPool" in degraded[0]["error"]
        # The fleet completed anyway, serially, in the parent — and the
        # members/dispersion match a never-pooled fleet byte for byte.
        got, want = result.to_dict(), json.loads(serial_json)
        got.pop("degradations"), want.pop("degradations")
        assert got == want

    def test_retired_worker_under_resume(self, harness, serial_json, tmp_path):
        """A durable fleet whose pool dies resumes its members from disk."""
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable on this platform")
        fleet_dir = tmp_path / "fleet"
        broken = make_fleet(
            harness,
            oracle=WorkerKillingOracle(),
            workers=2,
            mp_context="fork",
            fleet_dir=fleet_dir,
        )
        result = broken.run()
        assert any(
            d["kind"] == "broken_process_pool" for d in result.degradations
        )
        # A later fleet on the same directory reuses every committed member
        # and reports identical members/dispersion.
        resumed = make_fleet(harness, fleet_dir=fleet_dir).run()
        got, want = resumed.to_dict(), json.loads(serial_json)
        got.pop("degradations"), want.pop("degradations")
        assert got == want


class TestCLI:
    def test_smoke_cli_round_trip(self, tmp_path, capsys):
        from repro.nas.fleet import main

        out_a = tmp_path / "a.json"
        out_b = tmp_path / "b.json"
        argv = [
            "--smoke",
            "--n-seeds", "3",
            "--population-size", "6",
            "--generations", "2",
            "--max-latency", "0.0009",
            "--workdir", str(tmp_path / "fleet"),
        ]
        assert main(argv + ["--out", str(out_a)]) == 0
        # Second invocation resumes every member from disk...
        assert main(argv + ["--out", str(out_b)]) == 0
        # ...and the two reports are byte-identical.
        assert out_a.read_bytes() == out_b.read_bytes()
        payload = json.loads(out_a.read_text())
        assert payload["kind"] == "search_fleet_result"
        assert payload["n_seeds"] == 3
        text = capsys.readouterr().out
        assert "hypervolume median" in text
