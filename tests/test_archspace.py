"""Architecture spaces: Table I cardinalities, samplers, depth bins."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    ArchConfig,
    BalancedSampler,
    BlockConfig,
    RandomSampler,
    SPACE_NAMES,
    assign_depth_bin,
    depth_bins,
    space_by_name,
)

# Exact integer cardinality of the ResNet / MobileNetV3 spaces:
# (sum_{d=1..7} 9^d)^4.
_RESNET_CARDINALITY = sum(9**d for d in range(1, 8)) ** 4


class TestCardinality:
    """Table I: 8.3830e26 / 8.3830e26 / 1.0000e10, exactly."""

    def test_resnet_exact(self, resnet_spec):
        assert resnet_spec.cardinality() == _RESNET_CARDINALITY
        assert f"{resnet_spec.cardinality():.4e}" == "8.3830e+26"

    def test_mobilenetv3_exact(self, mobilenetv3_spec):
        assert mobilenetv3_spec.cardinality() == _RESNET_CARDINALITY
        assert f"{mobilenetv3_spec.cardinality():.4e}" == "8.3830e+26"

    def test_densenet_exact(self, densenet_spec):
        assert densenet_spec.cardinality() == 10**10
        assert f"{densenet_spec.cardinality():.4e}" == "1.0000e+10"


class TestSpaceSpec:
    def test_registry_names(self):
        assert set(SPACE_NAMES) == {"resnet", "mobilenetv3", "densenet"}
        for name in SPACE_NAMES:
            assert space_by_name(name).family == name

    def test_unknown_space_raises(self):
        with pytest.raises(KeyError):
            space_by_name("vgg")

    def test_make_config_and_contains(self, resnet_spec):
        config = resnet_spec.make_config(
            depths=[2, 2, 2, 2],
            kernels=[[3, 5], [3, 3], [7, 3], [5, 5]],
            expands=[[0.2, 0.25]] + [[0.25, 0.25]] * 3,
        )
        assert resnet_spec.contains(config)
        assert config.depths == (2, 2, 2, 2)
        assert config.total_blocks == 8

    def test_make_config_scalar_broadcast(self, densenet_spec):
        config = densenet_spec.make_config(depths=[3, 1, 2, 4, 1], kernels=[3, 5, 1, 9, 7])
        assert densenet_spec.contains(config)
        assert [b.kernel_size for b in config.units[0]] == [3, 3, 3]
        assert all(b.expand_ratio is None for _, b in config.iter_blocks())

    def test_make_config_rejects_invalid_kernel(self, resnet_spec):
        with pytest.raises(ValueError):
            resnet_spec.make_config(
                depths=[1, 1, 1, 1], kernels=[4, 3, 3, 3], expands=[0.2] * 4
            )

    def test_contains_rejects_nonuniform_densenet_unit(self, densenet_spec):
        mixed = ArchConfig(
            family="densenet",
            units=tuple(
                [(BlockConfig(3), BlockConfig(5))] + [(BlockConfig(3),)] * 4
            ),
        )
        assert not densenet_spec.contains(mixed)


class TestRandomSampler:
    @pytest.mark.parametrize("family", SPACE_NAMES)
    def test_samples_are_members(self, family):
        spec = space_by_name(family)
        for config in RandomSampler(spec, rng=0).sample_batch(50):
            assert spec.contains(config)

    def test_seeded_determinism(self, resnet_spec):
        a = RandomSampler(resnet_spec, rng=123).sample_batch(20)
        b = RandomSampler(resnet_spec, rng=123).sample_batch(20)
        assert a == b

    def test_different_seeds_differ(self, resnet_spec):
        a = RandomSampler(resnet_spec, rng=1).sample_batch(20)
        b = RandomSampler(resnet_spec, rng=2).sample_batch(20)
        assert a != b


class TestBalancedSampler:
    def test_samples_are_members_and_deterministic(self, resnet_spec):
        a = BalancedSampler(resnet_spec, rng=7).sample_batch(30)
        b = BalancedSampler(resnet_spec, rng=7).sample_batch(30)
        assert a == b
        assert all(resnet_spec.contains(c) for c in a)

    def test_covers_all_bins(self, resnet_spec):
        sampler = BalancedSampler(resnet_spec, rng=3, n_bins=6)
        hits = {
            assign_depth_bin(c.total_blocks, sampler.bins)
            for c in sampler.sample_batch(120)
        }
        assert hits == set(range(6))

    def test_sample_in_bin(self, densenet_spec):
        sampler = BalancedSampler(densenet_spec, rng=1, n_bins=6)
        for index, (lo, hi) in enumerate(sampler.bins):
            config = sampler.sample_in_bin(index)
            assert lo <= config.total_blocks <= hi

    def test_corner_bins_reached_more_than_random(self, resnet_spec):
        """Random sampling's CLT depth bias starves the corner bins."""
        bins = depth_bins(resnet_spec, 6)
        n = 240
        random_configs = RandomSampler(resnet_spec, rng=0).sample_batch(n)
        balanced_configs = BalancedSampler(resnet_spec, rng=0, n_bins=6).sample_batch(n)

        def corner_count(configs):
            ids = [assign_depth_bin(c.total_blocks, bins) for c in configs]
            return sum(1 for i in ids if i in (0, 5))

        assert corner_count(balanced_configs) > corner_count(random_configs)


class TestDepthBins:
    def test_partition_is_exact(self, resnet_spec):
        bins = depth_bins(resnet_spec, 6)
        assert bins[0][0] == resnet_spec.min_total_depth
        assert bins[-1][1] == resnet_spec.max_total_depth
        for (_, hi), (lo, _) in zip(bins, bins[1:]):
            assert lo == hi + 1

    def test_every_total_depth_is_binned(self, densenet_spec):
        bins = depth_bins(densenet_spec, 8)
        for depth in range(densenet_spec.min_total_depth, densenet_spec.max_total_depth + 1):
            assert 0 <= assign_depth_bin(depth, bins) < 8

    def test_invalid_bin_counts_raise(self, resnet_spec):
        with pytest.raises(ValueError):
            depth_bins(resnet_spec, 0)
        with pytest.raises(ValueError):
            depth_bins(resnet_spec, 10**6)


class TestConfigRoundTrip:
    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_dict_round_trip(self, data):
        spec = space_by_name(data.draw(st.sampled_from(SPACE_NAMES)))
        seed = data.draw(st.integers(min_value=0, max_value=2**32 - 1))
        config = RandomSampler(spec, rng=seed).sample()
        assert ArchConfig.from_dict(config.to_dict()) == config

    def test_configs_are_hashable(self, resnet_spec):
        sampler = RandomSampler(resnet_spec, rng=0)
        assert len({sampler.sample() for _ in range(30)}) > 1
