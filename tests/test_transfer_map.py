"""Property-based tests for `MonotoneLatencyMap` (hypothesis-driven).

The four invariants the ISSUE's transfer tier demands, plus the edge
behaviour the map's docstring promises:

* the fitted map is non-decreasing *everywhere* — between knots, at
  knots, and in both clamped tails — for arbitrary paired samples,
* when the fit comes out strictly increasing, ``apply`` preserves the
  exact pairwise order (and hence the exact Kendall tau) of any queries
  inside the knot range,
* ``to_dict`` -> JSON -> ``from_dict`` round-trips bit-identically,
* PAVA is a pure function of the pair *multiset*: any permutation of
  the input pairs produces bit-identical knots.

Everything here is pure numpy on tiny arrays, so example counts are
generous.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import MonotoneLatencyMap, kendall_tau
from repro.transfer.monotone import MAP_FORMAT_VERSION, _pava

# Latency-scale floats: positive, finite, spanning microseconds to
# seconds — the range a real proxy/target pair produces.
latency = st.floats(
    min_value=1e-6, max_value=10.0, allow_nan=False, allow_infinity=False
)

# Paired samples: equal-length proxy/target lists, at least 2 pairs.
# Drawing tuples keeps proxy and target aligned under shrinking.
pairs = st.lists(st.tuples(latency, latency), min_size=2, max_size=40)

queries = st.lists(latency, min_size=2, max_size=30)


def fit_from(pair_list):
    proxy = np.array([p for p, _ in pair_list])
    target = np.array([t for _, t in pair_list])
    return MonotoneLatencyMap().fit(proxy, target), proxy, target


class TestNonDecreasing:
    @given(pairs=pairs, extra=queries)
    @settings(max_examples=200, deadline=None)
    def test_non_decreasing_on_any_query_grid(self, pairs, extra):
        fitted, proxy, _ = fit_from(pairs)
        # Knots, midpoints, arbitrary queries, and points beyond both
        # tails — sorted, the outputs must be non-decreasing.
        x_knots, y_knots = fitted.knots
        grid = np.sort(
            np.concatenate(
                [
                    x_knots,
                    (x_knots[:-1] + x_knots[1:]) / 2,
                    np.asarray(extra),
                    [0.0, x_knots[0] / 2, x_knots[-1] * 2, 1e6],
                ]
            )
        )
        out = fitted.apply(grid)
        assert np.all(np.diff(out) >= 0)
        assert np.all(np.diff(y_knots) >= 0)

    @given(pairs=pairs)
    @settings(max_examples=200, deadline=None)
    def test_knot_positions_strictly_increase(self, pairs):
        fitted, _, _ = fit_from(pairs)
        x_knots, _ = fitted.knots
        assert np.all(np.diff(x_knots) > 0)

    @given(pairs=pairs)
    @settings(max_examples=100, deadline=None)
    def test_fitted_range_is_within_target_range(self, pairs):
        # PAVA only averages: no fitted value can escape the convex hull
        # of the observed targets.
        fitted, _, target = fit_from(pairs)
        _, y_knots = fitted.knots
        assert y_knots.min() >= target.min() - 1e-12
        assert y_knots.max() <= target.max() + 1e-12


class TestOrderPreservation:
    @given(pairs=pairs, qs=queries)
    @settings(max_examples=200, deadline=None)
    def test_strictly_increasing_map_preserves_exact_pairwise_order(
        self, pairs, qs
    ):
        fitted, _, _ = fit_from(pairs)
        if not fitted.is_strictly_increasing:
            return
        x_knots, _ = fitted.knots
        # Rescale queries into the knot range, where the interpolant is
        # strictly increasing (the clamped tails legitimately tie).
        q = np.asarray(qs)
        lo, hi = q.min(), q.max()
        span = hi - lo
        if span == 0:
            return
        q = x_knots[0] + (q - lo) / span * (x_knots[-1] - x_knots[0])
        out = fitted.apply(q)
        diff_in = np.sign(q[:, None] - q[None, :])
        diff_out = np.sign(out[:, None] - out[None, :])
        assert np.array_equal(diff_in, diff_out)
        # ... which is exactly "Kendall tau of the input ranking is
        # preserved": mapped values correlate perfectly with the inputs.
        if np.unique(q).size > 1:
            assert kendall_tau(q, out) == pytest.approx(1.0)

    @given(pairs=pairs)
    @settings(max_examples=100, deadline=None)
    def test_already_monotone_pairs_fit_exactly(self, pairs):
        # When the pooled targets are already non-decreasing in proxy
        # order, PAVA must be the identity on them.
        fitted, proxy, target = fit_from(pairs)
        order = np.lexsort((target, proxy))
        x, y = proxy[order], target[order]
        distinct = np.unique(x).size == x.size
        if not (distinct and np.all(np.diff(y) >= 0)):
            return
        x_knots, y_knots = fitted.knots
        np.testing.assert_array_equal(x_knots, x)
        np.testing.assert_array_equal(y_knots, y)


class TestRoundTrip:
    @given(pairs=pairs, qs=queries)
    @settings(max_examples=200, deadline=None)
    def test_dict_and_json_round_trips_are_bit_identical(self, pairs, qs):
        fitted, _, _ = fit_from(pairs)
        clone = MonotoneLatencyMap.from_dict(fitted.to_dict())
        assert clone == fitted
        # Through actual JSON text too: shortest-repr floats are exact.
        wire = MonotoneLatencyMap.from_dict(
            json.loads(json.dumps(fitted.to_dict()))
        )
        assert wire == fitted
        q = np.asarray(qs)
        np.testing.assert_array_equal(wire.apply(q), fitted.apply(q))
        assert wire.n_pairs == fitted.n_pairs

    @given(pairs=pairs)
    @settings(max_examples=50, deadline=None)
    def test_to_dict_is_json_canonical(self, pairs):
        fitted, _, _ = fit_from(pairs)
        d = fitted.to_dict()
        assert d["format_version"] == MAP_FORMAT_VERSION
        assert json.loads(json.dumps(d)) == d


class TestPermutationInvariance:
    @given(pairs=pairs, seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=200, deadline=None)
    def test_fit_is_invariant_under_pair_order(self, pairs, seed):
        fitted, proxy, target = fit_from(pairs)
        perm = np.random.default_rng(seed).permutation(len(pairs))
        shuffled = MonotoneLatencyMap().fit(proxy[perm], target[perm])
        # Bit-identical, not approximately equal: the canonical lexsort
        # happens before any floating-point accumulation.
        assert shuffled == fitted

    @given(pairs=pairs)
    @settings(max_examples=100, deadline=None)
    def test_reversal_and_refit_are_bit_identical(self, pairs):
        fitted, proxy, target = fit_from(pairs)
        reversed_fit = MonotoneLatencyMap().fit(proxy[::-1], target[::-1])
        assert reversed_fit == fitted
        refit = MonotoneLatencyMap().fit(proxy, target)
        assert refit == fitted


class TestClampedExtrapolation:
    @given(pairs=pairs)
    @settings(max_examples=100, deadline=None)
    def test_out_of_range_queries_saturate_at_boundary_knots(self, pairs):
        fitted, _, _ = fit_from(pairs)
        x_knots, y_knots = fitted.knots
        below = fitted.apply([0.0, x_knots[0] * 0.5])
        above = fitted.apply([x_knots[-1] * 2, 1e300])
        np.testing.assert_array_equal(below, [y_knots[0], y_knots[0]])
        np.testing.assert_array_equal(above, [y_knots[-1], y_knots[-1]])

    @given(pairs=pairs, qs=queries)
    @settings(max_examples=100, deadline=None)
    def test_finite_in_finite_out(self, pairs, qs):
        fitted, _, _ = fit_from(pairs)
        q = np.concatenate([np.asarray(qs), [0.0, 1e300, -1e300]])
        assert np.isfinite(fitted.apply(q)).all()


class TestValidation:
    def test_unfitted_apply_rejected(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            MonotoneLatencyMap().apply([1.0])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="pair up"):
            MonotoneLatencyMap().fit([1.0, 2.0], [1.0])

    def test_single_pair_rejected(self):
        with pytest.raises(ValueError, match="at least 2"):
            MonotoneLatencyMap().fit([1.0], [2.0])

    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    def test_non_finite_pairs_rejected(self, bad):
        with pytest.raises(ValueError, match="non-finite"):
            MonotoneLatencyMap().fit([1.0, bad], [1.0, 2.0])
        with pytest.raises(ValueError, match="non-finite"):
            MonotoneLatencyMap().fit([1.0, 2.0], [bad, 2.0])

    def test_from_dict_rejects_corrupt_payloads(self):
        good = MonotoneLatencyMap().fit([1.0, 2.0], [3.0, 4.0]).to_dict()
        with pytest.raises(ValueError, match="format_version"):
            MonotoneLatencyMap.from_dict({**good, "format_version": 99})
        with pytest.raises(ValueError, match="kind"):
            MonotoneLatencyMap.from_dict({**good, "kind": "mlp"})
        with pytest.raises(ValueError, match="strictly increase"):
            MonotoneLatencyMap.from_dict({**good, "x": [2.0, 1.0]})
        with pytest.raises(ValueError, match="non-decreasing"):
            MonotoneLatencyMap.from_dict({**good, "y": [4.0, 3.0]})
        with pytest.raises(ValueError, match="equal-length"):
            MonotoneLatencyMap.from_dict({**good, "y": [1.0]})


class TestPavaDirect:
    """The raw PAVA routine, pinned on hand-checkable cases."""

    def test_decreasing_input_pools_to_global_mean(self):
        out = _pava(np.array([3.0, 2.0, 1.0]), np.ones(3))
        np.testing.assert_allclose(out, [2.0, 2.0, 2.0])

    def test_monotone_input_is_untouched(self):
        values = np.array([1.0, 2.0, 5.0])
        np.testing.assert_array_equal(_pava(values, np.ones(3)), values)

    def test_weights_tilt_the_pooled_mean(self):
        out = _pava(np.array([4.0, 0.0]), np.array([3.0, 1.0]))
        np.testing.assert_allclose(out, [3.0, 3.0])

    def test_single_violation_pools_locally(self):
        out = _pava(np.array([1.0, 3.0, 2.0, 4.0]), np.ones(4))
        np.testing.assert_allclose(out, [1.0, 2.5, 2.5, 4.0])
