"""Per-member behaviour of the predictor zoo (quality, structure, guards).

The cross-cutting protocol obligations live in
``test_predictor_contract.py``; this module checks what makes each member
itself: ridge solves linear problems exactly, CART carves axis-aligned
steps, the forest averages down bootstrap variance, boosting drives
training error down round by round — and each rejects nonsense
hyperparameters loudly.
"""

import numpy as np
import pytest

from repro import (
    CARTPredictor,
    GradientBoostingPredictor,
    RandomForestPredictor,
    RidgePredictor,
    mape,
    paper_accuracy,
)


def _linear(n=200, d=6, seed=0, noise=0.0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d))
    w = rng.normal(size=d)
    return X, X @ w + 3.0 + rng.normal(0, noise, n)


def _step(n=240, seed=0):
    """Axis-aligned piecewise-constant target: tree-friendly by design."""
    rng = np.random.default_rng(seed)
    X = rng.uniform(0, 1, size=(n, 3))
    y = np.where(X[:, 0] > 0.5, 10.0, 4.0) + np.where(X[:, 1] > 0.3, 2.0, 0.0)
    return X, y


class TestRidge:
    def test_recovers_linear_function_nearly_exactly(self):
        X, y = _linear()
        pred = RidgePredictor(alpha=1e-8).fit(X[:150], y[:150]).predict(X[150:])
        np.testing.assert_allclose(pred, y[150:], rtol=1e-5, atol=1e-5)

    def test_alpha_shrinks_coefficients(self):
        X, y = _linear(noise=0.1)
        small = RidgePredictor(alpha=1e-6).fit(X, y)
        large = RidgePredictor(alpha=1e3).fit(X, y)
        assert np.linalg.norm(large.coef_) < np.linalg.norm(small.coef_)

    def test_constant_feature_does_not_blow_up(self):
        X, y = _linear(n=50)
        X[:, 2] = 7.0  # zero variance column
        pred = RidgePredictor().fit(X, y).predict(X)
        assert np.isfinite(pred).all()

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError, match="alpha"):
            RidgePredictor(alpha=-1.0)


class TestCART:
    def test_fits_step_function_exactly(self):
        X, y = _step()
        tree = CARTPredictor(max_depth=4, min_samples_leaf=1).fit(X, y)
        np.testing.assert_allclose(tree.predict(X), y)

    def test_depth_one_is_a_single_split(self):
        X, y = _step()
        stump = CARTPredictor(max_depth=1).fit(X, y)
        assert stump.n_leaves == 2
        assert len(np.unique(stump.predict(X))) <= 2

    def test_constant_target_yields_single_leaf(self):
        X = np.random.default_rng(0).normal(size=(30, 4))
        tree = CARTPredictor().fit(X, np.full(30, 5.5))
        assert tree.n_leaves == 1
        np.testing.assert_array_equal(tree.predict(X), np.full(30, 5.5))

    def test_min_samples_leaf_is_respected(self):
        X, y = _step(n=64)
        tree = CARTPredictor(max_depth=10, min_samples_leaf=8).fit(X, y)
        leaves = tree.predict(X)
        _, counts = np.unique(leaves, return_counts=True)
        assert counts.min() >= 8

    def test_deeper_trees_fit_no_worse_on_train(self):
        X, y = _step()
        shallow = CARTPredictor(max_depth=2).fit(X, y).predict(X)
        deep = CARTPredictor(max_depth=6).fit(X, y).predict(X)
        assert ((deep - y) ** 2).mean() <= ((shallow - y) ** 2).mean() + 1e-12

    def test_adjacent_float_values_never_make_an_empty_child(self):
        # The midpoint of 1.0 and nextafter(1.0) rounds up to the right
        # value; a naive `X <= midpoint` split would put every row left
        # and leave a NaN leaf behind.  Regression test for that guard.
        hi = np.nextafter(1.0, 2.0)
        X = np.array([[1.0], [1.0], [hi], [hi]])
        y = np.array([0.0, 0.0, 1.0, 1.0])
        tree = CARTPredictor(
            max_depth=2, min_samples_split=2, min_samples_leaf=1
        ).fit(X, y)
        pred = tree.predict(X)
        assert np.isfinite(pred).all()
        np.testing.assert_allclose(pred, y)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError, match="max_depth"):
            CARTPredictor(max_depth=0)
        with pytest.raises(ValueError, match="min_samples_split"):
            CARTPredictor(min_samples_split=1)
        with pytest.raises(ValueError, match="min_samples_leaf"):
            CARTPredictor(min_samples_leaf=0)


class TestRandomForest:
    def test_beats_single_tree_on_noisy_held_out_data(self):
        rng = np.random.default_rng(3)
        X = rng.uniform(0, 1, size=(300, 5))
        y = np.sin(4 * X[:, 0]) + X[:, 1] ** 2 + rng.normal(0, 0.15, 300) + 3.0
        tr, te = slice(0, 220), slice(220, None)
        tree_err = np.abs(
            CARTPredictor(max_depth=10, min_samples_leaf=1)
            .fit(X[tr], y[tr])
            .predict(X[te])
            - y[te]
        ).mean()
        forest_err = np.abs(
            RandomForestPredictor(n_estimators=40, max_depth=10, min_samples_leaf=1, seed=0)
            .fit(X[tr], y[tr])
            .predict(X[te])
            - y[te]
        ).mean()
        assert forest_err < tree_err

    def test_prediction_is_the_mean_of_its_trees(self):
        X, y = _step(n=80)
        forest = RandomForestPredictor(n_estimators=5, seed=1).fit(X, y)
        per_tree = np.stack(
            [
                tree.predict(X[:, cols])
                for tree, cols in zip(forest._trees, forest._features)
            ]
        )
        np.testing.assert_allclose(forest.predict(X), per_tree.mean(axis=0))

    def test_max_features_one_is_plain_bagging(self):
        X, y = _step(n=60)
        forest = RandomForestPredictor(
            n_estimators=3, max_features=1.0, seed=0
        ).fit(X, y)
        for cols in forest._features:
            np.testing.assert_array_equal(cols, np.arange(X.shape[1]))

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError, match="n_estimators"):
            RandomForestPredictor(n_estimators=0)
        with pytest.raises(ValueError, match="max_features"):
            RandomForestPredictor(max_features=0.0)
        with pytest.raises(ValueError, match="max_features"):
            RandomForestPredictor(max_features=1.5)


class TestGradientBoosting:
    def test_training_error_decreases_with_more_rounds(self):
        X, y = _step()
        few = GradientBoostingPredictor(n_estimators=5, seed=0).fit(X, y)
        many = GradientBoostingPredictor(n_estimators=80, seed=0).fit(X, y)
        err_few = ((few.predict(X) - y) ** 2).mean()
        err_many = ((many.predict(X) - y) ** 2).mean()
        assert err_many < err_few

    def test_zero_rounds_equivalent_is_the_mean(self):
        # One stump on a constant target: prediction stays at the mean.
        X = np.random.default_rng(0).normal(size=(40, 3))
        y = np.full(40, 2.5)
        gb = GradientBoostingPredictor(n_estimators=1).fit(X, y)
        np.testing.assert_allclose(gb.predict(X), y)

    def test_subsampling_is_seeded(self):
        rng = np.random.default_rng(5)
        X = rng.uniform(size=(100, 4))
        y = X @ np.ones(4) + rng.normal(0, 0.1, 100) + 2.0
        kw = dict(n_estimators=20, subsample=0.6)
        a = GradientBoostingPredictor(seed=4, **kw).fit(X, y).predict(X)
        b = GradientBoostingPredictor(seed=4, **kw).fit(X, y).predict(X)
        c = GradientBoostingPredictor(seed=5, **kw).fit(X, y).predict(X)
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError, match="n_estimators"):
            GradientBoostingPredictor(n_estimators=0)
        with pytest.raises(ValueError, match="learning_rate"):
            GradientBoostingPredictor(learning_rate=0.0)
        with pytest.raises(ValueError, match="subsample"):
            GradientBoostingPredictor(subsample=0.0)


class TestZooOnMeasuredData:
    """Every member must be a *credible* latency surrogate on FCC counts."""

    # Floors are honest, not flattering: 105 training samples is small for
    # a lone tree, and latency-vs-counts is nearly linear, where ridge
    # shines.  Measured values: ridge 98.5, cart 78.5, rf 83.6, gb 86.3.
    @pytest.mark.parametrize(
        "factory, floor",
        [
            (lambda: RidgePredictor(), 95.0),
            (lambda: CARTPredictor(), 74.0),
            (lambda: RandomForestPredictor(n_estimators=30), 79.0),
            (lambda: GradientBoostingPredictor(n_estimators=80), 82.0),
        ],
        ids=["ridge", "cart", "rf", "gb"],
    )
    def test_held_out_paper_accuracy_floor(
        self, factory, floor, small_resnet_dataset, resnet_spec
    ):
        train, test = small_resnet_dataset.split(0.75, rng=1)
        predictor = factory().fit_dataset(train, "fcc", resnet_spec)
        accuracy = paper_accuracy(
            test.latencies,
            predictor.predict(test.encode("fcc", resnet_spec)),
        )
        assert accuracy > floor, f"held-out accuracy {accuracy:.1f}%"

    def test_ridge_mape_beats_tree_on_fcc(
        self, small_resnet_dataset, resnet_spec
    ):
        # The simulator's latency is close to additive in block counts, so
        # the linear member should lead the tree on this encoding.
        train, test = small_resnet_dataset.split(0.75, rng=1)
        X_test = test.encode("fcc", resnet_spec)
        ridge = RidgePredictor().fit_dataset(train, "fcc", resnet_spec)
        cart = CARTPredictor().fit_dataset(train, "fcc", resnet_spec)
        assert mape(test.latencies, ridge.predict(X_test)) < mape(
            test.latencies, cart.predict(X_test)
        )
