"""Golden-trace regression test for the ESM loop (Algorithm 1).

A small seeded run (ResNet space, simulated RTX 4090, reduced protocol)
converges in three iterations; this module re-runs it and locks the
outcome against the committed fixture ``tests/fixtures/esm_golden_trace.json``:

* the per-iteration bin-accuracy trace, extension plans, and dataset
  growth (floats compared at 1e-9 relative tolerance — BLAS summation
  order may differ across CPU generations; every discrete decision is
  compared exactly),
* the measurement layer byte-for-byte: the final ``dataset.json`` must
  hash to the committed sha256 on any platform,
* the fixture schema itself, like the PR 1 densenet dataset lock.

Regenerate after an *intentional* behaviour change with::

    PYTHONPATH=src python tests/fixtures/regen_esm_golden_trace.py
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro import ESMConfig, ESMLoop

FIXTURE_PATH = Path(__file__).parent / "fixtures" / "esm_golden_trace.json"

GOLDEN_CONFIG = ESMConfig(
    space="resnet",
    device="rtx4090",
    acc_th=82.0,
    n_bins=5,
    initial_size=120,
    extension_size=30,
    max_iterations=6,
    runs=15,
    n_references=2,
    batch_size=25,
    seed=1,
    predictor_params={"epochs": 600},
)


@pytest.fixture(scope="module")
def fixture_raw():
    assert FIXTURE_PATH.exists(), "committed golden-trace fixture missing"
    return json.loads(FIXTURE_PATH.read_text())


@pytest.fixture(scope="module")
def golden_run(tmp_path_factory):
    run_dir = tmp_path_factory.mktemp("esm-golden") / "run"
    result = ESMLoop(GOLDEN_CONFIG, run_dir, sleep=lambda s: None).run()
    return result


class TestFixtureSchema:
    """Schema lock: the fixture's shape is part of the contract."""

    def test_header(self, fixture_raw):
        assert fixture_raw["format_version"] == 1
        assert fixture_raw["kind"] == "esm_golden_trace"
        assert set(fixture_raw) == {
            "format_version",
            "kind",
            "config",
            "report",
            "dataset_sha256",
            "dataset_size",
        }

    def test_config_matches_the_test_constant(self, fixture_raw):
        assert ESMConfig.from_dict(fixture_raw["config"]) == GOLDEN_CONFIG

    def test_report_schema(self, fixture_raw):
        report = fixture_raw["report"]
        assert report["format_version"] == 1
        assert report["kind"] == "esm_run_report"
        assert report["converged"] is True
        for record in report["iterations"]:
            assert set(record) == {
                "iteration",
                "dataset_size",
                "train_size",
                "test_size",
                "bin_accuracies",
                "failing_bins",
                "samples_added",
                "passed",
                "predictor_model",
            }
            # A fixed-predictor run records its (constant) model.
            assert record["predictor_model"] == "mlp"


class TestGoldenTrace:
    def test_converges_within_budget(self, golden_run):
        report = golden_run.report
        assert report.converged
        assert report.n_iterations <= GOLDEN_CONFIG.max_iterations
        assert all(
            acc >= GOLDEN_CONFIG.acc_th
            for acc in report.final_bin_accuracies.values()
        )

    def test_trace_matches_fixture(self, golden_run, fixture_raw):
        produced = golden_run.report.to_dict()
        expected = fixture_raw["report"]
        assert produced["config"] == expected["config"]
        assert produced["bins"] == expected["bins"]
        assert produced["converged"] == expected["converged"]
        assert produced["final_dataset_size"] == expected["final_dataset_size"]
        assert len(produced["iterations"]) == len(expected["iterations"])
        for got, want in zip(produced["iterations"], expected["iterations"]):
            # Discrete decisions are exact ...
            for key in (
                "iteration",
                "dataset_size",
                "train_size",
                "test_size",
                "failing_bins",
                "samples_added",
                "passed",
                "predictor_model",
            ):
                assert got[key] == want[key], f"iteration {want['iteration']}: {key}"
            # ... accuracies allow BLAS-level float drift, nothing more.
            assert got["bin_accuracies"] == pytest.approx(
                want["bin_accuracies"], rel=1e-9
            )

    def test_final_dataset_size_locked(self, golden_run, fixture_raw):
        assert len(golden_run.dataset) == fixture_raw["dataset_size"]

    def test_measurement_bytes_locked(self, golden_run, fixture_raw):
        dataset_bytes = (golden_run.run_dir / "dataset.json").read_bytes()
        assert (
            hashlib.sha256(dataset_bytes).hexdigest()
            == fixture_raw["dataset_sha256"]
        )
