"""`TransferPredictor` semantics + the ESM loop's transfer warm start.

The contract suite (test_predictor_contract.py) already runs the
transfer wrapper through the registry-wide protocol checks in
self-calibration mode; this file covers what is specific to transfer:

* frozen-proxy mode — ``fit`` refits *only* the monotone map, the proxy
  model's predictions are bit-identical before and after, and the
  composition ``map.apply(proxy.predict(X))`` is exactly ``predict``,
* persistence of the frozen proxy through save -> `load_predictor`,
* `ESMConfig.transfer_from` validation and the loop's end-to-end warm
  start: a proxy-device run's surrogate rides into a target-device run
  whose measurement budget is spent only on target pairs,
* the feature-space compatibility gate (encoding/space mismatch against
  the proxy run is refused loudly),
* `PredictorOracle`'s non-finite rejection — a badly extrapolated map
  must fail with a diagnostic, not pollute a Pareto front.
"""

import json

import numpy as np
import pytest

from repro import (
    ESMConfig,
    ESMLoop,
    MonotoneLatencyMap,
    PredictorOracle,
    RandomSampler,
    RidgePredictor,
    TransferPredictor,
    get_predictor,
    load_predictor,
    resnet_space,
)
from repro.core.loop import PREDICTOR_FILENAME


def _toy(n=80, d=6, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.integers(0, 5, size=(n, d)).astype(float)
    w = rng.uniform(0.5, 2.0, size=d)
    y = X @ w + 1.0
    return X, y


@pytest.fixture()
def proxy_fitted():
    X, y = _toy(seed=1)
    return RidgePredictor().fit(X, y), X, y


class TestFrozenProxyMode:
    def test_fit_refits_only_the_map(self, proxy_fitted):
        proxy, X, y = proxy_fitted
        before = proxy.predict(X)
        transfer = TransferPredictor.from_proxy(proxy)
        # Target latencies: a warped, noisy version of the proxy's.
        rng = np.random.default_rng(2)
        y_target = 3.0 * y**0.9 + rng.normal(0, 0.05, y.size)
        transfer.fit(X, y_target)
        assert transfer.is_frozen_proxy
        assert transfer.proxy_kind == "ridge"
        # The frozen proxy is untouched by fit — bit for bit.
        np.testing.assert_array_equal(transfer.proxy_model.predict(X), before)

    def test_predict_is_exactly_map_of_proxy(self, proxy_fitted):
        proxy, X, y = proxy_fitted
        transfer = TransferPredictor.from_proxy(proxy).fit(X, 2.0 * y + 0.5)
        expected = transfer.map_.apply(proxy.predict(X))
        np.testing.assert_array_equal(transfer.predict(X), expected)

    def test_second_fit_replaces_the_map_not_the_proxy(self, proxy_fitted):
        proxy, X, y = proxy_fitted
        transfer = TransferPredictor.from_proxy(proxy)
        transfer.fit(X[:40], 2.0 * y[:40])
        first_map = transfer.map_.to_dict()
        transfer.fit(X, 5.0 * y)
        assert transfer.map_.to_dict() != first_map
        np.testing.assert_array_equal(
            transfer.proxy_model.predict(X), proxy.predict(X)
        )

    def test_monotone_map_recovers_a_monotone_device_gap(self, proxy_fitted):
        # A clean monotone proxy->target relation is learned well enough
        # to rank a held-out set perfectly.
        proxy, X, y = proxy_fitted
        transfer = TransferPredictor.from_proxy(proxy).fit(
            X[:60], (2.5 * y[:60]) ** 1.1
        )
        held = transfer.predict(X[60:])
        true = (2.5 * y[60:]) ** 1.1
        assert np.all(np.sign(np.diff(held)) == np.sign(np.diff(true)))

    def test_save_load_preserves_frozen_proxy(self, proxy_fitted, tmp_path):
        proxy, X, y = proxy_fitted
        transfer = TransferPredictor.from_proxy(proxy).fit(X, 2.0 * y)
        transfer.save(tmp_path / "t.json")
        clone = load_predictor(tmp_path / "t.json")
        assert isinstance(clone, TransferPredictor)
        assert clone.is_frozen_proxy
        assert clone.proxy_kind == "ridge"
        np.testing.assert_array_equal(clone.predict(X), transfer.predict(X))
        # A further fit on the clone still leaves the proxy frozen.
        clone.fit(X[:30], 7.0 * y[:30])
        np.testing.assert_array_equal(
            clone.proxy_model.predict(X), proxy.predict(X)
        )

    def test_too_few_pairs_rejected(self, proxy_fitted):
        proxy, X, y = proxy_fitted
        with pytest.raises(ValueError, match="at least 2"):
            TransferPredictor.from_proxy(proxy).fit(X[:1], y[:1])


class TestSelfCalibrationMode:
    def test_base_is_fitted_then_calibrated(self):
        X, y = _toy()
        transfer = TransferPredictor(base="ridge").fit(X, y)
        assert not transfer.is_frozen_proxy
        assert transfer.proxy_kind == "ridge"
        assert transfer.map_.n_pairs == len(y)

    def test_unknown_base_rejected(self):
        with pytest.raises(ValueError, match="unknown base"):
            TransferPredictor(base="xgboost")

    def test_transfer_as_its_own_base_rejected(self):
        with pytest.raises(ValueError, match="itself"):
            TransferPredictor(base="transfer")

    def test_registry_construction(self):
        predictor = get_predictor("transfer", base="cart")
        assert isinstance(predictor, TransferPredictor)
        assert predictor.base == "cart"


class TestESMConfigValidation:
    def test_transfer_from_requires_transfer_predictor(self):
        with pytest.raises(ValueError, match="predictor='transfer'"):
            ESMConfig(space="resnet", transfer_from="/some/run")

    def test_transfer_from_round_trips(self):
        config = ESMConfig(
            space="resnet",
            predictor="transfer",
            predictor_params={"base": "ridge"},
            transfer_from="/proxy/run",
        )
        assert ESMConfig.from_dict(config.to_dict()) == config
        assert config.to_dict()["transfer_from"] == "/proxy/run"

    def test_unset_transfer_from_is_omitted_from_dict(self):
        # Written only when set: configs (and golden fixtures) that
        # predate the transfer layer keep byte-identical payloads.
        assert "transfer_from" not in ESMConfig(space="resnet").to_dict()


_PROXY_CONFIG = dict(
    space="resnet",
    device="rtx4090",
    encoding="fcc",
    predictor="ridge",
    acc_th=70.0,
    n_bins=4,
    initial_size=24,
    extension_size=8,
    max_iterations=1,
    runs=5,
    n_references=2,
    batch_size=8,
    seed=3,
)


@pytest.fixture(scope="module")
def proxy_run(tmp_path_factory):
    run_dir = tmp_path_factory.mktemp("proxy-run")
    result = ESMLoop(
        ESMConfig(**_PROXY_CONFIG), run_dir, sleep=lambda s: None
    ).run()
    return run_dir, result


def _target_config(**overrides):
    return ESMConfig(
        **{
            **_PROXY_CONFIG,
            "device": "raspberrypi4",
            "predictor": "transfer",
            "predictor_params": {"base": "ridge"},
            **overrides,
        }
    )


class TestESMLoopTransferWarmStart:
    def test_end_to_end_warm_start(self, proxy_run, tmp_path):
        proxy_dir, proxy_result = proxy_run
        config = _target_config(transfer_from=str(proxy_dir))
        result = ESMLoop(config, tmp_path / "target", sleep=lambda s: None).run()
        predictor = result.predictor
        assert isinstance(predictor, TransferPredictor)
        assert predictor.is_frozen_proxy
        assert predictor.proxy_kind == "ridge"
        # The frozen proxy is the proxy run's surrogate, not a refit:
        # identical predictions on fresh architectures.
        spec = resnet_space()
        sample = RandomSampler(spec, rng=7).sample_batch(16)
        from repro import encoder_for

        X = encoder_for("fcc", spec).encode_batch(sample, spec)
        np.testing.assert_array_equal(
            predictor.proxy_model.predict(X),
            proxy_result.predictor.predict(X),
        )
        # Round trip through the run artifacts and the oracle hand-off.
        reloaded = load_predictor(tmp_path / "target" / PREDICTOR_FILENAME)
        np.testing.assert_array_equal(
            reloaded.predict(X), predictor.predict(X)
        )
        oracle = result.latency_oracle(spec=spec)
        lat = oracle.latency_batch(sample)
        assert lat.shape == (16,)
        assert np.isfinite(lat).all()
        assert (lat > 0).all()

    def test_encoding_mismatch_rejected(self, proxy_run, tmp_path):
        proxy_dir, _ = proxy_run
        config = _target_config(
            encoding="fc", transfer_from=str(proxy_dir)
        )
        with pytest.raises(ValueError, match="encoding"):
            ESMLoop(config, tmp_path / "t", sleep=lambda s: None)

    def test_missing_proxy_predictor_rejected(self, tmp_path):
        empty = tmp_path / "not-a-run"
        empty.mkdir()
        config = _target_config(transfer_from=str(empty))
        with pytest.raises(ValueError, match="no predictor.json"):
            ESMLoop(config, tmp_path / "t", sleep=lambda s: None)

    def test_corrupt_proxy_predictor_rejected(self, tmp_path):
        broken = tmp_path / "broken-run"
        broken.mkdir()
        (broken / PREDICTOR_FILENAME).write_text("{not json")
        config = _target_config(transfer_from=str(broken))
        with pytest.raises(ValueError, match="not valid JSON"):
            ESMLoop(config, tmp_path / "t", sleep=lambda s: None)


class _NaNPredictor:
    """A diverged surrogate: finite on some rows, NaN on others."""

    def __init__(self, bad_index=1):
        self.bad_index = bad_index

    def predict(self, X):
        out = np.ones(X.shape[0])
        if X.shape[0] > self.bad_index:
            out[self.bad_index] = np.nan
        return out


class TestOracleNonFiniteRejection:
    def test_nan_latency_fails_loudly_with_diagnostics(self):
        spec = resnet_space()
        oracle = PredictorOracle(_NaNPredictor(), "fcc", spec, name="bad")
        configs = RandomSampler(spec, rng=0).sample_batch(3)
        with pytest.raises(ValueError) as excinfo:
            oracle.latency_batch(configs)
        message = str(excinfo.value)
        assert "'bad'" in message
        assert "1 non-finite" in message
        assert "batch index 1" in message

    def test_inf_rejected_too(self):
        spec = resnet_space()

        class _InfPredictor:
            def predict(self, X):
                return np.full(X.shape[0], np.inf)

        oracle = PredictorOracle(_InfPredictor(), "fcc", spec)
        configs = RandomSampler(spec, rng=0).sample_batch(2)
        with pytest.raises(ValueError, match="2 non-finite"):
            oracle.latency_batch(configs)

    def test_finite_predictions_pass_through(self):
        from repro import encoder_for

        spec = resnet_space()
        train = RandomSampler(spec, rng=2).sample_batch(30)
        X = encoder_for("fcc", spec).encode_batch(train, spec)
        y = X.sum(axis=1) * 1e-4 + 1e-3
        # A real transfer predictor behind the oracle: clamped
        # extrapolation means finite in -> finite out, always.
        transfer = TransferPredictor(base="ridge").fit(X, y)
        oracle = PredictorOracle(transfer, "fcc", spec)
        configs = RandomSampler(spec, rng=1).sample_batch(5)
        assert np.isfinite(oracle.latency_batch(configs)).all()


class TestMapExport:
    def test_map_is_reusable_standalone(self, proxy_fitted):
        # The fitted map can be lifted out of the predictor, serialised,
        # and applied on its own — e.g. to calibrate scalar estimates.
        proxy, X, y = proxy_fitted
        transfer = TransferPredictor.from_proxy(proxy).fit(X, 2.0 * y)
        wire = json.loads(json.dumps(transfer.map_.to_dict()))
        clone = MonotoneLatencyMap.from_dict(wire)
        assert clone == transfer.map_
        assert clone.apply_one(float(proxy.predict(X[:1])[0])) == pytest.approx(
            float(transfer.predict(X[:1])[0])
        )
