"""Golden-trace and acceptance tests for the adaptive switching loop.

Two locks on `ESMLoop` driving an `AdaptiveSwitchingPredictor`:

* **Golden trace** — a seeded run whose zoo deliberately omits ridge (the
  runaway favourite on near-additive FCC counts) so the per-refit CV has
  to discriminate among the nonlinear members.  The committed fixture
  ``tests/fixtures/as_golden_trace.json`` pins the full report, the
  per-iteration *winner sequence* (which genuinely changes hands:
  gradient boosting leads on the small early datasets, the MLP takes over
  as the loop grows them), and the final dataset bytes.
* **Acceptance** — on the ESM golden config, swapping the fixed MLP for
  the adaptive switcher must not cost accuracy: the adaptive run's final
  surrogate achieves a held-out MAPE no worse than the fixed-MLP run on
  the same seed.

Regenerate the fixture after an *intentional* behaviour change with::

    PYTHONPATH=src python tests/fixtures/regen_as_golden_trace.py
"""

import hashlib
import json
from pathlib import Path

import numpy as np
import pytest

from repro import ESMConfig, ESMLoop, mape, space_by_name
from repro.archspace.sampling import RandomSampler
from repro.hardware.simulator import SimulatedDevice

FIXTURE_PATH = Path(__file__).parent / "fixtures" / "as_golden_trace.json"

AS_GOLDEN_CONFIG = ESMConfig(
    space="resnet",
    device="rtx4090",
    encoding="fcc",
    predictor="as",
    predictor_params={
        "zoo": ["cart", "rf", "gb", "mlp"],
        "zoo_params": {
            "rf": {"n_estimators": 15},
            "gb": {"n_estimators": 50},
            "mlp": {"epochs": 800},
        },
        "cv_folds": 3,
    },
    acc_th=85.0,
    n_bins=5,
    initial_size=120,
    extension_size=30,
    max_iterations=6,
    runs=15,
    n_references=2,
    batch_size=25,
    seed=1,
)


@pytest.fixture(scope="module")
def fixture_raw():
    assert FIXTURE_PATH.exists(), "committed adaptive golden-trace fixture missing"
    return json.loads(FIXTURE_PATH.read_text())


@pytest.fixture(scope="module")
def golden_run(tmp_path_factory):
    run_dir = tmp_path_factory.mktemp("as-golden") / "run"
    return ESMLoop(AS_GOLDEN_CONFIG, run_dir, sleep=lambda s: None).run()


class TestFixtureSchema:
    """Schema lock: the fixture's shape is part of the contract."""

    def test_header(self, fixture_raw):
        assert fixture_raw["format_version"] == 1
        assert fixture_raw["kind"] == "as_golden_trace"
        assert set(fixture_raw) == {
            "format_version",
            "kind",
            "config",
            "report",
            "winners",
            "dataset_sha256",
            "dataset_size",
        }

    def test_config_matches_the_test_constant(self, fixture_raw):
        assert ESMConfig.from_dict(fixture_raw["config"]) == AS_GOLDEN_CONFIG

    def test_winners_column_is_consistent_with_the_report(self, fixture_raw):
        assert fixture_raw["winners"] == [
            record["predictor_model"]
            for record in fixture_raw["report"]["iterations"]
        ]

    def test_fixture_exercises_an_actual_switch(self, fixture_raw):
        # The whole point of this trace: if one member won every round the
        # fixture would lock nothing about the switching machinery.
        assert len(set(fixture_raw["winners"])) >= 2

    def test_winners_come_from_the_configured_zoo(self, fixture_raw):
        zoo = fixture_raw["config"]["predictor_params"]["zoo"]
        assert set(fixture_raw["winners"]) <= set(zoo)


class TestGoldenTrace:
    def test_converges_within_budget(self, golden_run):
        report = golden_run.report
        assert report.converged
        assert report.n_iterations <= AS_GOLDEN_CONFIG.max_iterations

    def test_winner_sequence_is_byte_stable(self, golden_run, fixture_raw):
        assert golden_run.report.predictor_models() == fixture_raw["winners"]

    def test_trace_matches_fixture(self, golden_run, fixture_raw):
        produced = golden_run.report.to_dict()
        expected = fixture_raw["report"]
        assert produced["config"] == expected["config"]
        assert produced["bins"] == expected["bins"]
        assert produced["converged"] == expected["converged"]
        assert produced["final_dataset_size"] == expected["final_dataset_size"]
        assert len(produced["iterations"]) == len(expected["iterations"])
        for got, want in zip(produced["iterations"], expected["iterations"]):
            # Discrete decisions are exact ...
            for key in (
                "iteration",
                "dataset_size",
                "train_size",
                "test_size",
                "failing_bins",
                "samples_added",
                "passed",
                "predictor_model",
            ):
                assert got[key] == want[key], f"iteration {want['iteration']}: {key}"
            # ... accuracies allow BLAS-level float drift, nothing more.
            assert got["bin_accuracies"] == pytest.approx(
                want["bin_accuracies"], rel=1e-9
            )

    def test_final_dataset_size_locked(self, golden_run, fixture_raw):
        assert len(golden_run.dataset) == fixture_raw["dataset_size"]

    def test_measurement_bytes_locked(self, golden_run, fixture_raw):
        dataset_bytes = (golden_run.run_dir / "dataset.json").read_bytes()
        assert (
            hashlib.sha256(dataset_bytes).hexdigest()
            == fixture_raw["dataset_sha256"]
        )

    def test_saved_predictor_is_the_switcher(self, golden_run):
        from repro import AdaptiveSwitchingPredictor, load_predictor

        loaded = load_predictor(golden_run.run_dir / "predictor.json")
        assert isinstance(loaded, AdaptiveSwitchingPredictor)
        assert loaded.winner_ == golden_run.report.predictor_models()[-1]


class TestAdaptiveVersusFixedMLP:
    """Switching must not cost accuracy against the fixed-MLP baseline."""

    # The ESM golden config, with only the predictor column swapped.
    BASE = dict(
        space="resnet",
        device="rtx4090",
        encoding="fcc",
        acc_th=82.0,
        n_bins=5,
        initial_size=120,
        extension_size=30,
        max_iterations=6,
        runs=15,
        n_references=2,
        batch_size=25,
        seed=1,
    )

    def _final_mape(self, tmp_path_factory, predictor, params):
        cfg = ESMConfig(predictor=predictor, predictor_params=params, **self.BASE)
        run_dir = tmp_path_factory.mktemp(f"as-vs-{predictor}") / "run"
        result = ESMLoop(cfg, run_dir, sleep=lambda s: None).run()
        spec = space_by_name("resnet")
        device = SimulatedDevice("rtx4090", seed=0)
        sample = RandomSampler(spec, rng=np.random.default_rng(2024)).sample_batch(150)
        y_true = np.array([device.true_latency(c) for c in sample])
        return result, mape(y_true, result.latency_oracle().latency_batch(sample))

    def test_adaptive_final_mape_not_worse_than_fixed_mlp(self, tmp_path_factory):
        mlp_run, mlp_mape = self._final_mape(
            tmp_path_factory, "mlp", {"epochs": 600}
        )
        as_run, as_mape = self._final_mape(
            tmp_path_factory,
            "as",
            {
                "zoo_params": {
                    "rf": {"n_estimators": 15},
                    "gb": {"n_estimators": 50},
                    "mlp": {"epochs": 600},
                },
                "cv_folds": 3,
            },
        )
        assert mlp_run.converged and as_run.converged
        # Every adaptive iteration records which member won its CV.
        assert all(
            winner in ("ridge", "cart", "rf", "gb", "mlp")
            for winner in as_run.report.predictor_models()
        )
        assert as_mape <= mlp_mape, (
            f"adaptive switching lost accuracy: final MAPE {as_mape:.2f}% "
            f"vs fixed-MLP {mlp_mape:.2f}%"
        )
