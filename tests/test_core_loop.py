"""Unit tests for `repro.core`: config, report schema, and loop wiring.

The cheap seeded loop here is structural (budgets respected, records
consistent with dataset growth, artifacts written); the convergence and
byte-identity acceptance criteria live in test_core_golden.py and
test_core_e2e.py.
"""

import json

import numpy as np
import pytest

from repro import (
    CampaignError,
    ESMConfig,
    ESMLoop,
    ESMRunReport,
    IterationRecord,
    LatencyDataset,
    LatencySample,
    DatasetError,
    failing_bins,
    load_run,
    resnet_space,
)
from repro.core.experiments import compare_samplers, format_comparison, main
from repro.core.loop import DATASET_FILENAME, PREDICTOR_FILENAME, REPORT_FILENAME

CHEAP = dict(
    space="resnet",
    device="rtx4090",
    acc_th=75.0,
    n_bins=4,
    initial_size=24,
    extension_size=8,
    max_iterations=2,
    runs=5,
    n_references=2,
    batch_size=8,
    seed=11,
    predictor_params={"epochs": 60},
)


class TestESMConfig:
    def test_round_trips_through_dict(self):
        config = ESMConfig(**CHEAP)
        assert ESMConfig.from_dict(config.to_dict()) == config

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown ESMConfig field"):
            ESMConfig.from_dict({"space": "resnet", "acc_threshold": 90.0})

    def test_with_sampler(self):
        config = ESMConfig(**CHEAP)
        assert config.with_sampler("random").initial_sampler == "random"
        assert config.initial_sampler == "balanced"  # original untouched

    @pytest.mark.parametrize(
        "overrides",
        [
            {"encoding": "nope"},
            {"predictor": "nope"},
            {"initial_sampler": "stratified"},
            {"acc_th": 0.0},
            {"acc_th": 101.0},
            {"train_fraction": 1.0},
            {"n_bins": 0},
            {"max_iterations": 0},
            {"initial_size": 0},
            {"extension_size": 0},
            {"batch_size": 0},
            {"n_references": 0},
        ],
    )
    def test_invalid_inputs_rejected(self, overrides):
        with pytest.raises(ValueError):
            ESMConfig(**{**CHEAP, **overrides})

    def test_unknown_space_rejected_at_loop_construction(self, tmp_path):
        config = ESMConfig(**{**CHEAP, "space": "vgg"})
        with pytest.raises(ValueError, match="unknown space"):
            ESMLoop(config, tmp_path / "run")

    def test_explicit_spec_bypasses_space_registry(self, tmp_path):
        config = ESMConfig(**{**CHEAP, "space": "custom-resnet"})
        loop = ESMLoop(config, tmp_path / "run", spec=resnet_space())
        assert loop.spec.family == "resnet"


class TestFailingBins:
    def test_sorted_and_thresholded(self):
        accs = {2: 95.0, 0: 50.0, 1: 89.9}
        assert failing_bins(accs, 90.0) == [0, 1]
        assert failing_bins(accs, 40.0) == []


class TestReportSchema:
    def make_report(self):
        record = IterationRecord(
            iteration=0,
            dataset_size=24,
            train_size=19,
            test_size=5,
            bin_accuracies={0: 91.5, 1: 72.25, 2: 0.0},
            failing_bins=[1, 2],
            samples_added={1: 3, 2: 5},
            passed=False,
        )
        return ESMRunReport(
            config=ESMConfig(**CHEAP).to_dict(),
            bins=[(4, 11), (12, 19), (20, 28)],
            iterations=[record],
            converged=False,
            wall_clock_s=1.25,
        )

    def test_round_trips_through_dict(self):
        report = self.make_report()
        clone = ESMRunReport.from_dict(report.to_dict())
        assert clone.to_dict() == report.to_dict()
        assert clone.bins == report.bins
        assert clone.iterations[0].bin_accuracies == {0: 91.5, 1: 72.25, 2: 0.0}

    def test_wall_clock_never_serialised(self):
        payload = self.make_report().to_dict()
        assert "wall_clock_s" not in json.dumps(payload)

    def test_derived_quantities(self):
        report = self.make_report()
        assert report.n_iterations == 1
        assert report.total_samples_added == 8
        assert report.final_dataset_size == 32  # 24 + 8 planned
        assert report.final_bin_accuracies[1] == 72.25
        assert report.accuracy_trace() == [{0: 91.5, 1: 72.25, 2: 0.0}]

    def test_save_load(self, tmp_path):
        report = self.make_report()
        path = tmp_path / "report.json"
        report.save(path)
        assert ESMRunReport.load(path).to_dict() == report.to_dict()

    def test_load_failure_modes(self, tmp_path):
        with pytest.raises(DatasetError, match="does not exist"):
            ESMRunReport.load(tmp_path / "missing.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(DatasetError, match="not valid JSON"):
            ESMRunReport.load(bad)
        wrong = tmp_path / "wrong.json"
        wrong.write_text(json.dumps({"format_version": 99}))
        with pytest.raises(DatasetError, match="format_version"):
            ESMRunReport.load(wrong)
        kind = tmp_path / "kind.json"
        kind.write_text(json.dumps({"format_version": 1, "kind": "campaign"}))
        with pytest.raises(DatasetError, match="kind"):
            ESMRunReport.load(kind)


class TestDatasetAlgebra:
    def sample(self, latency):
        config = resnet_space().make_config([1] * 4, [3] * 4, [0.25] * 4)
        return LatencySample(config=config, latency_s=latency, device="d")

    def test_add_concatenates_without_mutation(self):
        a = LatencyDataset([self.sample(1.0)])
        b = LatencyDataset([self.sample(2.0)])
        both = a + b
        assert [s.latency_s for s in both] == [1.0, 2.0]
        assert len(a) == 1 and len(b) == 1

    def test_equality_is_sample_wise(self):
        a = LatencyDataset([self.sample(1.0)])
        assert a == LatencyDataset([self.sample(1.0)])
        assert a != LatencyDataset([self.sample(1.5)])
        assert a != "not a dataset"


@pytest.fixture(scope="module")
def cheap_run(tmp_path_factory):
    run_dir = tmp_path_factory.mktemp("esm-cheap") / "run"
    result = ESMLoop(
        ESMConfig(**CHEAP), run_dir, sleep=lambda s: None
    ).run()
    return result


class TestLoopStructure:
    def test_budget_respected(self, cheap_run):
        report = cheap_run.report
        assert 1 <= report.n_iterations <= CHEAP["max_iterations"]

    def test_records_are_consistent(self, cheap_run):
        config = ESMConfig(**CHEAP)
        size = config.initial_size
        for record in cheap_run.report.iterations:
            assert record.dataset_size == size
            assert record.train_size + record.test_size == size
            # Every configured bin is scored, present in the split or not.
            assert sorted(record.bin_accuracies) == list(range(config.n_bins))
            assert record.failing_bins == failing_bins(
                record.bin_accuracies, config.acc_th
            )
            assert record.passed == (not record.failing_bins)
            if record.samples_added:
                assert set(record.samples_added) <= set(record.failing_bins)
            size += record.n_added
        assert len(cheap_run.dataset) == size == cheap_run.report.final_dataset_size

    def test_last_record_never_plans_an_extension(self, cheap_run):
        # A record with a plan is always followed by another iteration, so
        # the final record's plan is empty whether it passed or hit budget.
        assert cheap_run.report.iterations[-1].samples_added == {}

    def test_artifacts_written_and_loadable(self, cheap_run):
        run_dir = cheap_run.run_dir
        for name in (REPORT_FILENAME, DATASET_FILENAME, PREDICTOR_FILENAME):
            assert (run_dir / name).exists()
        loaded = load_run(run_dir)
        assert loaded.report.to_dict() == cheap_run.report.to_dict()
        assert loaded.dataset == cheap_run.dataset
        X = cheap_run.dataset.encode("fcc", resnet_space())
        np.testing.assert_array_equal(
            loaded.predictor.predict(X), cheap_run.predictor.predict(X)
        )

    def test_references_excluded_from_training_data(self, cheap_run):
        assert all(not s.is_reference for s in cheap_run.dataset)

    def test_mismatched_run_dir_refused(self, cheap_run):
        other = ESMConfig(**{**CHEAP, "seed": 12})
        with pytest.raises(CampaignError, match="fingerprint"):
            ESMLoop(other, cheap_run.run_dir, sleep=lambda s: None).run()


class TestImmediateConvergence:
    """All bins pass at iteration 0: no extension campaign may run."""

    @pytest.fixture(scope="class")
    def immediate_run(self, tmp_path_factory):
        run_dir = tmp_path_factory.mktemp("esm-immediate") / "run"
        config = ESMConfig(**{**CHEAP, "acc_th": 1.0, "n_bins": 2})
        return ESMLoop(config, run_dir, sleep=lambda s: None).run()

    def test_converges_without_extensions(self, immediate_run):
        report = immediate_run.report
        assert report.converged
        assert report.n_iterations == 1
        record = report.iterations[0]
        assert record.passed
        assert record.failing_bins == []
        assert record.samples_added == {}
        assert report.total_samples_added == 0
        assert report.final_dataset_size == len(immediate_run.dataset) == 24

    def test_only_the_initial_campaign_ran(self, immediate_run):
        campaigns = sorted(
            p.name for p in immediate_run.run_dir.iterdir()
            if p.name.startswith("campaign-")
        )
        assert campaigns == ["campaign-0000"]

    def test_report_still_round_trips(self, immediate_run):
        loaded = load_run(immediate_run.run_dir)
        assert loaded.report.to_dict() == immediate_run.report.to_dict()
        assert loaded.dataset == immediate_run.dataset
        assert loaded.report.converged


class TestFig11Experiment:
    def test_compare_samplers_and_table(self, tmp_path):
        config = ESMConfig(**CHEAP)
        reports = compare_samplers(config, tmp_path)
        assert sorted(reports) == ["balanced", "random"]
        for sampler, report in reports.items():
            assert report.config["initial_sampler"] == sampler
        table = format_comparison(reports)
        assert "balanced" in table and "random" in table
        assert "iterations" in table

    def test_cli_smoke_entry_point(self, tmp_path, capsys):
        assert main(["--smoke", "--seed", "11", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "balanced" in out and "random" in out
