"""The transfer experiment CLI and report plumbing (small configs).

The full smoke report (all 12 pairs, the committed budgets) is locked by
``test_transfer_golden.py``; this file exercises the module's edges on
two-device workloads that finish in well under a second: argument
validation, the nested-budget table shape, the printed table, and the
``main`` entry point writing byte-deterministic JSON.
"""

import json

import numpy as np
import pytest

from repro.transfer.experiments import (
    DEFAULT_DEVICES,
    _settings,
    format_report,
    main,
    run_experiment,
)

TINY = dict(
    devices=["rtx4090", "raspberrypi4"],
    budgets=[5, 10],
    smoke=True,
    seed=0,
)


@pytest.fixture(scope="module")
def tiny_report():
    return run_experiment(**TINY)


class TestRunExperiment:
    def test_report_schema(self, tiny_report):
        assert tiny_report["kind"] == "transfer_experiment_report"
        assert tiny_report["budgets"] == [5, 10]
        assert set(tiny_report["pairs"]) == {
            "rtx4090->raspberrypi4",
            "raspberrypi4->rtx4090",
        }
        assert tiny_report["summary"]["n_pairs"] == 2
        for pair in tiny_report["pairs"].values():
            assert set(pair["table"]) == {"5", "10"}
            for entry in pair["table"].values():
                assert np.isfinite(entry["transfer"]["mape"])
                assert np.isfinite(entry["scratch"]["kendall_tau"])
                assert entry["transfer"]["n_knots"] >= 2

    def test_match_budget_consistency(self, tiny_report):
        for pair in tiny_report["pairs"].values():
            match = pair["match_budget"]
            if match is None:
                assert pair["half_budget_ok"] is False
                continue
            assert match in (5, 10)
            assert (
                pair["table"][str(match)]["transfer"]["mape"]
                <= pair["scratch_mape_at_max_budget"]
            )
            assert pair["half_budget_ok"] == (2 * match <= 10)

    def test_json_round_trip_is_loss_free(self, tiny_report):
        assert json.loads(json.dumps(tiny_report)) == tiny_report

    def test_default_devices_are_the_paper_quartet(self):
        assert len(DEFAULT_DEVICES) == 4
        full = _settings(smoke=False)
        smoke = _settings(smoke=True)
        assert full["budgets"][-1] > smoke["budgets"][-1]

    def test_duplicate_devices_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            run_experiment(devices=["rtx4090", "rtx4090"], smoke=True)

    def test_single_device_rejected(self):
        with pytest.raises(ValueError, match="at least two"):
            run_experiment(devices=["rtx4090"], smoke=True)

    def test_sub_pair_budgets_rejected(self):
        with pytest.raises(ValueError, match=">= 2"):
            run_experiment(**{**TINY, "budgets": [1, 10]})


class TestFormatReport:
    def test_table_names_every_pair_and_budget(self, tiny_report):
        text = format_report(tiny_report)
        assert "rtx4090->raspberrypi4" in text
        assert "b=5" in text and "b=10" in text
        assert "half-budget wins" in text
        assert f"/{tiny_report['summary']['n_pairs']} pairs" in text


class TestMain:
    def test_writes_deterministic_report(self, tmp_path, capsys):
        args = [
            "--devices",
            *TINY["devices"],
            "--budgets",
            "5",
            "10",
            "--smoke",
        ]
        out_a = tmp_path / "a.json"
        out_b = tmp_path / "b.json"
        assert main([*args, "--out", str(out_a)]) == 0
        assert main([*args, "--out", str(out_b)]) == 0
        assert out_a.read_bytes() == out_b.read_bytes()
        report = json.loads(out_a.read_text())
        assert report["summary"]["n_pairs"] == 2
        printed = capsys.readouterr().out
        assert "half-budget wins" in printed
        assert str(out_a) in printed
