"""PredictionLRU: bounded, LRU-ordered, counted, disable-able."""

import pytest

from repro import CachedPrediction, PredictionLRU


def entry(v: float, version: int = 1, seq: int = 0) -> CachedPrediction:
    return CachedPrediction(latency_s=v, model_version=version, batch_seq=seq)


class TestPredictionLRU:
    def test_get_put_round_trip(self):
        cache = PredictionLRU(maxsize=4)
        assert cache.get("a") is None
        cache.put("a", entry(1.5, version=3, seq=7))
        hit = cache.get("a")
        assert hit == CachedPrediction(1.5, 3, 7)
        assert hit.latency_s == 1.5
        assert "a" in cache and len(cache) == 1

    def test_counters(self):
        cache = PredictionLRU(maxsize=4)
        cache.get("missing")
        cache.put("a", entry(1.0))
        cache.get("a")
        cache.get("a")
        info = cache.info()
        assert (info.hits, info.misses) == (2, 1)
        assert info.hit_rate == pytest.approx(2 / 3)
        assert info.size == 1 and info.maxsize == 4

    def test_lru_eviction_order(self):
        cache = PredictionLRU(maxsize=2)
        cache.put("a", entry(1.0))
        cache.put("b", entry(2.0))
        cache.get("a")  # refresh a; b is now least recently used
        cache.put("c", entry(3.0))
        assert "a" in cache and "c" in cache and "b" not in cache

    def test_maxsize_zero_disables(self):
        cache = PredictionLRU(maxsize=0)
        cache.put("a", entry(1.0))
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_clear_keeps_counters(self):
        cache = PredictionLRU(maxsize=4)
        cache.put("a", entry(1.0))
        cache.get("a")
        cache.clear()
        assert len(cache) == 0 and "a" not in cache
        assert cache.info().hits == 1

    def test_negative_maxsize_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            PredictionLRU(maxsize=-1)
