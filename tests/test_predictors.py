"""Predictors: MLP convergence/determinism, LUT exactness and bias correction."""

import numpy as np
import pytest

from repro import (
    LookupTableSurrogate,
    MLPPredictor,
    get_predictor,
    list_predictors,
    paper_accuracy,
)


def _linear_toy(n=256, d=6, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d))
    w = rng.normal(size=d)
    return X, X @ w + 3.0


class TestRegistry:
    def test_names(self):
        assert set(list_predictors()) == {
            "mlp",
            "lut",
            "lut+bias",
            "ridge",
            "cart",
            "rf",
            "gb",
            "as",
            "transfer",
        }

    def test_instances(self):
        assert isinstance(get_predictor("mlp"), MLPPredictor)
        assert not get_predictor("lut").bias_correction
        assert get_predictor("lut+bias").bias_correction

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_predictor("xgboost")


class TestMLP:
    def test_loss_strictly_decreases_on_linear_toy(self):
        X, y = _linear_toy()
        mlp = MLPPredictor(epochs=80, batch_size=256, lr=0.001, seed=0).fit(X, y)
        losses = np.array(mlp.loss_history_)
        assert losses.shape == (80,)
        assert (np.diff(losses) < 0).all()
        assert losses[-1] < 0.05 * losses[0]

    def test_fits_linear_function_accurately(self):
        X, y = _linear_toy()
        mlp = MLPPredictor(epochs=600, seed=0).fit(X[:200], y[:200])
        pred = mlp.predict(X[200:])
        assert np.abs(pred - y[200:]).mean() < 0.2 * np.abs(y).std()

    def test_seeded_determinism(self):
        X, y = _linear_toy()
        a = MLPPredictor(epochs=30, seed=5).fit(X, y).predict(X)
        b = MLPPredictor(epochs=30, seed=5).fit(X, y).predict(X)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        X, y = _linear_toy()
        a = MLPPredictor(epochs=30, seed=1).fit(X, y).predict(X)
        b = MLPPredictor(epochs=30, seed=2).fit(X, y).predict(X)
        assert not np.array_equal(a, b)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            MLPPredictor().predict(np.zeros((1, 3)))

    def test_predict_one(self):
        X, y = _linear_toy()
        mlp = MLPPredictor(epochs=50, seed=0).fit(X, y)
        assert mlp.predict_one(X[0]) == pytest.approx(mlp.predict(X[:1])[0])


class TestLookupTable:
    def test_recovers_exactly_additive_costs(self):
        """On truly additive data the least-squares LUT is exact."""
        rng = np.random.default_rng(0)
        X = rng.integers(0, 5, size=(120, 12)).astype(float)
        costs = rng.uniform(0.5, 2.0, size=12)
        y = X @ costs
        lut = LookupTableSurrogate().fit(X, y)
        np.testing.assert_allclose(lut.predict(X), y, rtol=1e-8)
        np.testing.assert_allclose(lut.table_, costs, rtol=1e-8)

    def test_bias_correction_beats_raw_lut_on_held_out_data(
        self, resnet_spec, small_resnet_dataset
    ):
        """The simulator's global terms (launch overhead, cache pressure)
        break pure additivity; the linear bias correction must recover
        accuracy on a held-out split."""
        train, test = small_resnet_dataset.split(0.75, rng=1)
        X_train = train.encode("fcc", resnet_spec)
        X_test = test.encode("fcc", resnet_spec)
        raw = LookupTableSurrogate().fit(X_train, train.latencies)
        corrected = LookupTableSurrogate(bias_correction=True).fit(
            X_train, train.latencies
        )
        acc_raw = paper_accuracy(test.latencies, raw.predict(X_test))
        acc_corrected = paper_accuracy(test.latencies, corrected.predict(X_test))
        assert acc_corrected >= acc_raw
        assert acc_corrected > 90.0

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            LookupTableSurrogate().predict(np.zeros((1, 3)))


class TestMLPEarlyStopping:
    def test_off_by_default(self):
        X, y = _linear_toy()
        mlp = MLPPredictor(epochs=40, seed=0).fit(X, y)
        assert mlp.patience is None
        assert len(mlp.loss_history_) == 40

    def test_triggers_on_easy_dataset(self):
        X, y = _linear_toy()
        mlp = MLPPredictor(epochs=300, seed=1, patience=10, tol=1e-7).fit(X, y)
        assert len(mlp.loss_history_) < 300
        # Still an accurate fit: stopping early must not mean underfitting.
        assert np.abs(mlp.predict(X) - y).mean() < 0.2 * np.abs(y).std()

    def test_stopped_run_is_a_prefix_of_the_full_run(self):
        # Early stopping only truncates training: every epoch it does run
        # consumes the same draws as the fixed-epoch schedule, so the loss
        # history is a prefix of the patience-free one.
        X, y = _linear_toy()
        full = MLPPredictor(epochs=300, seed=1).fit(X, y)
        stopped = MLPPredictor(epochs=300, seed=1, patience=10, tol=1e-7).fit(X, y)
        k = len(stopped.loss_history_)
        assert stopped.loss_history_ == full.loss_history_[:k]

    def test_huge_tol_stops_after_patience_epochs(self):
        # The first epoch always "improves" on the infinite initial best;
        # with an unreachable tol every later epoch is stale.
        X, y = _linear_toy()
        mlp = MLPPredictor(epochs=100, seed=0, patience=3, tol=1e9).fit(X, y)
        assert len(mlp.loss_history_) == 1 + 3

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            MLPPredictor(patience=0)
        with pytest.raises(ValueError):
            MLPPredictor(tol=-1e-3)


class TestMLPPersistence:
    """save/load must reproduce the fitted predictor bit for bit."""

    def fitted(self, seed=0):
        X, y = _linear_toy(seed=seed)
        return X, y, MLPPredictor(epochs=60, seed=seed).fit(X, y)

    def test_round_trip_predictions_identical(self, tmp_path):
        X, y, mlp = self.fitted()
        path = tmp_path / "mlp.json"
        mlp.save(path)
        clone = MLPPredictor.load(path)
        # Bit-identical, not approximately equal: weights and the
        # normalisation stats all survive JSON's shortest-repr floats.
        np.testing.assert_array_equal(clone.predict(X), mlp.predict(X))
        X_new = np.random.default_rng(99).normal(size=(32, X.shape[1]))
        np.testing.assert_array_equal(clone.predict(X_new), mlp.predict(X_new))

    def test_round_trip_preserves_state(self, tmp_path):
        _, _, mlp = self.fitted(seed=2)
        mlp.save(tmp_path / "mlp.json")
        clone = MLPPredictor.load(tmp_path / "mlp.json")
        assert clone.hidden_dim == mlp.hidden_dim
        assert clone.seed == mlp.seed
        assert clone.loss_history_ == mlp.loss_history_
        for a, b in zip(clone._weights, mlp._weights):
            np.testing.assert_array_equal(a, b)

    def test_save_twice_is_deterministic(self, tmp_path):
        _, _, mlp = self.fitted()
        mlp.save(tmp_path / "a.json")
        mlp.save(tmp_path / "b.json")
        assert (tmp_path / "a.json").read_bytes() == (tmp_path / "b.json").read_bytes()

    def test_unfitted_save_rejected(self, tmp_path):
        with pytest.raises(RuntimeError, match="unfitted"):
            MLPPredictor().save(tmp_path / "mlp.json")

    def test_wrong_payload_rejected(self, tmp_path):
        import json

        bad_version = tmp_path / "v.json"
        bad_version.write_text(json.dumps({"format_version": 99, "kind": "mlp"}))
        with pytest.raises(ValueError, match="format_version"):
            MLPPredictor.load(bad_version)
        bad_kind = tmp_path / "k.json"
        bad_kind.write_text(json.dumps({"format_version": 1, "kind": "lut"}))
        with pytest.raises(ValueError, match="kind"):
            MLPPredictor.load(bad_kind)

    def test_fit_dataset_convenience(self, small_resnet_dataset, resnet_spec):
        direct = MLPPredictor(epochs=40, seed=0).fit(
            small_resnet_dataset.encode("fcc", resnet_spec),
            small_resnet_dataset.latencies,
        )
        via_dataset = MLPPredictor(epochs=40, seed=0).fit_dataset(
            small_resnet_dataset, "fcc", resnet_spec
        )
        X = small_resnet_dataset.encode("fcc", resnet_spec)
        np.testing.assert_array_equal(
            via_dataset.predict(X), direct.predict(X)
        )
