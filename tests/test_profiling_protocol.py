"""`MeasurementProtocol`: validation, trimmed-mean properties, delegation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    MeasurementError,
    MeasurementProtocol,
    RandomSampler,
    SimulatedDevice,
    resnet_space,
)


def reference_trimmed_mean(values, trim_fraction, warmup_discard=0):
    """Independent trimmed mean in plain Python, for cross-checking."""
    values = list(values)
    if warmup_discard and len(values) > warmup_discard:
        values = values[warmup_discard:]
    ordered = sorted(values)
    n = len(ordered)
    cut = int(np.floor(trim_fraction * n))
    kept = ordered[cut : n - cut] if n - 2 * cut >= 1 else ordered
    return sum(kept) / len(kept)


@pytest.fixture(scope="module")
def sample_config():
    return RandomSampler(resnet_space(), rng=11).sample()


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"runs": 0},
            {"runs": -3},
            {"trim_fraction": -0.01},
            {"trim_fraction": 0.51},
            {"warmup_discard": -1},
            {"runs": 10, "warmup_discard": 10},
        ],
    )
    def test_bad_parameters_raise(self, kwargs):
        with pytest.raises(ValueError):
            MeasurementProtocol(**kwargs)

    def test_paper_defaults(self):
        protocol = MeasurementProtocol()
        assert protocol.runs == 150
        assert protocol.trim_fraction == 0.2
        assert protocol.warmup_discard == 0

    @pytest.mark.parametrize(
        "trace",
        [
            [],
            [[1.0, 2.0]],
            [1.0, np.nan, 3.0],
            [1.0, np.inf],
            [1.0, -2.0],
            [0.0, 1.0],
        ],
    )
    def test_invalid_traces_raise_measurement_error(self, trace):
        with pytest.raises(MeasurementError):
            MeasurementProtocol(runs=2).trimmed_mean(np.array(trace))


class TestTrimmedMean:
    @settings(max_examples=200, deadline=None)
    @given(
        runs=st.integers(min_value=1, max_value=200),
        trim=st.floats(min_value=0.0, max_value=0.5),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_matches_independent_implementation(self, runs, trim, seed):
        trace = np.random.default_rng(seed).lognormal(0.0, 0.5, size=runs)
        protocol = MeasurementProtocol(runs=runs, trim_fraction=trim)
        expected = reference_trimmed_mean(trace, trim)
        assert protocol.trimmed_mean(trace) == pytest.approx(expected, rel=1e-12)

    @settings(max_examples=100, deadline=None)
    @given(
        runs=st.integers(min_value=2, max_value=200),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_warmup_discard_drops_leading_entries(self, runs, seed):
        rng = np.random.default_rng(seed)
        trace = rng.lognormal(0.0, 0.3, size=runs)
        discard = int(rng.integers(1, runs))
        protocol = MeasurementProtocol(
            runs=runs, trim_fraction=0.2, warmup_discard=discard
        )
        expected = reference_trimmed_mean(trace, 0.2, warmup_discard=discard)
        assert protocol.trimmed_mean(trace) == pytest.approx(expected, rel=1e-12)

    def test_fallback_when_trim_would_leave_nothing(self):
        # trim=0.5 on an even run count trims everything -> average the
        # full trace instead of failing.
        trace = np.array([1.0, 2.0, 3.0, 10.0])
        protocol = MeasurementProtocol(runs=4, trim_fraction=0.5)
        assert protocol.trimmed_mean(trace) == pytest.approx(4.0)

    def test_median_for_odd_runs_at_half_trim(self):
        trace = np.array([5.0, 1.0, 100.0])
        protocol = MeasurementProtocol(runs=3, trim_fraction=0.5)
        assert protocol.trimmed_mean(trace) == pytest.approx(5.0)

    def test_single_run_is_identity(self):
        protocol = MeasurementProtocol(runs=1)
        assert protocol.trimmed_mean(np.array([0.37])) == pytest.approx(0.37)


class TestDeviceDelegation:
    """`SimulatedDevice.measure_latency` is now a thin protocol wrapper."""

    @settings(max_examples=25, deadline=None)
    @given(runs=st.integers(min_value=1, max_value=200))
    def test_measure_latency_matches_independent_trim(self, sample_config, runs):
        trace = SimulatedDevice("rtx4090", seed=13).measure(sample_config, runs=runs)
        value = SimulatedDevice("rtx4090", seed=13).measure_latency(
            sample_config, runs=runs
        )
        assert value == pytest.approx(reference_trimmed_mean(trace, 0.2), rel=1e-12)

    def test_explicit_protocol_overrides_runs(self, sample_config):
        protocol = MeasurementProtocol(runs=30)
        a = SimulatedDevice("rtx4090", seed=5).measure_latency(
            sample_config, runs=999, protocol=protocol
        )
        b = SimulatedDevice("rtx4090", seed=5).measure_latency(sample_config, runs=30)
        assert a == b

    def test_protocol_measure_equals_device_measure_latency(self, sample_config):
        protocol = MeasurementProtocol(runs=40)
        a = protocol.measure(SimulatedDevice("rtx4090", seed=8), sample_config)
        b = SimulatedDevice("rtx4090", seed=8).measure_latency(sample_config, runs=40)
        assert a == b

    def test_warmup_discard_changes_small_run_measurements(self, sample_config):
        # With few runs the warm-up transient dominates the mean; an explicit
        # discard must remove it (lower measured latency).
        no_discard = SimulatedDevice("rtx4090", seed=21).measure_latency(
            sample_config, protocol=MeasurementProtocol(runs=8, trim_fraction=0.0)
        )
        discard = SimulatedDevice("rtx4090", seed=21).measure_latency(
            sample_config,
            protocol=MeasurementProtocol(runs=8, trim_fraction=0.0, warmup_discard=5),
        )
        assert discard < no_discard


class TestPersistence:
    def test_round_trip(self):
        protocol = MeasurementProtocol(runs=75, trim_fraction=0.1, warmup_discard=4)
        clone = MeasurementProtocol.from_dict(protocol.to_dict())
        assert clone == protocol

    def test_from_dict_defaults_warmup(self):
        clone = MeasurementProtocol.from_dict({"runs": 150, "trim_fraction": 0.2})
        assert clone == MeasurementProtocol()
